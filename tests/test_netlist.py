"""Unit tests for the Netlist container."""

import pytest

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


class TestConstruction:
    def test_add_and_lookup(self, tiny_netlist):
        assert "g1" in tiny_netlist
        assert tiny_netlist.gate("g1").gtype is GateType.AND
        assert len(tiny_netlist) == 9

    def test_duplicate_names_rejected(self):
        n = Netlist()
        n.add_input("a")
        with pytest.raises(ValueError):
            n.add_gate("a", GateType.NOT, ["a"])

    def test_forward_references_allowed(self):
        n = Netlist()
        n.add_gate("g", GateType.NOT, ["later"])
        n.add_input("later")
        n.check()

    def test_check_catches_missing_driver(self):
        n = Netlist()
        n.add_gate("g", GateType.NOT, ["ghost"])
        with pytest.raises(ValueError):
            n.check()

    def test_check_catches_missing_po(self):
        n = Netlist()
        n.add_input("a")
        n.add_output("ghost")
        with pytest.raises(ValueError):
            n.check()

    def test_output_dedup(self):
        n = Netlist()
        n.add_input("a")
        n.add_output("a")
        n.add_output("a")
        assert n.outputs == ["a"]

    def test_remove_gate(self, tiny_netlist):
        tiny_netlist.remove_gate("g5")
        assert "g5" not in tiny_netlist
        assert "g5" not in tiny_netlist.outputs

    def test_replace_fanin(self, tiny_netlist):
        tiny_netlist.replace_fanin("g3", "g1", "g2")
        assert tiny_netlist.gate("g3").fanin == ["g2", "g2"]


class TestQueries:
    def test_io_lists(self, tiny_netlist):
        assert tiny_netlist.inputs == ["a", "b", "c", "d"]
        assert tiny_netlist.outputs == ["g4", "g5"]

    def test_dffs(self, seq_netlist):
        assert sorted(seq_netlist.dffs) == ["q0", "q1"]

    def test_logic_gates(self, seq_netlist):
        assert sorted(seq_netlist.logic_gates) == ["c0", "t0", "t1"]

    def test_fanout_map(self, tiny_netlist):
        fanout = tiny_netlist.fanout_map()
        assert sorted(fanout["g1"]) == ["g3", "g4"]
        assert fanout["c"] == ["g2", "g4"]

    def test_pin_count(self, tiny_netlist):
        # g1..g5: fanins 2,2,2,2,1 plus one output pin each -> 9 + 5 = 14.
        assert tiny_netlist.pin_count() == 14


class TestOrdering:
    def test_topological_order(self, tiny_netlist):
        order = tiny_netlist.topological_order()
        assert order.index("g1") < order.index("g3")
        assert order.index("g2") < order.index("g3")
        assert order.index("g3") < order.index("g5")

    def test_sequential_loops_allowed(self, seq_netlist):
        order = seq_netlist.topological_order()
        assert set(order) == set(seq_netlist.gate_names())

    def test_combinational_cycle_detected(self):
        n = Netlist()
        n.add_input("a")
        n.add_gate("x", GateType.AND, ["a", "y"])
        n.add_gate("y", GateType.AND, ["a", "x"])
        with pytest.raises(ValueError, match="cycle"):
            n.topological_order()

    def test_logic_depth(self, tiny_netlist):
        assert tiny_netlist.logic_depth() == 3  # g1 -> g3 -> g5

    def test_depth_of_empty(self):
        assert Netlist().logic_depth() == 0


class TestSimulation:
    def test_combinational(self, tiny_netlist):
        out = tiny_netlist.simulate([{"a": 1, "b": 1, "c": 0, "d": 1}])[0]
        # g1=1, g2=1, g3=0, g4=nand(1,0)=1, g5=not(0)=1
        assert out == {"g4": 1, "g5": 1}

    def test_counter_counts(self, seq_netlist):
        outs = seq_netlist.simulate([{"en": 1}] * 4)
        values = [o["q0"] + 2 * o["q1"] for o in outs]
        assert values == [0, 1, 2, 3]

    def test_enable_low_holds_state(self, seq_netlist):
        outs = seq_netlist.simulate([{"en": 1}, {"en": 0}, {"en": 0}])
        assert outs[1] == outs[2]

    def test_initial_state(self, seq_netlist):
        outs = seq_netlist.simulate([{"en": 0}], initial_state={"q0": 1, "q1": 1})
        assert outs[0] == {"q0": 1, "q1": 1}

    def test_unknown_initial_state_rejected(self, seq_netlist):
        with pytest.raises(KeyError):
            seq_netlist.simulate([{"en": 0}], initial_state={"zz": 1})


class TestSupportAndCopy:
    def test_transitive_fanin(self, tiny_netlist):
        assert tiny_netlist.transitive_fanin("g3") == {"a", "b", "c", "d"}
        assert tiny_netlist.transitive_fanin("g1") == {"a", "b"}

    def test_transitive_fanin_stops_at_dff(self, seq_netlist):
        assert seq_netlist.transitive_fanin("t1") == {"q0", "q1", "en"}

    def test_transitive_fanin_through_dff(self, seq_netlist):
        support = seq_netlist.transitive_fanin("t1", stop_at_state=False)
        assert "en" in support

    def test_copy_is_deep(self, tiny_netlist):
        dup = tiny_netlist.copy("dup")
        dup.gate("g1").fanin[0] = "c"
        assert tiny_netlist.gate("g1").fanin[0] == "a"
        assert dup.name == "dup"
        assert dup.outputs == tiny_netlist.outputs

    def test_copy_simulates_identically(self, seq_netlist):
        dup = seq_netlist.copy()
        vecs = [{"en": i % 2} for i in range(6)]
        assert dup.simulate(vecs) == seq_netlist.simulate(vecs)


class TestNetNames:
    def test_net_names_match_gates(self, tiny_netlist):
        assert set(tiny_netlist.net_names()) == set(tiny_netlist.gate_names())

    def test_gate_names_iterator(self, tiny_netlist):
        assert "g3" in list(tiny_netlist.gate_names())

    def test_repr_mentions_counts(self, seq_netlist):
        text = repr(seq_netlist)
        assert "2 DFF" in text
