"""Tests for netlist validation."""

import pytest

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.validate import NetlistError, validate_netlist


def test_valid_netlist_passes(tiny_netlist):
    report = validate_netlist(tiny_netlist)
    assert report.ok
    assert not report.warnings


def test_missing_driver_flagged():
    n = Netlist()
    n.add_input("a")
    n.add_gate("g", GateType.AND, ["a", "ghost"])
    n.add_output("g")
    report = validate_netlist(n, strict=False)
    assert any("missing driver" in e for e in report.errors)


def test_strict_mode_raises():
    n = Netlist()
    n.add_input("a")
    n.add_gate("g", GateType.AND, ["a", "ghost"])
    with pytest.raises(NetlistError):
        validate_netlist(n)


def test_arity_violation_flagged():
    n = Netlist()
    n.add_input("a")
    n.add_gate("g", GateType.AND, ["a"])
    n.add_output("g")
    report = validate_netlist(n, strict=False)
    assert any("illegal fanin" in e for e in report.errors)


def test_combinational_cycle_flagged():
    n = Netlist()
    n.add_input("a")
    n.add_gate("x", GateType.AND, ["a", "y"])
    n.add_gate("y", GateType.AND, ["a", "x"])
    n.add_output("x")
    n.add_output("y")
    report = validate_netlist(n, strict=False)
    assert any("cycle" in e for e in report.errors)


def test_self_loop_flagged():
    n = Netlist()
    n.add_input("a")
    n.add_gate("g", GateType.AND, ["a", "g"])
    n.add_output("g")
    report = validate_netlist(n, strict=False)
    assert any("self-loop" in e for e in report.errors)


def test_dff_self_loop_allowed():
    n = Netlist()
    n.add_gate("q", GateType.DFF, ["q"])
    n.add_output("q")
    report = validate_netlist(n, strict=False)
    assert report.ok


def test_dangling_net_flagged():
    n = Netlist()
    n.add_input("a")
    n.add_gate("g", GateType.NOT, ["a"])  # g read by nobody, not a PO
    report = validate_netlist(n, strict=False)
    assert any("dangling" in e for e in report.errors)


def test_dangling_net_as_warning_when_allowed():
    n = Netlist()
    n.add_input("a")
    n.add_gate("g", GateType.NOT, ["a"])
    report = validate_netlist(n, strict=False, allow_dangling=True)
    assert report.ok
    assert any("dangling" in w for w in report.warnings)


def test_unused_input_is_warning_only():
    n = Netlist()
    n.add_input("a")
    n.add_input("unused")
    n.add_gate("g", GateType.NOT, ["a"])
    n.add_output("g")
    report = validate_netlist(n, strict=False)
    assert report.ok
    assert any("unused" in w for w in report.warnings)


def test_missing_po_driver_flagged():
    n = Netlist()
    n.add_input("a")
    n.add_output("nope")
    report = validate_netlist(n, strict=False)
    assert any("no driver" in e for e in report.errors)


def test_duplicate_po_flagged():
    n = Netlist()
    n.add_input("a")
    n._outputs = ["a", "a"]  # bypass dedup to exercise the check
    report = validate_netlist(n, strict=False)
    assert any("duplicate" in e for e in report.errors)


def test_report_raise_if_failed():
    n = Netlist()
    n.add_input("a")
    n.add_output("missing")
    report = validate_netlist(n, strict=False)
    with pytest.raises(NetlistError):
        report.raise_if_failed()
