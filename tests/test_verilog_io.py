"""Tests for the structural Verilog reader/writer."""

import random

import pytest

from repro.netlist.gates import GateType
from repro.netlist.verilog_io import (
    VerilogParseError,
    dumps_verilog,
    loads_verilog,
)
from tests.conftest import random_small_netlist

SAMPLE = """
// a tiny module
module top (a, b, y, q);
  input a, b;
  output y, q;
  wire n1;
  nand g1 (n1, a, b);
  not  g2 (y, n1);
  dff  r1 (q, y);  /* register */
endmodule
"""


class TestParse:
    def test_basic(self):
        n = loads_verilog(SAMPLE)
        assert n.name == "top"
        assert n.inputs == ["a", "b"]
        assert n.outputs == ["y", "q"]
        assert n.gate("n1").gtype is GateType.NAND
        assert n.gate("q").gtype is GateType.DFF

    def test_function(self):
        n = loads_verilog(SAMPLE)
        outs = n.simulate([{"a": 1, "b": 1}, {"a": 0, "b": 1}])
        assert outs[0]["y"] == 1  # not(nand(1,1)) = 1
        assert outs[1]["q"] == 1  # registered previous y

    def test_comments_stripped(self):
        n = loads_verilog(SAMPLE)
        assert len(n) == 5  # 2 PI + 3 gates

    def test_no_module_rejected(self):
        with pytest.raises(VerilogParseError, match="module"):
            loads_verilog("wire x;")

    def test_unsupported_primitive_rejected(self):
        text = "module m (a, y); input a; output y; mycell u1 (y, a); endmodule"
        with pytest.raises(VerilogParseError, match="unsupported primitive"):
            loads_verilog(text)

    def test_vector_declaration_rejected(self):
        text = "module m (a, y); input [3:0] a; output y; endmodule"
        with pytest.raises(VerilogParseError):
            loads_verilog(text)

    def test_garbage_statement_rejected(self):
        text = "module m (a, y); input a; output y; assign y = a; endmodule"
        with pytest.raises(VerilogParseError):
            loads_verilog(text)


class TestRoundTrip:
    def test_sample_roundtrip(self):
        n = loads_verilog(SAMPLE)
        again = loads_verilog(dumps_verilog(n))
        vecs = [{"a": i & 1, "b": (i >> 1) & 1} for i in range(4)]
        assert again.simulate(vecs) == n.simulate(vecs)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_roundtrip(self, seed):
        n = random_small_netlist(seed, n_gates=30)
        again = loads_verilog(dumps_verilog(n))
        rng = random.Random(seed)
        vec = {pi: rng.randrange(2) for pi in n.inputs}
        assert again.simulate([vec]) == n.simulate([vec])

    def test_sequential_roundtrip(self, seq_netlist):
        again = loads_verilog(dumps_verilog(seq_netlist))
        vecs = [{"en": 1}] * 5
        assert again.simulate(vecs) == seq_netlist.simulate(vecs)

    def test_constants_rejected_on_dump(self):
        from repro.netlist.netlist import Netlist

        n = Netlist("c")
        n.add_gate("one", GateType.CONST1)
        n.add_output("one")
        with pytest.raises(VerilogParseError, match="constant"):
            dumps_verilog(n)

    def test_name_sanitized(self):
        n = random_small_netlist(1, n_gates=10)
        n.name = "weird name!"
        text = dumps_verilog(n)
        assert "module weird_name_" in text
