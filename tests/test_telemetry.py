"""End-to-end trace correlation and live telemetry.

Covers the Prometheus exposition encoder, quantile windows, the Chrome
trace exporter, trace-context propagation into pool workers / the cache /
the ledger, and the four-surface acceptance drill against a live
:class:`~repro.service.server.PartitionService`: one trace id submitted
via ``X-Repro-Trace-Id`` must show up on the ``job.*`` lifecycle events,
inside worker-side span streams, on the ledger record, and as a labeled
counter in ``GET /v1/metrics``.
"""

import glob
import json
import os

import pytest

from repro import api
from repro.cli import main
from repro.obs.events import (
    JsonlEmitter,
    ListEmitter,
    read_jsonl,
    validate_jsonl_file,
)
from repro.obs.export import export_chrome_trace, stream_events
from repro.obs.ledger import Ledger, use_ledger
from repro.obs.metrics import MetricsRegistry, set_registry, use_registry
from repro.obs.telemetry import (
    QuantileWindow,
    new_trace_id,
    parse_exposition,
    prometheus_exposition,
    series,
    split_series,
)
from repro.request import build_request

from tests.test_service import ServiceThread, quick_request

TRACE = "feedc0ffee123456"


def traced_request(seed=7, jobs_scale=0.08, **overrides):
    base = dict(
        circuit="s5378", scale=jobs_scale, seed=seed, threshold=1, n_solutions=1
    )
    base.update(overrides)
    return build_request("partition", **base).with_trace(TRACE)


# ---------------------------------------------------------------------------
# Series names and the exposition encoder
# ---------------------------------------------------------------------------


def test_series_round_trip():
    name = series("runs.completed", verb="partition", trace="abc")
    assert name == 'runs.completed{trace="abc",verb="partition"}'
    base, labels = split_series(name)
    assert base == "runs.completed"
    assert labels == {"trace": "abc", "verb": "partition"}
    assert split_series("plain") == ("plain", {})


def test_prometheus_exposition_round_trip():
    reg = MetricsRegistry(enabled=True)
    reg.counter(series("runs.completed", verb="partition")).inc(3)
    reg.counter("cache.hits").inc()
    reg.gauge("queue.depth").set(4.0)
    h = reg.histogram("latency.seconds", (0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    text = prometheus_exposition(reg.snapshot())
    assert "# TYPE runs_completed_total counter" in text
    assert "# TYPE latency_seconds histogram" in text
    samples = parse_exposition(text)
    assert samples['runs_completed_total{verb="partition"}'] == 3.0
    assert samples["cache_hits_total"] == 1.0
    assert samples["queue_depth"] == 4.0
    # Cumulative buckets plus the +Inf catch-all, _sum and _count.
    assert samples['latency_seconds_bucket{le="0.1"}'] == 1.0
    assert samples['latency_seconds_bucket{le="1.0"}'] == 2.0
    assert samples['latency_seconds_bucket{le="+Inf"}'] == 3.0
    assert samples["latency_seconds_count"] == 3.0
    assert samples["latency_seconds_sum"] == pytest.approx(5.55)


def test_exposition_extra_gauges_and_sanitizing():
    text = prometheus_exposition(
        {"counters": {}, "gauges": {}, "histograms": {}},
        extra_gauges={"service.queue-depth": 2.0},
    )
    samples = parse_exposition(text)
    assert samples["service_queue_depth"] == 2.0


def test_parse_exposition_rejects_garbage():
    with pytest.raises(ValueError):
        parse_exposition("this is not prometheus text\n")


def test_quantile_window_nearest_rank():
    window = QuantileWindow(size=8)
    assert window.quantile(0.5) is None
    assert window.summary()["p50"] is None
    for v in (1.0, 2.0, 3.0, 4.0):
        window.observe(v)
    # Nearest-rank: ceil(0.5 * 4) = 2nd smallest.
    assert window.quantile(0.5) == 2.0
    assert window.quantile(0.99) == 4.0
    summary = window.summary()
    assert summary["count"] == 4 and summary["p50"] == 2.0
    gauges = window.gauges("latency.seconds")
    assert gauges['latency.seconds{quantile="0.5"}'] == 2.0
    # Rolling: only the newest ``size`` observations count.
    for v in (10.0,) * 8:
        window.observe(v)
    assert window.quantile(0.5) == 10.0


def test_new_trace_id_shape():
    a, b = new_trace_id(), new_trace_id()
    assert len(a) == 16 and int(a, 16) >= 0
    assert a != b


# ---------------------------------------------------------------------------
# Trace stamping and schema
# ---------------------------------------------------------------------------


def test_spans_carry_start_ts_and_trace():
    emitter = ListEmitter()
    reg = MetricsRegistry(enabled=True, emitter=emitter)
    with reg.trace_scope(TRACE):
        with reg.span("unit.work"):
            pass
        reg.emit_event("unit.event", detail=1)
    spans = [e for e in emitter.events if e.get("kind") == "span"]
    assert spans and all(e["trace"] == TRACE for e in spans)
    assert all(isinstance(e["start_ts"], float) for e in spans)
    events = [e for e in emitter.events if e.get("kind") == "event"]
    assert events and all(e["trace"] == TRACE for e in events)
    # Outside the scope nothing is stamped.
    reg.emit_event("unit.unscoped")
    assert "trace" not in emitter.events[-1]


def test_trace_scope_noop_when_disabled():
    reg = MetricsRegistry(enabled=False)
    with reg.trace_scope(TRACE):
        assert reg.trace_id is None


# ---------------------------------------------------------------------------
# Pool-worker propagation and the Chrome exporter
# ---------------------------------------------------------------------------


@pytest.fixture
def traced_run(tmp_path):
    """One traced jobs=2 multi-start run; yields (trace_dir, main_path,
    result).  ``runs=4`` across two pool workers guarantees worker-side
    streams."""
    trace_dir = tmp_path / "trace"
    trace_dir.mkdir()
    main_path = str(trace_dir / "main.jsonl")
    reg = MetricsRegistry(
        enabled=True,
        emitter=JsonlEmitter(main_path),
        trace_dir=str(trace_dir),
    )
    reg.emit_meta()
    request = build_request(
        "bipartition", circuit="s5378", scale=0.08, seed=7, runs=4
    ).with_trace(TRACE)
    with use_registry(reg):
        result = api.run_request(request, cache="off", jobs=2)
    reg.close()
    return trace_dir, main_path, result


def test_trace_id_spans_pool_worker_streams(traced_run):
    trace_dir, main_path, result = traced_run
    worker_files = sorted(glob.glob(str(trace_dir / "worker-*.jsonl")))
    assert worker_files, "pool workers wrote no trace streams"
    all_stamped = []
    for path in [main_path, *worker_files]:
        events, problems = validate_jsonl_file(path)
        assert problems == [], f"{path}: {problems}"
        all_stamped.extend(e for e in events if "trace" in e)
    assert all_stamped
    assert {e["trace"] for e in all_stamped} == {TRACE}
    # Worker streams carry solver spans under the submitted trace id.
    worker_spans = []
    for path in worker_files:
        events, _ = validate_jsonl_file(path)
        worker_spans.extend(
            e for e in events if e.get("kind") == "span" and e.get("trace") == TRACE
        )
    assert worker_spans


def test_chrome_trace_export_merges_streams(traced_run, tmp_path):
    trace_dir, main_path, _ = traced_run
    paths = [main_path, *sorted(glob.glob(str(trace_dir / "worker-*.jsonl")))]
    out = str(tmp_path / "trace.chrome.json")
    summary = export_chrome_trace(paths, out, trace_id=TRACE)
    assert summary["streams"] == len(paths)
    assert summary["spans"] >= 1 and summary["events"] >= summary["spans"]
    with open(out, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["trace_id"] == TRACE
    rows = doc["traceEvents"]
    spans = [r for r in rows if r["ph"] == "X"]
    assert spans and all(r["dur"] >= 0 for r in spans)
    # Both worker streams contribute a named process lane (the parent
    # stream holds only unstamped metric flushes, which the trace filter
    # drops along with its lane).
    names = [r for r in rows if r["ph"] == "M" and r["name"] == "process_name"]
    assert len({r["pid"] for r in names}) >= 2
    # Deterministic merge: timestamps are sorted.
    stamps = [(r["ts"], r["pid"]) for r in rows if r["ph"] != "M"]
    assert stamps == sorted(stamps)


def test_stream_events_trace_filter(tmp_path):
    path = str(tmp_path / "mix.jsonl")
    emitter = JsonlEmitter(path)
    reg = MetricsRegistry(enabled=True, emitter=emitter)
    reg.emit_meta()
    with reg.trace_scope("aaaa"), reg.span("keep"):
        pass
    with reg.trace_scope("bbbb"), reg.span("drop"):
        pass
    reg.close()
    rows = stream_events(read_jsonl(path), trace_id="aaaa", default_pid=1)
    kept = [r for r in rows if r["ph"] == "X"]
    assert [r["name"] for r in kept] == ["keep"]


def test_traced_run_solution_identical_to_untraced():
    request = traced_request(seed=9)
    baseline = api.run_request(request.with_trace(None), cache="off")
    reg = MetricsRegistry(enabled=True, emitter=ListEmitter())
    with use_registry(reg):
        traced = api.run_request(request, cache="off")
    assert (
        traced.to_dict()["solution"] == baseline.to_dict()["solution"]
    ), "tracing changed the solve"


# ---------------------------------------------------------------------------
# Ledger + cache correlation
# ---------------------------------------------------------------------------


def test_traced_run_stamps_ledger_and_cache(tmp_path):
    from repro.cache.store import SolutionCache, use_cache

    emitter = ListEmitter()
    reg = MetricsRegistry(enabled=True, emitter=emitter)
    ledger = Ledger(str(tmp_path / "ledger"))
    request = traced_request(seed=13)
    with use_registry(reg), use_ledger(ledger), use_cache(
        SolutionCache(str(tmp_path / "cache"))
    ):
        cold = api.run_request(request, cache="use")
        hot = api.run_request(request, cache="use")
    assert cold.cache_info["status"] == "miss"
    assert hot.cache_info["status"] == "hit"
    records = ledger.records()
    assert len(records) == 1 and records[0]["trace_id"] == TRACE
    cache_events = [
        e
        for e in emitter.events
        if e.get("kind") == "event" and str(e.get("name", "")).startswith("cache.")
    ]
    assert {e["name"] for e in cache_events} >= {"cache.store", "cache.hit"}
    assert all(e.get("trace") == TRACE for e in cache_events)
    counters = reg.snapshot()["counters"]
    assert counters[series("runs.completed", trace=TRACE, verb="partition")] == 2


def test_merged_snapshot_is_order_independent():
    def snap(counts, gauge=None):
        reg = MetricsRegistry(enabled=True)
        for name, n in counts.items():
            reg.counter(name).inc(n)
        h = reg.histogram("h", (1.0, 10.0))
        for v in counts.values():
            h.observe(float(v))
        if gauge:
            reg.gauge(gauge[0]).set(gauge[1])
        return reg.snapshot()

    a = snap({series("runs.completed", trace="t1"): 2}, gauge=("g.a", 1.0))
    b = snap({series("runs.completed", trace="t1"): 3, "cache.hits": 1},
             gauge=("g.b", 2.0))
    forward = MetricsRegistry(enabled=True)
    for s in (a, b):
        forward.merge_snapshot(s)
    backward = MetricsRegistry(enabled=True)
    for s in (b, a):
        backward.merge_snapshot(s)
    assert forward.snapshot() == backward.snapshot()
    merged = forward.snapshot()
    assert merged["counters"][series("runs.completed", trace="t1")] == 5
    assert merged["histograms"]["h"]["count"] == 3


# ---------------------------------------------------------------------------
# CLI: repro obs validate / export / metrics
# ---------------------------------------------------------------------------


def test_cli_obs_validate_reports_line_numbers(tmp_path, capsys):
    good = tmp_path / "good.jsonl"
    emitter = JsonlEmitter(str(good))
    reg = MetricsRegistry(enabled=True, emitter=emitter)
    reg.emit_meta()
    reg.emit_event("ok")
    reg.close()
    assert main(["obs", "validate", str(good)]) == 0
    assert "ok (" in capsys.readouterr().out

    bad = tmp_path / "bad.jsonl"
    bad.write_text(
        good.read_text() + json.dumps({"kind": "span", "name": "broken"}) + "\n"
    )
    assert main(["obs", "validate", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "INVALID" in out and "line 3" in out


def test_cli_obs_export_and_metrics(traced_run, tmp_path, capsys):
    trace_dir, main_path, _ = traced_run
    out = str(tmp_path / "export.chrome.json")
    assert main(["obs", "export", "--chrome", str(trace_dir), "--out", out]) == 0
    capsys.readouterr()  # drain the export summary line
    with open(out, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["traceEvents"] and doc["displayTimeUnit"] == "ms"

    assert main(["obs", "metrics", main_path]) == 0
    samples = parse_exposition(capsys.readouterr().out)
    assert any(name.startswith("runs_completed_total") for name in samples)


# ---------------------------------------------------------------------------
# The four-surface acceptance drill (live service)
# ---------------------------------------------------------------------------


def test_service_trace_visible_on_all_four_surfaces(tmp_path, monkeypatch):
    """One ``X-Repro-Trace-Id`` must correlate the service job events,
    the worker-side solver spans, the ledger record, and the labeled
    ``/v1/metrics`` counter."""
    trace_dir = tmp_path / "trace"
    trace_dir.mkdir()
    ledger_path = str(tmp_path / "ledger")
    # Pool workers inherit the environment at fork, so the worker-side
    # ``run_request`` resolves this ledger.
    monkeypatch.setenv("REPRO_LEDGER", ledger_path)
    reg = MetricsRegistry(
        enabled=True,
        emitter=JsonlEmitter(str(trace_dir / "main.jsonl")),
        trace_dir=str(trace_dir),
    )
    reg.emit_meta()
    set_registry(reg)
    trace_id = "svc0trace0abcdef"
    try:
        with ServiceThread(
            workers=1, cache="use", cache_dir=str(tmp_path / "cache")
        ) as client:
            reply = client.submit(quick_request(seed=41), trace_id=trace_id)
            assert reply["_http_status"] == 202
            assert reply["trace_id"] == trace_id
            done = client.wait(reply["job_id"], timeout=300)
            assert done["state"] == "done"

            # Surface 1: service lifecycle events carry the trace id.
            events = list(client.stream(reply["job_id"]))
            lifecycle = [e for e in events if str(e.get("event", "")).startswith("job.")]
            assert lifecycle
            assert all(e.get("trace_id") == trace_id for e in lifecycle)

            # Surface 4: the labeled counter in the live exposition.
            samples = parse_exposition(client.metrics())
            labeled = [
                name
                for name in samples
                if name.startswith("runs_completed_total{")
                and f'trace="{trace_id}"' in name
            ]
            assert labeled, f"no trace-labeled counter in {sorted(samples)}"
    finally:
        set_registry(None)
        reg.close()

    # Surface 2: worker span streams in the shared trace dir.
    worker_spans = []
    for path in sorted(glob.glob(str(trace_dir / "worker-*.jsonl"))):
        events, problems = validate_jsonl_file(path)
        assert problems == [], f"{path}: {problems}"
        worker_spans.extend(
            e
            for e in events
            if e.get("kind") == "span" and e.get("trace") == trace_id
        )
    assert worker_spans, "no worker spans under the submitted trace id"

    # Surface 3: the ledger record written by the worker-side solve.
    records = Ledger(ledger_path).records()
    assert any(r.get("trace_id") == trace_id for r in records)

    # The merged streams export into one Perfetto-loadable timeline.
    out = str(tmp_path / "service.chrome.json")
    paths = sorted(glob.glob(str(trace_dir / "*.jsonl")))
    summary = export_chrome_trace(paths, out, trace_id=trace_id)
    assert summary["spans"] >= 1
    assert os.path.exists(out)
