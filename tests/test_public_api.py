"""The public API surface: everything advertised must import and work."""

import importlib

import pytest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__


@pytest.mark.parametrize(
    "module",
    [
        "repro.netlist",
        "repro.netlist.gates",
        "repro.netlist.netlist",
        "repro.netlist.bench_io",
        "repro.netlist.blif_io",
        "repro.netlist.validate",
        "repro.netlist.stats",
        "repro.netlist.generate",
        "repro.netlist.benchmarks",
        "repro.netlist.rent",
        "repro.techmap",
        "repro.techmap.decompose",
        "repro.techmap.cover",
        "repro.techmap.pack",
        "repro.techmap.mapped",
        "repro.hypergraph",
        "repro.hypergraph.hypergraph",
        "repro.hypergraph.build",
        "repro.hypergraph.metrics",
        "repro.replication",
        "repro.replication.adjacency",
        "repro.replication.potential",
        "repro.replication.gains",
        "repro.partition",
        "repro.partition.devices",
        "repro.partition.cost",
        "repro.partition.fm",
        "repro.partition.fm_replication",
        "repro.partition.kway",
        "repro.partition.clustering",
        "repro.core",
        "repro.core.flow",
        "repro.core.results",
        "repro.experiments",
        "repro.experiments.common",
        "repro.experiments.table1",
        "repro.experiments.table2",
        "repro.experiments.table3",
        "repro.experiments.tables4to7",
        "repro.experiments.figure3",
        "repro.experiments.record",
        "repro.robust",
        "repro.robust.errors",
        "repro.robust.budget",
        "repro.robust.faults",
        "repro.robust.runner",
        "repro.obs",
        "repro.obs.events",
        "repro.obs.metrics",
        "repro.obs.trace",
        "repro.obs.summary",
        "repro.api",
        "repro.request",
        "repro.service",
        "repro.service.jobs",
        "repro.service.quota",
        "repro.service.server",
        "repro.service.client",
        "repro.cli",
    ],
)
def test_module_imports_and_documents(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, f"{module} lacks a module docstring"


def test_public_callables_have_docstrings():
    import inspect

    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, undocumented


def test_api_surface_is_locked():
    """The ``repro.api`` facade is a stability contract: verbs and the
    result schema version only change deliberately."""
    from repro import api

    assert api.__all__ == [
        "SCHEMA_VERSION",
        "RESULT_SCHEMA_NAME",
        "RunResult",
        "PartitionRequest",
        "Algorithm",
        "CachePolicy",
        "MultilevelMode",
        "load",
        "map",
        "bipartition",
        "partition",
        "run_request",
        "cached_result",
        "analyze",
    ]
    assert api.SCHEMA_VERSION == 1
    assert api.RESULT_SCHEMA_NAME == "repro-run-result/1"
    assert api.RunResult.schema_version == 1  # dataclass default
    fields = set(api.RunResult.__dataclass_fields__)
    assert {
        "kind", "solution", "run_log", "metrics",
        "elapsed_seconds", "schema_version",
    } <= fields
    # the facade and its envelope are re-exported from the package root
    assert repro.api is api
    assert repro.RunResult is api.RunResult


def test_api_facade_quickstart():
    """The README's recommended entry point works end to end."""
    from repro import api

    result = api.partition("s5378", scale=0.08, threshold=1, seed=2)
    assert result.kind == "partition"
    assert result.schema_version == api.SCHEMA_VERSION
    assert result.solution.cost.total_cost > 0
    assert result.run_log is None and result.metrics == {}

    resilient = api.partition("s5378", scale=0.08, threshold=1, seed=2, deadline=60)
    assert resilient.run_log is not None
    assert resilient.solution.cost.total_cost == result.solution.cost.total_cost


def test_readme_quickstart_runs():
    """The README's quickstart snippet must work verbatim (small scale)."""
    from repro import (
        FMConfig,
        ReplicationConfig,
        benchmark_circuit,
        build_hypergraph,
        fm_bipartition,
        replication_bipartition,
        technology_map,
    )

    netlist = benchmark_circuit("s5378", scale=0.08)
    mapped = technology_map(netlist)
    hg = build_hypergraph(mapped, include_terminals=False)
    fm = fm_bipartition(hg, FMConfig(seed=42))
    fr = replication_bipartition(hg, ReplicationConfig(seed=42))
    assert fm.cut_size >= 0 and fr.cut_size >= 0
