"""Light tests for the experiment record driver (no heavy runs)."""

import os

from repro.experiments.record import KWAY_SCALES, _write
from repro.netlist.benchmarks import BENCHMARK_NAMES


def test_kway_scales_cover_all_benchmarks():
    assert set(KWAY_SCALES) == set(BENCHMARK_NAMES)
    for scale in KWAY_SCALES.values():
        assert 0.0 < scale <= 1.0


def test_small_circuits_run_at_full_scale():
    # The small circuits are recorded at the published sizes.
    for name in ("c3540", "c6288"):
        assert KWAY_SCALES[name] == 1.0


def test_write_helper(tmp_path, capsys):
    _write(str(tmp_path), "x.txt", "hello")
    with open(os.path.join(str(tmp_path), "x.txt")) as handle:
        assert handle.read() == "hello\n"
    assert "wrote" in capsys.readouterr().out
