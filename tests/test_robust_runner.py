"""End-to-end tests of the resilient orchestration layer.

Every resilience path is driven deterministically with the fault
harness: crashes recover via perturbed-seed retries, persistent engine
failures walk the degradation cascade down to plain FM, expired budgets
return verified best-so-far solutions, and only a total wipe-out raises
:class:`BudgetExceededError`.
"""

import json

import pytest

from repro.netlist.benchmarks import benchmark_circuit
from repro.partition.devices import Device, DeviceLibrary
from repro.partition.fm_replication import FUNCTIONAL, TRADITIONAL
from repro.partition.kway import KWayConfig, KWaySolution, partition_heterogeneous
from repro.robust import faults
from repro.robust.budget import Budget
from repro.robust.errors import (
    BudgetExceededError,
    ConfigError,
    SolverTimeoutError,
)
from repro.robust.faults import Fault, FaultError
from repro.robust.runner import (
    ENGINE_LADDER,
    ResilientRunner,
    RunnerConfig,
    engine_cascade,
)
from repro.techmap.mapped import technology_map

TINY_LIBRARY = DeviceLibrary(
    [
        Device("T16", clbs=16, terminals=24, price=10, util_upper=0.95),
        Device("T32", clbs=32, terminals=36, price=17, util_upper=0.95),
        Device("T64", clbs=64, terminals=52, price=30, util_upper=0.95),
    ],
    name="tiny",
)

#: Small solver knobs so each attempt stays cheap.
FAST = dict(
    threshold=1,
    library=TINY_LIBRARY,
    seed=3,
    seeds_per_carve=2,
    devices_per_carve=2,
    max_passes=8,
)


@pytest.fixture(scope="module")
def mapped():
    return technology_map(benchmark_circuit("s5378", scale=0.12, seed=7))


def all_cells_placed(mapped, solution):
    placed = set()
    for block in solution.blocks:
        placed.update(block.originals)
    return placed == {c.name for c in mapped.cells}


class TestCascadeSpec:
    def test_full_ladder(self):
        assert engine_cascade("fm+functional") == list(ENGINE_LADDER)

    def test_ladder_from_middle(self):
        assert engine_cascade("fm+traditional") == ["fm+traditional", "fm"]

    def test_no_fallback(self):
        assert engine_cascade("fm+functional", fallback=False) == ["fm+functional"]

    def test_unknown_engine(self):
        with pytest.raises(ConfigError):
            engine_cascade("simulated-annealing")


class TestRunnerConfig:
    def test_config_and_overrides_conflict(self):
        with pytest.raises(ConfigError):
            ResilientRunner(RunnerConfig(), deadline=1.0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError):
            ResilientRunner(max_retries=-1)


class TestHappyPath:
    def test_unlimited_run_succeeds_first_try(self, mapped):
        runner = ResilientRunner(max_retries=0)
        result = runner.kway(mapped, **FAST)
        assert isinstance(result.solution, KWaySolution)
        assert result.engine == "fm+functional"
        assert result.log.outcomes()[-1] == "ok"
        assert result.log.degradations() == []
        assert not result.degraded
        assert all_cells_placed(mapped, result.solution)

    def test_log_is_json_serializable(self, mapped):
        runner = ResilientRunner(max_retries=0)
        result = runner.kway(mapped, **FAST)
        payload = json.dumps(result.log.as_dicts())
        assert "attempt" in payload
        summary = result.log.summary()
        assert summary["attempts"] >= 1 and summary["degradations"] == []


class TestDeadline:
    def test_tight_deadline_returns_best_so_far(self, mapped):
        """A deadline far below the solve time still yields a verified,
        fully populated solution instead of raising."""
        # A delay at every carve makes the budget expire mid-search
        # regardless of machine speed.
        with faults.inject(Fault("kway.carve", delay=0.02)):
            runner = ResilientRunner(deadline=0.1, max_retries=0)
            result = runner.kway(mapped, **FAST)
        assert isinstance(result.solution, KWaySolution)
        assert all_cells_placed(mapped, result.solution)
        assert result.log.attempts()  # something was tried and logged

    def test_graceful_zero_budget_truncates(self, mapped):
        """An already-expired graceful budget dumps everything into one
        best-effort block."""
        solution = partition_heterogeneous(
            mapped, KWayConfig(budget=Budget(0.0), **FAST)
        )
        assert solution.truncated
        assert solution.k == 1
        assert all_cells_placed(mapped, solution)
        assert solution.summary()["truncated"] is True

    def test_strict_budget_raises(self, mapped):
        with pytest.raises(SolverTimeoutError):
            partition_heterogeneous(
                mapped,
                KWayConfig(budget=Budget(0.0, graceful=False), **FAST),
            )


class TestRetry:
    def test_recovers_from_injected_crash_with_new_seed(self, mapped):
        with faults.inject(
            Fault("engine.run", error=FaultError, match={"style": FUNCTIONAL}, times=1)
        ):
            runner = ResilientRunner(max_retries=2)
            result = runner.kway(mapped, **FAST)
        outcomes = result.log.outcomes()
        assert outcomes[0] == "error"
        assert outcomes[-1] == "ok"
        attempts = result.log.attempts()
        assert attempts[0].seed != attempts[1].seed  # perturbed retry
        assert result.engine == "fm+functional"  # no degradation needed
        assert "FaultError" in attempts[0].detail


class TestDegradation:
    def test_cascade_ends_at_plain_fm(self, mapped):
        """Persistent failures of both replication styles drive the run
        down to the plain-FM baseline."""
        with faults.inject(
            Fault("engine.run", error=FaultError, match={"style": FUNCTIONAL}),
            Fault("engine.run", error=FaultError, match={"style": TRADITIONAL}),
        ):
            runner = ResilientRunner(max_retries=0)
            result = runner.kway(mapped, **FAST)
        assert result.log.degradations() == ["fm+traditional", "fm"]
        assert result.engine == "fm"
        assert result.degraded
        assert result.log.outcomes()[-1] == "ok"
        assert all_cells_placed(mapped, result.solution)

    def test_no_fallback_disables_cascade(self, mapped):
        with faults.inject(
            Fault("engine.run", error=FaultError, match={"style": FUNCTIONAL})
        ):
            runner = ResilientRunner(max_retries=0, fallback=False)
            with pytest.raises(BudgetExceededError):
                runner.kway(mapped, **FAST)


class TestGiveUp:
    def test_total_failure_raises_with_log(self, mapped):
        with faults.inject(Fault("kway.carve", error=FaultError)):
            runner = ResilientRunner(max_retries=1)
            with pytest.raises(BudgetExceededError) as err:
                runner.kway(mapped, **FAST)
        log = err.value.log
        assert log is not None
        # 2 attempts on each of the 3 cascade rungs, all failed.
        assert len(log.attempts()) == 6
        assert set(log.outcomes()) == {"error"}
        assert log.degradations() == ["fm+traditional", "fm"]


class TestBipartition:
    def test_happy_path(self, mapped):
        runner = ResilientRunner(max_retries=0)
        result = runner.bipartition(mapped, runs=2, seed=5)
        assert result.report.runs == 2
        assert result.report.best_cut >= 0
        assert result.log.outcomes() == ["ok"]

    def test_crash_then_recover(self, mapped):
        with faults.inject(
            Fault("engine.run", error=FaultError, match={"style": FUNCTIONAL}, times=1)
        ):
            runner = ResilientRunner(max_retries=1)
            result = runner.bipartition(mapped, runs=2, seed=5)
        assert result.log.outcomes() == ["error", "ok"]
        assert result.report.runs == 2

    def test_deadline_truncates_runs(self, mapped):
        with faults.inject(Fault("engine.run", delay=0.05)):
            runner = ResilientRunner(deadline=0.12, max_retries=0)
            result = runner.bipartition(mapped, runs=40, seed=5)
        assert 1 <= result.report.runs < 40
        assert result.log.outcomes() == ["truncated"]


class TestCli:
    def test_partition_with_deadline(self, capsys):
        from repro.cli import main

        code = main(
            [
                "partition",
                "s5378",
                "--scale",
                "0.08",
                "--deadline",
                "60",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] in ENGINE_LADDER
        assert payload["run_log_summary"]["attempts"] >= 1
        assert isinstance(payload["run_log"], list)

    def test_bipartition_with_deadline(self, capsys):
        from repro.cli import main

        code = main(
            [
                "bipartition",
                "s5378",
                "--scale",
                "0.08",
                "--runs",
                "2",
                "--deadline",
                "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "attempt(s)" in out
