"""Tests for the independent k-way solution verifier."""

import pytest

from repro.netlist.benchmarks import benchmark_circuit
from repro.partition.devices import Device, DeviceLibrary
from repro.partition.kway import KWayConfig, T_OFF, partition_heterogeneous
from repro.partition.verify import verify_solution
from repro.techmap.mapped import technology_map

LIB = DeviceLibrary(
    [
        Device("T16", 16, 24, 10, util_upper=0.95),
        Device("T32", 32, 36, 17, util_upper=0.95),
        Device("T64", 64, 52, 30, util_upper=0.95),
    ]
)


@pytest.fixture(scope="module")
def mapped():
    return technology_map(benchmark_circuit("s5378", scale=0.12, seed=7))


@pytest.mark.parametrize("threshold", [T_OFF, 0, 1, 2])
def test_solutions_verify_clean(mapped, threshold):
    sol = partition_heterogeneous(
        mapped,
        KWayConfig(library=LIB, threshold=threshold, seed=3, seeds_per_carve=2),
    )
    assert verify_solution(mapped, sol) == []


def test_combinational_circuit_verifies():
    mapped = technology_map(benchmark_circuit("c6288", scale=0.25, seed=2))
    sol = partition_heterogeneous(
        mapped, KWayConfig(library=LIB, threshold=0, seed=5, seeds_per_carve=2)
    )
    assert verify_solution(mapped, sol) == []


class TestDetectsCorruption:
    @pytest.fixture()
    def solution(self, mapped):
        return partition_heterogeneous(
            mapped, KWayConfig(library=LIB, threshold=1, seed=3, seeds_per_carve=2)
        )

    def test_missing_instance(self, mapped, solution):
        block = max(solution.blocks, key=lambda b: b.n_clbs)
        block.cells.pop()
        block.originals.pop()
        block.cell_inputs.pop()
        block.cell_outputs.pop()
        problems = verify_solution(mapped, solution)
        assert problems

    def test_duplicate_driver(self, mapped, solution):
        src = solution.blocks[0]
        dst = solution.blocks[-1]
        dst.cells.append(src.cells[0] + "~dup")
        dst.originals.append(src.originals[0])
        dst.cell_inputs.append(list(src.cell_inputs[0]))
        dst.cell_outputs.append(list(src.cell_outputs[0]))
        problems = verify_solution(mapped, solution)
        assert any("driven by" in p for p in problems)

    def test_wrong_terminal_count(self, mapped, solution):
        solution.blocks[0].terminals += 1
        problems = verify_solution(mapped, solution)
        assert any("terminals" in p for p in problems)

    def test_misplaced_pad(self, mapped, solution):
        donor = next(b for b in solution.blocks if b.pads)
        pad = donor.pads[0]
        other = solution.blocks[-1] if donor is not solution.blocks[-1] else solution.blocks[0]
        other.pads.append(pad)
        problems = verify_solution(mapped, solution)
        assert any("placed 2 times" in p for p in problems)

    def test_net_presence_mismatch(self, mapped, solution):
        solution.blocks[0].nets.add("__phantom_net__")
        problems = verify_solution(mapped, solution)
        assert any("net presence" in p for p in problems)
