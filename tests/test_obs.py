"""Observability layer: registry semantics, tracing, JSONL schema, and the
guarantee that instrumentation never changes solver results."""

import json

import pytest

from repro.core.flow import bipartition_experiment, kway_solution, map_circuit
from repro.hypergraph.build import build_hypergraph
from repro.obs.events import (
    EVENT_SCHEMA_NAME,
    JsonlEmitter,
    ListEmitter,
    meta_event,
    validate_event,
    validate_events,
    validate_jsonl_file,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.summary import summarize_events
from repro.obs.trace import NULL_SPAN
from repro.partition.fm import FMConfig, fm_bipartition
from repro.partition.fm_replication import ReplicationConfig, replication_bipartition


@pytest.fixture
def small_mapped():
    return map_circuit("s5378", scale=0.08, seed=1994)


@pytest.fixture
def small_hg(small_mapped):
    return build_hypergraph(small_mapped, include_terminals=False)


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry(enabled=True)
    reg.counter("a").inc()
    reg.counter("a").inc(4)
    reg.gauge("g").set(2.5)
    reg.gauge("g").set(7.0)
    h = reg.histogram("h", (1.0, 10.0))
    for v in (0.5, 5.0, 50.0, 10.0):
        h.observe(v)
    snap = reg.snapshot()
    assert snap["counters"] == {"a": 5}
    assert snap["gauges"] == {"g": 7.0}
    hs = snap["histograms"]["h"]
    # bisect_left: a value equal to a bound lands in that bound's bucket
    assert hs["counts"] == [1, 2, 1]
    assert hs["count"] == 4 and hs["min"] == 0.5 and hs["max"] == 50.0


def test_histogram_rejects_unsorted_buckets():
    reg = MetricsRegistry(enabled=True)
    with pytest.raises(ValueError):
        reg.histogram("bad", (2.0, 1.0))


def test_instruments_are_cached_per_name():
    reg = MetricsRegistry(enabled=True)
    assert reg.counter("x") is reg.counter("x")
    assert reg.gauge("y") is reg.gauge("y")
    assert reg.histogram("z", (1.0,)) is reg.histogram("z", (1.0,))


def test_disabled_registry_is_inert():
    reg = MetricsRegistry(enabled=False)
    # shared null instruments, no allocation per call
    assert reg.counter("a") is reg.counter("b")
    assert reg.gauge("a") is reg.gauge("b")
    assert reg.histogram("a", (1.0,)) is reg.histogram("b", (2.0,))
    reg.counter("a").inc(100)
    reg.gauge("a").set(9)
    reg.histogram("a", (1.0,)).observe(3)
    assert reg.span("s") is NULL_SPAN
    reg.emit_event("nope", x=1)
    reg.emit_meta()
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert reg.finished_spans == []


def test_registry_installation_is_scoped():
    assert get_registry() is NULL_REGISTRY
    mine = MetricsRegistry(enabled=True)
    with use_registry(mine):
        assert get_registry() is mine
    assert get_registry() is NULL_REGISTRY
    set_registry(mine)
    try:
        assert get_registry() is mine
    finally:
        set_registry(None)
    assert get_registry() is NULL_REGISTRY


def test_merge_snapshot_folds_worker_metrics():
    worker = MetricsRegistry(enabled=True)
    worker.counter("c").inc(3)
    worker.gauge("g").set(1.5)
    worker.histogram("h", (1.0, 2.0)).observe(0.5)
    parent = MetricsRegistry(enabled=True)
    parent.counter("c").inc(1)
    parent.histogram("h", (1.0, 2.0)).observe(5.0)
    parent.merge_snapshot(worker.snapshot())
    snap = parent.snapshot()
    assert snap["counters"]["c"] == 4
    assert snap["gauges"]["g"] == 1.5
    h = snap["histograms"]["h"]
    assert h["count"] == 2 and h["min"] == 0.5 and h["max"] == 5.0
    assert h["counts"] == [1, 0, 1]


def test_merge_snapshot_rejects_mismatched_buckets():
    worker = MetricsRegistry(enabled=True)
    worker.histogram("h", (1.0,)).observe(0.5)
    parent = MetricsRegistry(enabled=True)
    parent.histogram("h", (2.0,)).observe(0.5)
    with pytest.raises(ValueError):
        parent.merge_snapshot(worker.snapshot())


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


def test_span_nesting_records_parent_and_depth():
    reg = MetricsRegistry(enabled=True)
    with reg.span("outer", level=0):
        with reg.span("inner"):
            pass
        with reg.span("inner"):
            pass
    names = [s["name"] for s in reg.finished_spans]
    assert names == ["inner", "inner", "outer"]  # exit order
    outer = reg.finished_spans[-1]
    inner1, inner2 = reg.finished_spans[:2]
    assert outer["parent"] is None and outer["depth"] == 0
    assert inner1["parent"] == outer["id"] and inner1["depth"] == 1
    assert inner2["parent"] == outer["id"] and inner2["depth"] == 1
    assert inner1["id"] != inner2["id"]
    assert outer["attrs"] == {"level": 0}
    assert all(s["dur_s"] >= 0 for s in reg.finished_spans)


def test_profile_mode_adds_cpu_seconds():
    reg = MetricsRegistry(enabled=True, profile=True)
    with reg.span("work"):
        sum(range(1000))
    record = reg.finished_spans[0]
    assert "cpu_s" in record and record["cpu_s"] >= 0
    plain = MetricsRegistry(enabled=True)
    with plain.span("work"):
        pass
    assert "cpu_s" not in plain.finished_spans[0]


# ---------------------------------------------------------------------------
# Event schema
# ---------------------------------------------------------------------------


def test_meta_event_conforms():
    assert validate_event(meta_event()) == []


def test_validate_event_rejects_malformed():
    assert validate_event([]) != []
    assert validate_event({"v": 2, "ts": 0, "kind": "meta", "name": "x"}) != []
    assert validate_event({"v": 1, "ts": 0, "kind": "wat", "name": "x"}) != []
    bad_span = {"v": 1, "ts": 0, "kind": "span", "name": "s", "id": "no",
                "parent": None, "depth": 0, "dur_s": 0.1, "attrs": {}}
    assert any("span id" in p for p in validate_event(bad_span))


def test_validate_events_requires_meta_header():
    reg = MetricsRegistry(enabled=True, emitter=ListEmitter())
    reg.counter("c").inc()
    reg.flush_metrics()
    assert any("meta" in p for p in validate_events(reg.emitter.events))
    assert validate_events([]) == ["empty event stream"]


def test_flush_metrics_and_spans_validate(tmp_path):
    path = tmp_path / "events.jsonl"
    reg = MetricsRegistry(enabled=True, emitter=JsonlEmitter(str(path)))
    reg.emit_meta()
    with reg.span("run", circuit="x"):
        reg.counter("runs").inc()
        reg.histogram("secs", (0.1, 1.0)).observe(0.05)
        reg.gauge("temp").set(3.0)
        reg.emit_event("milestone", step=1)
    reg.close()
    events, problems = validate_jsonl_file(str(path))
    assert problems == []
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "meta"
    for kind in ("span", "event", "counter", "gauge", "histogram"):
        assert kind in kinds
    # the file is valid JSON line by line (Infinity etc. would break this)
    for line in path.read_text().splitlines():
        json.loads(line)


def test_summarize_events_mentions_spans_and_counters():
    reg = MetricsRegistry(enabled=True, emitter=ListEmitter())
    reg.emit_meta()
    with reg.span("fm.run", seed=3):
        reg.counter("fm.passes").inc(2)
    reg.flush_metrics()
    text = summarize_events(reg.emitter.events)
    assert "fm.run" in text and "fm.passes" in text


# ---------------------------------------------------------------------------
# Instrumented solvers: metrics appear, results never change
# ---------------------------------------------------------------------------


def test_fm_metrics_and_equivalence(small_hg):
    config = FMConfig(seed=11)
    plain = fm_bipartition(small_hg, config)
    reg = MetricsRegistry(enabled=True)
    with use_registry(reg):
        traced = fm_bipartition(small_hg, config)
    assert traced.assignment == plain.assignment
    assert traced.cut_size == plain.cut_size
    counters = reg.snapshot()["counters"]
    assert counters["fm.runs"] == 1
    assert counters["fm.passes"] >= 1
    assert counters["fm.moves"] >= 1
    hist = reg.snapshot()["histograms"]["fm.pass_seconds"]
    assert hist["count"] == counters["fm.passes"]
    assert [s["name"] for s in reg.finished_spans] == ["fm.run"]


def test_replication_metrics_and_equivalence(small_hg):
    config = ReplicationConfig(seed=5, threshold=1)
    plain = replication_bipartition(small_hg, config)
    reg = MetricsRegistry(enabled=True)
    with use_registry(reg):
        traced = replication_bipartition(small_hg, config)
    assert traced.sides == plain.sides
    assert traced.replicas == plain.replicas
    assert traced.cut_size == plain.cut_size
    counters = reg.snapshot()["counters"]
    assert counters["repl.runs"] == 1
    assert counters["repl.passes"] >= 1
    moves = (
        counters.get("repl.moves.single", 0)
        + counters.get("repl.moves.replicate", 0)
        + counters.get("repl.moves.unreplicate", 0)
    )
    assert moves >= 1
    assert counters["repl.sgain_updates"] >= 0
    assert reg.finished_spans[-1]["name"] == "repl.run"


def test_kway_metrics_and_equivalence(small_mapped):
    def shape(solution):
        return [
            (b.device.name, sorted(b.cells), sorted(b.pads))
            for b in solution.blocks
        ]

    plain = kway_solution(small_mapped, threshold=1, seed=2, n_solutions=1)
    reg = MetricsRegistry(enabled=True, emitter=ListEmitter())
    with use_registry(reg):
        traced = kway_solution(small_mapped, threshold=1, seed=2, n_solutions=1)
    assert shape(traced) == shape(plain)
    assert traced.cost.total_cost == plain.cost.total_cost
    counters = reg.snapshot()["counters"]
    assert counters["kway.carve_levels"] == len(plain.blocks)
    assert [s["name"] for s in reg.finished_spans if s["depth"] == 0] == [
        "kway.partition"
    ]
    final_events = [
        e for e in reg.emitter.events if e.get("name") == "kway.final_block"
    ]
    assert len(final_events) == 1
    assert validate_events([meta_event()] + reg.emitter.events) == []


def test_runner_events_mirrored_into_registry(small_mapped):
    from repro.robust.runner import ResilientRunner

    reg = MetricsRegistry(enabled=True, emitter=ListEmitter())
    with use_registry(reg):
        result = ResilientRunner(max_retries=1).kway(
            small_mapped, threshold=1, seed=2
        )
    assert result.solution.feasible
    counters = reg.snapshot()["counters"]
    assert counters["runner.attempt"] == len(result.log.attempts())
    attempt_events = [
        e for e in reg.emitter.events if e.get("name") == "runner.attempt"
    ]
    assert len(attempt_events) == counters["runner.attempt"]
    assert attempt_events[0]["fields"]["kind"] == "attempt"


def test_parallel_jobs_aggregate_worker_metrics(small_mapped):
    reg = MetricsRegistry(enabled=True)
    with use_registry(reg):
        report = bipartition_experiment(
            small_mapped, algorithm="fm+functional", runs=3, seed=1, jobs=2
        )
    counters = reg.snapshot()["counters"]
    assert report.runs == 3
    assert counters["repl.runs"] == 3
    assert counters["parallel.tasks"] == 3
    assert reg.snapshot()["histograms"]["repl.pass_seconds"]["count"] >= 3


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_trace_partition_and_analyze(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "run.jsonl"
    code = main(
        [
            "partition", "s5378", "--scale", "0.08",
            "--trace", "--metrics-out", str(trace),
        ]
    )
    assert code == 0
    events, problems = validate_jsonl_file(str(trace))
    assert problems == [] and events[0]["schema"] == EVENT_SCHEMA_NAME
    capsys.readouterr()

    assert main(["analyze", "--metrics", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "kway.partition" in out

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"v": 1, "ts": 0, "kind": "wat", "name": "x"}\n')
    assert main(["analyze", "--metrics", str(bad), "--json"]) == 1


def test_cli_analyze_requires_circuit_or_metrics():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["analyze"])


# ---------------------------------------------------------------------------
# Deprecated parameter shims
# ---------------------------------------------------------------------------


def test_flow_style_kwarg_warns_and_still_works(small_mapped):
    with pytest.warns(DeprecationWarning):
        a = kway_solution(small_mapped, threshold=1, seed=2, style="functional")
    b = kway_solution(small_mapped, threshold=1, seed=2, algorithm="fm+functional")
    assert a.cost.total_cost == b.cost.total_cost


def test_runner_engine_kwarg_warns(small_mapped):
    from repro.robust.runner import ResilientRunner

    with pytest.warns(DeprecationWarning):
        result = ResilientRunner(max_retries=0).kway(
            small_mapped, threshold=1, seed=2, engine="fm+functional"
        )
    assert result.solution is not None


def test_flow_rejects_unknown_algorithm(small_mapped):
    from repro.robust.errors import ConfigError

    with pytest.raises(ConfigError):
        kway_solution(small_mapped, threshold=1, algorithm="simulated-annealing")


# ---------------------------------------------------------------------------
# Edge cases: torn streams, disjoint merges, interleaved workers
# ---------------------------------------------------------------------------


def test_validate_jsonl_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    events, problems = validate_jsonl_file(str(path))
    assert events == []
    assert any("empty event stream" in p for p in problems)


def test_validate_jsonl_reports_truncated_line(tmp_path):
    from repro.obs.events import read_jsonl

    path = tmp_path / "torn.jsonl"
    path.write_text(
        json.dumps(meta_event()) + "\n"
        + json.dumps({"v": 1, "ts": 0.0, "kind": "counter",
                      "name": "c", "value": 3}) + "\n"
        + '{"v": 1, "ts": 0.0, "kind": "coun'  # torn tail, no newline
    )
    events, problems = validate_jsonl_file(str(path))
    assert events == [] and len(problems) == 1
    assert "not valid JSON" in problems[0] and ":3:" in problems[0]
    # skip_invalid drops only the torn line (the ledger reads this way)
    survivors = read_jsonl(str(path), skip_invalid=True)
    assert [e["kind"] for e in survivors] == ["meta", "counter"]


def test_merge_snapshot_adopts_unknown_histogram_buckets():
    worker = MetricsRegistry(enabled=True)
    worker.histogram("only.in.worker", (1.0, 2.0)).observe(1.5)
    parent = MetricsRegistry(enabled=True)
    parent.histogram("only.in.parent", (5.0,)).observe(0.1)
    parent.merge_snapshot(worker.snapshot())
    snap = parent.snapshot()
    adopted = snap["histograms"]["only.in.worker"]
    assert adopted["bounds"] == [1.0, 2.0]
    assert adopted["count"] == 1 and adopted["counts"] == [0, 1, 0]
    # the parent's own disjoint histogram is untouched
    assert snap["histograms"]["only.in.parent"]["count"] == 1


def test_summarize_interleaved_multi_worker_events():
    """Per-worker streams concatenated out of order still summarize."""
    streams = []
    for pid in (101, 202):
        reg = MetricsRegistry(enabled=True, emitter=ListEmitter())
        reg.emit_meta()
        with use_registry(reg):
            with reg.span("carve", worker=pid):
                reg.counter("fm.moves").inc(10 + pid)
        reg.close()
        streams.append(reg.emitter.events)
    # interleave the two workers' events line by line
    interleaved = [e for pair in zip(streams[0], streams[1]) for e in pair]
    assert validate_events(interleaved) == []
    text = summarize_events(interleaved)
    assert "carve" in text and "fm.moves" in text
    # both workers' counter lines survive, not just the last one
    assert text.count("fm.moves") == 2
