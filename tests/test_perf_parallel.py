"""The parallel fan-out layer and multi-start config derivation.

Determinism of the parallel winners (``jobs N`` == ``jobs 1``) is covered
end to end in ``tests/test_fm_equivalence.py``; this module tests the
plumbing: jobs resolution, cross-process budget capture, clean ``jobs=1``
degradation, and the :func:`dataclasses.replace`-based config derivation
of the multi-start drivers (derived runs must *share* the base config's
budget object and fixed mapping, never copy them).
"""

import random

import pytest

import repro.partition.fm as fm_mod
import repro.partition.fm_replication as repl_mod
from repro.partition.fm import FMConfig
from repro.partition.fm_replication import ReplicationConfig
from repro.perf.parallel import (
    _budget_allotment,
    _rebuild_budget,
    resolve_jobs,
)
from repro.robust.budget import Budget
from tests.test_gain_model import _random_hypergraph


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_all_cores(self):
        import os

        cores = os.cpu_count() or 1
        assert resolve_jobs(None) == cores
        assert resolve_jobs(0) == cores
        assert resolve_jobs(-1) == cores


class TestBudgetCapture:
    def test_no_budget(self):
        assert _budget_allotment(None) == (None, True)
        assert _rebuild_budget(None, True, limited=False) is None

    def test_unlimited_budget(self):
        remaining, graceful = _budget_allotment(Budget(None))
        assert remaining is None and graceful is True
        rebuilt = _rebuild_budget(remaining, graceful, limited=True)
        assert rebuilt is not None and not rebuilt.expired

    def test_limited_budget(self):
        remaining, graceful = _budget_allotment(Budget(30.0, graceful=False))
        assert remaining is not None and 0 < remaining <= 30.0
        assert graceful is False
        rebuilt = _rebuild_budget(remaining, graceful, limited=True)
        assert rebuilt is not None
        assert rebuilt.graceful is False
        assert rebuilt.remaining() <= remaining

    def test_expired_budget_rebuilds_expired(self):
        budget = Budget(0.0)
        remaining, graceful = _budget_allotment(budget)
        rebuilt = _rebuild_budget(remaining, graceful, limited=True)
        assert rebuilt is not None and rebuilt.expired


class TestDerivedConfigs:
    """`best_of_runs` derives per-run configs with ``dataclasses.replace``:
    only the seed differs, and mutable members are shared, not copied."""

    def test_fm_runs_share_budget_and_fixed(self, monkeypatch):
        hg = _random_hypergraph(random.Random(17))
        budget = Budget(None)
        fixed = {0: 1}
        base = FMConfig(seed=2, budget=budget, fixed=fixed)
        seen = []
        real = fm_mod.fm_bipartition

        def spy(hg_, config=None, initial=None, compact=None):
            seen.append(config)
            return real(hg_, config, initial, compact=compact)

        monkeypatch.setattr(fm_mod, "fm_bipartition", spy)
        fm_mod.best_of_runs(hg, runs=3, base_config=base)
        assert len(seen) == 3
        assert all(cfg.budget is budget for cfg in seen)
        assert all(cfg.fixed is fixed for cfg in seen)
        assert [cfg.seed for cfg in seen] == [base.seed * 7919 + r for r in range(3)]
        assert base.seed == 2  # the base config itself is untouched

    def test_replication_runs_share_budget_and_fixed(self, monkeypatch):
        hg = _random_hypergraph(random.Random(18))
        budget = Budget(None)
        fixed = {0: 0}
        base = ReplicationConfig(seed=3, threshold=1, budget=budget, fixed=fixed)
        seen = []
        real = repl_mod.replication_bipartition

        def spy(hg_, config=None, initial=None, tables=None):
            seen.append(config)
            return real(hg_, config, initial, tables=tables)

        monkeypatch.setattr(repl_mod, "replication_bipartition", spy)
        repl_mod.best_of_runs(hg, runs=3, base_config=base)
        assert len(seen) == 3
        assert all(cfg.budget is budget for cfg in seen)
        assert all(cfg.fixed is fixed for cfg in seen)
        assert [cfg.seed for cfg in seen] == [base.seed * 7919 + r for r in range(3)]


class TestDegradation:
    def test_jobs_1_never_touches_the_pool(self, monkeypatch):
        import repro.perf.parallel as par

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("jobs=1 must stay sequential")

        monkeypatch.setattr(par, "parallel_best_of_runs_fm", boom)
        monkeypatch.setattr(par, "parallel_best_of_runs_replication", boom)
        hg = _random_hypergraph(random.Random(19))
        best, cuts = fm_mod.best_of_runs(hg, runs=2, base_config=FMConfig(seed=1))
        assert len(cuts) == 2 and best.cut_size == min(cuts)
        best, cuts = repl_mod.best_of_runs(
            hg, runs=2, base_config=ReplicationConfig(seed=1, threshold=1)
        )
        assert len(cuts) == 2 and best.cut_size == min(cuts)

    def test_parallel_with_expired_budget_still_returns(self):
        hg = _random_hypergraph(random.Random(20))
        base = FMConfig(seed=1, budget=Budget(0.0))
        best, cuts = fm_mod.best_of_runs(hg, runs=2, base_config=base, jobs=2)
        assert best is not None
        assert len(cuts) == 2  # every dispatched run reports, however briefly


class TestBalanceBounds:
    """Satellite of the bucket rewrite: balance-blocked entries are parked
    and only re-queued when a mover actually changes side-0 size in the
    re-admitting direction.  The observable contract is that explicit
    bounds hold in the final assignment and behavior matches the
    reference engine exactly (the equivalence suite); here we pin the
    bounds invariant under configurations tight enough to force parking.
    """

    @pytest.mark.parametrize("case_seed", range(6))
    def test_side0_bounds_hold(self, case_seed):
        hg = _random_hypergraph(random.Random(case_seed * 31 + 7))
        total = hg.total_clb_weight()
        lo = max(1, total // 3)
        hi = max(lo, total // 2)
        result = fm_mod.fm_bipartition(
            hg, FMConfig(seed=case_seed, side0_bounds=(lo, hi))
        )
        s0 = sum(
            hg.nodes[v].clb_weight
            for v, s in enumerate(result.assignment)
            if s == 0
        )
        assert lo <= s0 <= hi

    def test_blocked_node_moves_once_capacity_frees(self):
        """A high-gain mover that starts inadmissible must still land once
        another move frees capacity, not be dropped for the pass."""
        for case_seed in range(8):
            hg = _random_hypergraph(random.Random(case_seed * 13 + 3))
            total = hg.total_clb_weight()
            half = total // 2
            config = FMConfig(seed=case_seed, side0_bounds=(half, half + 1))
            fast = fm_mod.fm_bipartition(hg, config)
            from repro.partition.reference import reference_fm_bipartition

            ref = reference_fm_bipartition(hg, config)
            assert fast.assignment == ref.assignment
            assert fast.pass_gains == ref.pass_gains
