"""Tests for the heterogeneous k-way partitioner."""

import pytest

from repro.partition.devices import Device, DeviceLibrary
from repro.partition.kway import (
    KWayConfig,
    T_OFF,
    best_heterogeneous_partition,
    partition_heterogeneous,
)

#: A small library scaled to the test circuits so k > 1.
TINY_LIBRARY = DeviceLibrary(
    [
        Device("T16", clbs=16, terminals=24, price=10, util_upper=0.95),
        Device("T32", clbs=32, terminals=36, price=17, util_upper=0.95),
        Device("T64", clbs=64, terminals=52, price=30, util_upper=0.95),
    ],
    name="tiny",
)


@pytest.fixture(scope="module")
def mapped():
    from repro.netlist.benchmarks import benchmark_circuit
    from repro.techmap.mapped import technology_map

    return technology_map(benchmark_circuit("s5378", scale=0.12, seed=7))


@pytest.fixture(scope="module")
def solution(mapped):
    return partition_heterogeneous(
        mapped,
        KWayConfig(library=TINY_LIBRARY, threshold=1, seed=3, seeds_per_carve=2),
    )


@pytest.fixture(scope="module")
def baseline(mapped):
    return partition_heterogeneous(
        mapped,
        KWayConfig(library=TINY_LIBRARY, threshold=T_OFF, style="none", seed=3, seeds_per_carve=2),
    )


class TestStructure:
    def test_multiway(self, solution):
        assert solution.k >= 2

    def test_every_original_cell_placed(self, mapped, solution):
        placed = set()
        for block in solution.blocks:
            placed.update(block.originals)
        originals = {c.name for c in mapped.cells}
        assert placed == originals

    def test_instance_count_geq_cells(self, mapped, solution):
        assert solution.n_instances >= mapped.n_cells
        extra = solution.n_instances - mapped.n_cells
        assert extra >= len(solution.replicated_cells)

    def test_block_sizes_match(self, solution):
        for block in solution.blocks:
            assert block.n_clbs == len(block.cells)
            assert len(block.cells) == len(block.originals)

    def test_pads_partitioned(self, mapped, solution):
        pads = [p for block in solution.blocks for p in block.pads]
        assert len(pads) == len(set(pads))
        # every PO pad placed exactly once
        po_pads = [p for p in pads if p.startswith("po:")]
        assert len(po_pads) == len(mapped.primary_outputs)


class TestTerminalAccounting:
    def test_terminal_rule(self, solution):
        net_blocks = {}
        for block in solution.blocks:
            for net in block.nets:
                net_blocks.setdefault(net, set()).add(block.index)
        for block in solution.blocks:
            expect = sum(
                1
                for net in block.nets
                if len(net_blocks[net]) > 1 or net in block.pad_nets
            )
            assert block.terminals == expect

    def test_cost_object_consistent(self, solution):
        assert solution.cost.k == solution.k
        assert solution.cost.total_cost == sum(
            b.device.price for b in solution.blocks
        )


class TestReplication:
    def test_baseline_has_no_replicas(self, baseline):
        assert not baseline.replicated_cells
        assert baseline.replicated_fraction == 0.0

    def test_replicated_cells_span_blocks(self, solution):
        counts = {}
        for block in solution.blocks:
            for orig in block.originals:
                counts[orig] = counts.get(orig, 0) + 1
        for orig in solution.replicated_cells:
            assert counts[orig] > 1

    def test_replication_fraction_moderate(self, solution):
        # Paper Table IV: single-digit percentages typically.
        assert solution.replicated_fraction <= 0.30


class TestObjectives:
    def test_summary_keys(self, solution):
        data = solution.summary()
        for key in ("k", "cost", "devices", "avg_clb_util", "avg_iob_util"):
            assert key in data

    def test_best_of_picks_leq_cost(self, mapped):
        cfg = KWayConfig(library=TINY_LIBRARY, threshold=1, seed=5, seeds_per_carve=2)
        single = partition_heterogeneous(mapped, cfg)
        best = best_heterogeneous_partition(mapped, cfg, n_solutions=3)
        key_best = (not best.feasible,) + best.cost.objective_key()
        key_single = (not single.feasible,) + single.cost.objective_key()
        assert key_best <= key_single

    def test_deterministic(self, mapped):
        cfg = KWayConfig(library=TINY_LIBRARY, threshold=1, seed=11, seeds_per_carve=2)
        a = partition_heterogeneous(mapped, cfg)
        b = partition_heterogeneous(mapped, cfg)
        assert a.cost.total_cost == b.cost.total_cost
        assert [blk.device.name for blk in a.blocks] == [
            blk.device.name for blk in b.blocks
        ]


class TestEdgeCases:
    def test_single_device_fit(self):
        from repro.netlist.generate import ripple_adder
        from repro.techmap.mapped import technology_map

        mapped = technology_map(ripple_adder("add", 4))
        sol = partition_heterogeneous(
            mapped, KWayConfig(library=TINY_LIBRARY, threshold=1)
        )
        assert sol.k == 1
        assert sol.feasible

    def test_library_too_small_raises_or_infeasible(self, mapped):
        micro = DeviceLibrary(
            [Device("T4", clbs=4, terminals=4, price=1, util_upper=1.0)]
        )
        # Either the carver works (every block <= 4 CLBs with <= 4 terminals
        # is unlikely) or it reports an infeasible best effort; it must not
        # loop forever.
        try:
            sol = partition_heterogeneous(
                mapped,
                KWayConfig(library=micro, threshold=T_OFF, style="none",
                           seeds_per_carve=1, devices_per_carve=1, max_blocks=400),
            )
            assert not sol.feasible or sol.k > 10
        except RuntimeError:
            pass
