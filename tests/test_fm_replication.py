"""Tests for the replication-aware FM engine."""

from collections import defaultdict

import pytest

from repro.partition.fm_replication import (
    FUNCTIONAL,
    NONE,
    TRADITIONAL,
    ReplicationConfig,
    ReplicationEngine,
    best_of_runs,
    replication_bipartition,
)


def _recount(engine):
    """Recompute net pin counts from scratch (ground truth)."""
    counts = defaultdict(lambda: [0, 0])
    for v in range(len(engine.hg.nodes)):
        for net, side, k in engine.active_pins(v):
            counts[net][side] += k
    return counts


def _assert_counts_consistent(engine):
    counts = _recount(engine)
    for net in range(len(engine.hg.nets)):
        assert engine.counts[net] == counts[net], engine.hg.nets[net].name


class TestStateMachine:
    def test_counts_after_run(self, small_hg):
        engine = ReplicationEngine(small_hg, ReplicationConfig(seed=1, threshold=0))
        result = engine.run()
        _assert_counts_consistent(engine)
        recut = sum(
            1
            for net in range(len(small_hg.nets))
            if engine.counts[net][0] > 0
            and engine.counts[net][1] > 0
            and engine.split[net] == 0
        )
        assert recut == result.cut_size

    def test_move_gain_equals_applied_delta(self, small_hg):
        engine = ReplicationEngine(small_hg, ReplicationConfig(seed=2, threshold=0))
        engine.run()
        import random

        rng = random.Random(0)
        cells = [v for v in range(len(small_hg.nodes)) if small_hg.nodes[v].is_cell]
        checked = 0
        for v in rng.sample(cells, min(60, len(cells))):
            for gain, side, rep in engine.candidate_moves(v):
                before = engine.cut_size()
                old = (engine.side[v], engine.rep[v])
                engine.set_state(v, side, rep)
                after = engine.cut_size()
                assert before - after == gain, (v, side, rep)
                engine.set_state(v, old[0], old[1])
                assert engine.cut_size() == before
                checked += 1
        assert checked > 50

    def test_sizes_track_instances(self, small_hg):
        engine = ReplicationEngine(small_hg, ReplicationConfig(seed=3, threshold=0))
        result = engine.run()
        sizes = [0, 0]
        for v in range(len(small_hg.nodes)):
            w = small_hg.nodes[v].clb_weight
            if engine.rep[v] is None:
                sizes[engine.side[v]] += w
            else:
                sizes[0] += w
                sizes[1] += w
        assert sizes == engine.sizes
        assert tuple(sizes) == result.instance_sizes()

    def test_replica_active_pins_subset(self, small_hg):
        engine = ReplicationEngine(small_hg, ReplicationConfig(seed=1, threshold=0))
        engine.run()
        for v, (s, o) in engine.replicas().items():
            node = small_hg.nodes[v]
            assert node.n_outputs >= 2
            assert 0 <= o < node.n_outputs
            # The replica's pins are exactly supp(o) + output o.
            repl_total = sum(k for _, k in engine.repl_pins[v][o])
            assert repl_total == len(node.supports[o]) + 1


class TestAlgorithmBehaviour:
    def test_replication_never_hurts_cut(self, small_hg):
        # From the same seed, the replication engine's final cut must be at
        # least as good as its own move-only warm phase.
        for seed in range(3):
            none_cfg = ReplicationConfig(seed=seed, style=NONE)
            with_cfg = ReplicationConfig(seed=seed, threshold=0)
            cut_none = replication_bipartition(small_hg, none_cfg).cut_size
            cut_with = replication_bipartition(small_hg, with_cfg).cut_size
            assert cut_with <= cut_none

    def test_replication_reduces_cut_somewhere(self, small_hg):
        improved = 0
        for seed in range(4):
            a = replication_bipartition(small_hg, ReplicationConfig(seed=seed, style=NONE))
            b = replication_bipartition(small_hg, ReplicationConfig(seed=seed, threshold=0))
            if b.cut_size < a.cut_size:
                improved += 1
        assert improved >= 1

    def test_threshold_infinity_means_no_replicas(self, small_hg):
        result = replication_bipartition(
            small_hg, ReplicationConfig(seed=1, threshold=float("inf"))
        )
        assert result.n_replicated == 0

    def test_threshold_filters_low_potential_cells(self, small_hg):
        result = replication_bipartition(
            small_hg, ReplicationConfig(seed=1, threshold=3)
        )
        engine_potentials = ReplicationEngine(
            small_hg, ReplicationConfig(seed=1)
        ).potentials
        for v in result.replicas:
            assert engine_potentials[v] >= 3

    def test_deterministic(self, small_hg):
        a = replication_bipartition(small_hg, ReplicationConfig(seed=9, threshold=0))
        b = replication_bipartition(small_hg, ReplicationConfig(seed=9, threshold=0))
        assert a.sides == b.sides
        assert a.replicas == b.replicas

    def test_traditional_style_runs(self, small_hg):
        result = replication_bipartition(
            small_hg, ReplicationConfig(seed=1, style=TRADITIONAL)
        )
        assert result.cut_size >= 0
        # Traditional replicas are tagged with output -1.
        for _, (s, o) in result.replicas.items():
            assert o == -1

    def test_traditional_split_nets_not_cut(self, small_hg):
        engine = ReplicationEngine(
            small_hg, ReplicationConfig(seed=4, style=TRADITIONAL)
        )
        engine.run()
        for net in range(len(small_hg.nets)):
            if engine.split[net] > 0:
                assert not engine.is_cut(net)

    def test_fixed_nodes_respected(self, small_hg):
        fixed = {0: 0, 1: 1}
        result = replication_bipartition(
            small_hg, ReplicationConfig(seed=2, threshold=0, fixed=fixed)
        )
        assert result.sides[0] == 0
        assert result.sides[1] == 1
        assert 0 not in result.replicas and 1 not in result.replicas

    def test_side0_bounds(self, small_hg):
        total = small_hg.total_clb_weight()
        lo, hi = total // 4, total // 3
        engine = ReplicationEngine(
            small_hg,
            ReplicationConfig(seed=2, threshold=0, side0_bounds=(lo, hi)),
        )
        engine.run()
        assert lo <= engine.sizes[0] <= hi

    def test_result_fields(self, small_hg):
        result = replication_bipartition(small_hg, ReplicationConfig(seed=0, threshold=0))
        assert result.n_cells == small_hg.n_cells
        assert 0.0 <= result.replicated_fraction <= 1.0
        assert result.cut_size <= result.initial_cut

    def test_best_of_runs(self, small_hg):
        best, cuts = best_of_runs(small_hg, 4, ReplicationConfig(seed=1, threshold=0))
        assert best.cut_size == min(cuts)
        assert len(cuts) == 4


class TestMoveVectorExtraction:
    def test_rejects_replicated_cells(self, small_hg):
        engine = ReplicationEngine(small_hg, ReplicationConfig(seed=1, threshold=0))
        engine.run()
        replicas = engine.replicas()
        if replicas:
            v = next(iter(replicas))
            with pytest.raises(ValueError):
                engine.move_vectors(v)

    def test_vectors_shape(self, small_hg):
        engine = ReplicationEngine(small_hg, ReplicationConfig(seed=1))
        for v in range(len(small_hg.nodes)):
            node = small_hg.nodes[v]
            if not node.is_cell:
                continue
            nets = list(node.input_nets) + list(node.output_nets)
            if len(set(nets)) != len(nets):
                continue
            mv = engine.move_vectors(v)
            assert mv.n_inputs == node.n_inputs
            assert mv.n_outputs == node.n_outputs
            break


class TestConfigValidation:
    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError, match="style"):
            ReplicationConfig(style="telepathy")

    def test_growth_cap_enforced(self, small_hg):
        config = ReplicationConfig(seed=1, threshold=0, max_growth=0.05)
        engine = ReplicationEngine(small_hg, config)
        engine.run()
        total = engine.sizes[0] + engine.sizes[1]
        assert total <= int(1.05 * small_hg.total_clb_weight())

    def test_growth_zero_means_no_replicas(self, small_hg):
        config = ReplicationConfig(seed=1, threshold=0, max_growth=0.0)
        result = replication_bipartition(small_hg, config)
        assert result.n_replicated == 0

    def test_warm_start_disabled_still_valid(self, small_hg):
        config = ReplicationConfig(
            seed=2, threshold=0, warm_start_moves_only=False
        )
        engine = ReplicationEngine(small_hg, config)
        result = engine.run()
        from collections import defaultdict

        counts = defaultdict(lambda: [0, 0])
        for v in range(len(small_hg.nodes)):
            for net, s, k in engine.active_pins(v):
                counts[net][s] += k
        for net in range(len(small_hg.nets)):
            assert engine.counts[net] == counts[net]
        assert result.cut_size >= 0
