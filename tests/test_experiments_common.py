"""Tests for experiment-harness plumbing."""

import pytest

from repro.experiments.common import (
    QUICK_CIRCUITS,
    TableResult,
    geomean_percent,
    standard_parser,
)
from repro.netlist.benchmarks import BENCHMARK_NAMES


def test_quick_circuits_are_valid():
    assert set(QUICK_CIRCUITS) <= set(BENCHMARK_NAMES)
    # quick subset mixes combinational and sequential circuits
    assert any(c.startswith("c") for c in QUICK_CIRCUITS)
    assert any(c.startswith("s") for c in QUICK_CIRCUITS)


def test_geomean_percent():
    assert geomean_percent([10.0, 20.0]) == 15.0
    assert geomean_percent([]) == 0.0


def test_standard_parser_defaults():
    args = standard_parser("x").parse_args([])
    assert args.scale == 0.5
    assert args.circuits is None
    assert args.seed == 1994


def test_standard_parser_overrides():
    args = standard_parser("x").parse_args(
        ["--scale", "0.2", "--circuits", "c6288", "s5378", "--seed", "3"]
    )
    assert args.scale == 0.2
    assert args.circuits == ["c6288", "s5378"]
    assert args.seed == 3


class TestTableRendering:
    def test_column_alignment(self):
        table = TableResult("Title", ["col", "x"], [["longvalue", 1], ["a", 22]])
        lines = table.text().splitlines()
        header = lines[2]
        assert header.startswith("col")
        # all data rows align with header width
        assert len(lines[4]) >= len("longvalue")

    def test_float_formatting(self):
        table = TableResult("T", ["v"], [[1.23456]])
        assert "1.23" in table.text()

    def test_notes_rendered_in_order(self):
        table = TableResult("T", ["v"], [[1]], notes=["first", "second"])
        text = table.text()
        assert text.index("first") < text.index("second")
