"""Tests for the mapped netlist and the end-to-end technology mapping."""

import random

import pytest

from repro.netlist.benchmarks import benchmark_circuit
from repro.netlist.generate import array_multiplier, ripple_adder
from repro.techmap.mapped import MappedCell, MappedNetlist, technology_map
from tests.conftest import random_small_netlist


class TestMappedCell:
    def test_adjacency_vectors(self):
        cell = MappedCell(
            name="c",
            inputs=["a", "b", "c"],
            outputs=["x", "y"],
            supports=[["a", "b"], ["b", "c"]],
            masks=[0b1000, 0b0110],
            registered=[False, False],
        )
        assert cell.adjacency_vector(0) == (1, 1, 0)
        assert cell.adjacency_vector(1) == (0, 1, 1)
        assert cell.n_pins == 5

    def test_evaluate_output(self):
        cell = MappedCell(
            name="c",
            inputs=["a", "b"],
            outputs=["x"],
            supports=[["a", "b"]],
            masks=[0b1000],  # AND
            registered=[False],
        )
        assert cell.evaluate_output(0, {"a": 1, "b": 1}) == 1
        assert cell.evaluate_output(0, {"a": 1, "b": 0}) == 0


class TestMappingEquivalence:
    def test_combinational_equivalence(self):
        n = array_multiplier("m", 3)
        mapped = technology_map(n)
        rng = random.Random(1)
        for _ in range(30):
            vec = {pi: rng.randrange(2) for pi in n.inputs}
            assert n.simulate([vec]) == mapped.simulate([vec])

    def test_adder_equivalence(self):
        n = ripple_adder("add", 6)
        mapped = technology_map(n)
        rng = random.Random(2)
        for _ in range(20):
            vec = {pi: rng.randrange(2) for pi in n.inputs}
            assert n.simulate([vec]) == mapped.simulate([vec])

    def test_sequential_equivalence(self, seq_netlist):
        mapped = technology_map(seq_netlist)
        vecs = [{"en": i % 2} for i in range(8)]
        assert seq_netlist.simulate(vecs) == mapped.simulate(vecs)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_equivalence(self, seed):
        n = random_small_netlist(seed, n_gates=50)
        mapped = technology_map(n)
        rng = random.Random(seed + 100)
        for _ in range(8):
            vec = {pi: rng.randrange(2) for pi in n.inputs}
            assert n.simulate([vec]) == mapped.simulate([vec])

    def test_benchmark_sequential_equivalence(self):
        n = benchmark_circuit("s5378", scale=0.06, seed=5)
        mapped = technology_map(n)
        rng = random.Random(7)
        vecs = [{pi: rng.randrange(2) for pi in n.inputs} for _ in range(10)]
        assert n.simulate(vecs) == mapped.simulate(vecs)


class TestMappedStructure:
    def test_xc3000_limits(self):
        n = benchmark_circuit("c3540", scale=0.1)
        mapped = technology_map(n)
        for cell in mapped.cells:
            assert 1 <= cell.n_outputs <= 2
            assert len(cell.inputs) <= 5
            if cell.n_outputs == 2:
                for sup in cell.supports:
                    assert len(sup) <= 4

    def test_unique_drivers(self):
        n = benchmark_circuit("c3540", scale=0.1)
        mapped = technology_map(n)
        seen = set()
        for cell in mapped.cells:
            for out in cell.outputs:
                assert out not in seen
                seen.add(out)

    def test_counts(self, tiny_netlist):
        mapped = technology_map(tiny_netlist)
        assert mapped.n_iobs == len(tiny_netlist.inputs) + len(tiny_netlist.outputs)
        assert mapped.n_cells >= 1
        assert mapped.n_pins > 0
        assert mapped.n_nets > 0

    def test_multi_output_cells_exist(self):
        n = benchmark_circuit("c6288", scale=0.2)
        mapped = technology_map(n)
        assert mapped.n_multi_output_cells > 0

    def test_pairing_disabled_yields_single_output(self):
        n = benchmark_circuit("c3540", scale=0.08)
        mapped = technology_map(n, pair=False)
        assert mapped.n_multi_output_cells == 0

    def test_nets_have_driver_and_sinks(self, tiny_netlist):
        mapped = technology_map(tiny_netlist)
        for net, info in mapped.nets().items():
            kind = info["driver"][0]
            assert kind in ("pi", "cell")
            assert info["sinks"] or info["is_po"]

    def test_duplicate_driver_rejected(self):
        cells = [
            MappedCell("c1", [], ["x"], [[]], [0], [False]),
            MappedCell("c2", [], ["x"], [[]], [0], [False]),
        ]
        with pytest.raises(ValueError, match="two drivers"):
            MappedNetlist("bad", cells, [], ["x"])

    def test_missing_driver_rejected(self):
        cells = [MappedCell("c1", ["ghost"], ["x"], [["ghost"]], [0b10], [False])]
        with pytest.raises(ValueError, match="no driver"):
            MappedNetlist("bad", cells, [], ["x"])
