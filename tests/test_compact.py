"""Invariants of the CSR :class:`CompactHypergraph` representation."""

import random

import pytest

from repro.hypergraph.compact import CompactHypergraph
from tests.test_gain_model import _random_hypergraph


@pytest.fixture(scope="module", params=[0, 1, 2, 5])
def pair(request):
    hg = _random_hypergraph(random.Random(request.param * 7919 + 13))
    return hg, CompactHypergraph.from_hypergraph(hg)


def test_shapes(pair):
    hg, csr = pair
    assert csr.n_nodes == len(hg.nodes)
    assert csr.n_nets == len(hg.nets)
    assert len(csr.node_net_start) == csr.n_nodes + 1
    assert len(csr.net_node_start) == csr.n_nets + 1
    assert len(csr.node_nets) == len(csr.node_net_counts)
    assert len(csr.net_nodes) == len(csr.net_node_counts)
    # Both directions index the same incidence set.
    assert len(csr.node_nets) == len(csr.net_nodes)


def test_offsets_monotone(pair):
    _, csr = pair
    for arr in (csr.node_net_start, csr.net_node_start):
        assert arr[0] == 0
        assert all(a <= b for a, b in zip(arr, arr[1:]))
    assert csr.node_net_start[-1] == len(csr.node_nets)
    assert csr.net_node_start[-1] == len(csr.net_nodes)


def test_node_rows_match_object_graph(pair):
    hg, csr = pair
    for node in hg.nodes:
        expect = {}
        for net in list(node.input_nets) + list(node.output_nets):
            expect[net] = expect.get(net, 0) + 1
        pairs = csr.node_pin_pairs(node.index)
        # First-occurrence order over inputs then outputs, counts exact.
        assert pairs == list(expect.items())


def test_node_net_order_is_first_occurrence(pair):
    hg, csr = pair
    for node in hg.nodes:
        seen = dict.fromkeys(list(node.input_nets) + list(node.output_nets))
        assert [net for net, _ in csr.node_pin_pairs(node.index)] == list(seen)


def test_net_rows_are_transpose(pair):
    hg, csr = pair
    for e in range(csr.n_nets):
        members = csr.net_members(e)
        nodes = [v for v, _ in members]
        assert nodes == sorted(nodes)  # ascending node order
        for v, k in members:
            assert (e, k) in csr.node_pin_pairs(v)


def test_net_maxk(pair):
    _, csr = pair
    for e in range(csr.n_nets):
        counts = [k for _, k in csr.net_members(e)]
        assert csr.net_maxk[e] == (max(counts) if counts else 0)


def test_weights_and_kinds(pair):
    hg, csr = pair
    assert csr.weights == [n.clb_weight for n in hg.nodes]
    assert csr.is_cell == [n.is_cell for n in hg.nodes]
    assert csr.total_pins() == sum(
        len(n.input_nets) + len(n.output_nets) for n in hg.nodes
    )


def test_max_degree(pair):
    hg, csr = pair
    degrees = [len(csr.node_pin_pairs(v)) for v in range(csr.n_nodes)]
    assert csr.max_degree == (max(degrees) if degrees else 0)
