"""Integration tests for the end-to-end flows."""

import pytest

from repro.core.flow import (
    bipartition_experiment,
    kway_experiment,
    kway_solution,
    map_circuit,
)
from repro.core.results import BipartitionReport, dump_reports
from repro.partition.devices import Device, DeviceLibrary

TINY_LIBRARY = DeviceLibrary(
    [
        Device("T16", clbs=16, terminals=24, price=10, util_upper=0.95),
        Device("T32", clbs=32, terminals=36, price=17, util_upper=0.95),
        Device("T64", clbs=64, terminals=52, price=30, util_upper=0.95),
    ],
    name="tiny",
)


@pytest.fixture(scope="module")
def mapped():
    return map_circuit("s5378", scale=0.12, seed=7)


class TestMapCircuit:
    def test_by_name(self):
        mapped = map_circuit("c6288", scale=0.15)
        assert mapped.name == "c6288"
        assert mapped.n_cells > 0

    def test_by_netlist(self, tiny_netlist):
        mapped = map_circuit(tiny_netlist)
        assert mapped.name == "tiny"


class TestBipartitionExperiment:
    def test_fm(self, mapped):
        report = bipartition_experiment(mapped, "fm", runs=3, seed=1)
        assert report.runs == 3
        assert len(report.cuts) == 3
        assert report.best_cut <= report.avg_cut
        assert report.avg_replicated == 0

    def test_functional(self, mapped):
        report = bipartition_experiment(mapped, "fm+functional", runs=3, seed=1)
        assert report.algorithm == "fm+functional"
        assert report.avg_replicated >= 0

    def test_functional_beats_fm_on_average(self, mapped):
        fm = bipartition_experiment(mapped, "fm", runs=5, seed=2)
        fr = bipartition_experiment(mapped, "fm+functional", runs=5, seed=2)
        assert fr.avg_cut <= fm.avg_cut

    def test_traditional(self, mapped):
        report = bipartition_experiment(mapped, "fm+traditional", runs=2, seed=1)
        assert len(report.cuts) == 2

    def test_unknown_algorithm(self, mapped):
        with pytest.raises(ValueError):
            bipartition_experiment(mapped, "simulated-annealing")

    def test_report_serialization(self, mapped, tmp_path):
        report = bipartition_experiment(mapped, "fm", runs=2, seed=1)
        path = str(tmp_path / "reports.json")
        dump_reports([report], path)
        import json

        with open(path) as handle:
            data = json.load(handle)
        assert data[0]["circuit"] == "s5378"


class TestKWayExperiment:
    def test_with_replication(self, mapped):
        report = kway_experiment(
            mapped, threshold=1, library=TINY_LIBRARY, n_solutions=1, seeds_per_carve=2
        )
        assert report.k >= 2
        assert report.total_cost > 0
        assert 0 < report.avg_clb_utilization <= 1.0

    def test_baseline(self, mapped):
        report = kway_experiment(
            mapped,
            threshold=float("inf"),
            library=TINY_LIBRARY,
            n_solutions=1,
            seeds_per_carve=2,
        )
        assert report.replicated_fraction == 0.0
        assert report.threshold == float("inf")

    def test_report_dict(self, mapped):
        report = kway_experiment(
            mapped, threshold=float("inf"), library=TINY_LIBRARY, n_solutions=1
        )
        data = report.as_dict()
        assert data["threshold"] == "inf"

    def test_solution_object(self, mapped):
        sol = kway_solution(
            mapped, threshold=1, library=TINY_LIBRARY, n_solutions=1, seeds_per_carve=2
        )
        assert sol.k >= 2
        assert sol.blocks
