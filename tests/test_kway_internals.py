"""Unit tests for k-way partitioner internals."""

import pytest

from repro.partition.devices import Device, DeviceLibrary, XC3000_LIBRARY
from repro.partition.kway import (
    _ORIGINAL,
    _REPLICA,
    _WHOLE,
    _VCell,
    _VTerm,
    _candidate_devices,
    _instance_vcell,
)


class TestCandidateDevices:
    def test_prefers_economical_devices(self):
        cands = _candidate_devices(XC3000_LIBRARY, clbs=1000, limit=3)
        assert len(cands) == 3
        # With a huge remaining circuit the big devices (cheapest per CLB)
        # come first.
        assert cands[0].name == "XC3090"

    def test_small_remainder_excludes_oversized_windows(self):
        lib = DeviceLibrary(
            [
                Device("A", 10, 10, 1, util_lower=0.0),
                Device("B", 100, 50, 5, util_lower=0.9),  # needs >= 90 CLBs
            ]
        )
        cands = _candidate_devices(lib, clbs=20, limit=5)
        assert [d.name for d in cands] == ["A"]

    def test_limit_respected(self):
        assert len(_candidate_devices(XC3000_LIBRARY, 1000, 2)) == 2


class TestInstanceVCell:
    @pytest.fixture()
    def cell(self):
        return _VCell(
            name="m",
            original="m",
            inputs=["a", "b", "c", "d", "e"],
            outputs=["x1", "x2"],
            supports=[(0, 1, 2, 3), (3, 4)],
        )

    def test_whole(self, cell):
        inst = _instance_vcell(cell, _WHOLE, -1, 0)
        assert inst is cell

    def test_replica_keeps_one_output(self, cell):
        inst = _instance_vcell(cell, _REPLICA, 1, 7)
        assert inst.outputs == ["x2"]
        assert inst.inputs == ["d", "e"]
        assert inst.supports == [(0, 1)]
        assert inst.original == "m"
        assert inst.name != cell.name

    def test_original_keeps_the_rest(self, cell):
        inst = _instance_vcell(cell, _ORIGINAL, 1, 8)
        assert inst.outputs == ["x1"]
        assert inst.inputs == ["a", "b", "c", "d"]
        assert inst.supports == [(0, 1, 2, 3)]

    def test_instances_partition_outputs(self, cell):
        # For every replicated output o: replica outputs + original outputs
        # = all outputs, disjoint.  (This is the invariant whose violation
        # the encoding bug fixed in development would have broken.)
        for o in range(2):
            orig = _instance_vcell(cell, _ORIGINAL, o, 1)
            repl = _instance_vcell(cell, _REPLICA, o, 2)
            assert sorted(orig.outputs + repl.outputs) == sorted(cell.outputs)
            assert not set(orig.outputs) & set(repl.outputs)

    def test_unique_names_per_counter(self, cell):
        a = _instance_vcell(cell, _REPLICA, 0, 1)
        b = _instance_vcell(cell, _REPLICA, 0, 2)
        assert a.name != b.name


class TestVirtualNodeSlots:
    """_VCell/_VTerm are slotted; the carver builds one per instance per
    level, so they must stay dict-free and closed to stray attributes."""

    def test_vcell_rejects_new_attributes(self):
        cell = _VCell(name="c", original="c", inputs=[], outputs=["o"], supports=[()])
        with pytest.raises(AttributeError):
            cell.scratch = 1
        assert not hasattr(cell, "__dict__")

    def test_vterm_rejects_new_attributes(self):
        term = _VTerm(name="t", net="n", kind="pi")
        with pytest.raises(AttributeError):
            term.scratch = 1
        assert not hasattr(term, "__dict__")
