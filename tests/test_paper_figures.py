"""End-to-end reconstructions of the paper's Figures 1, 2 and 4.

These tests rebuild the exact partition states behind the paper's worked
examples and check that the *engine's* ground-truth cut deltas equal the
closed-form gains -- the strongest internal evidence that the implemented
replication semantics are the paper's.
"""

import pytest

from repro.hypergraph.hypergraph import Hypergraph, NodeKind
from repro.partition.fm_replication import (
    FUNCTIONAL,
    TRADITIONAL,
    ReplicationConfig,
    ReplicationEngine,
)
from repro.replication.gains import (
    gain_functional_output,
    gain_functional_replication,
    gain_single_move,
    gain_traditional_replication,
)
from repro.replication.potential import node_potential


def _figure4_engine(style=FUNCTIONAL):
    """The Figure 4 scenario.

    Cell M (the Figure 2 cell): inputs a1..a5, outputs X1 (support a1..a4)
    and X2 (support a4, a5).  Side 0 holds M, the drivers of a1..a3 and the
    sink of X1; side 1 holds the drivers of a4, a5 and the sink of X2.
    Cut set = {a4, a5, X2}, size 3.
    """
    hg = Hypergraph("figure4")
    net_names = ["a1", "a2", "a3", "a4", "a5", "x1", "x2"]
    nets = {name: hg.add_net(name) for name in net_names}

    m = hg.add_node("M", NodeKind.CELL)
    for name in ("a1", "a2", "a3", "a4", "a5"):
        hg.connect_input(m, nets[name])
    hg.connect_output(m, nets["x1"])
    hg.connect_output(m, nets["x2"])
    m.supports = [(0, 1, 2, 3), (3, 4)]

    sides = {m.index: 0}
    for i, name in enumerate(("a1", "a2", "a3", "a4", "a5")):
        drv = hg.add_node(f"drv_{name}", NodeKind.CELL)
        hg.connect_output(drv, nets[name])
        drv.supports = [()]
        sides[drv.index] = 0 if i < 3 else 1

    for name, side in (("x1", 0), ("x2", 1)):
        snk = hg.add_node(f"snk_{name}", NodeKind.CELL)
        hg.connect_input(snk, nets[name])
        dead = hg.add_net(f"dead_{name}")
        hg.connect_output(snk, dead)
        snk.supports = [(0,)]
        sides[snk.index] = side
    hg.check()

    initial = [sides[i] for i in range(len(hg.nodes))]
    fixed = {i: sides[i] for i in range(len(hg.nodes)) if i != m.index}
    engine = ReplicationEngine(
        hg,
        ReplicationConfig(seed=0, threshold=0, style=style, fixed=fixed),
        initial=initial,
    )
    return engine, m.index


class TestFigure2:
    def test_replication_potential_is_4(self):
        engine, m = _figure4_engine()
        assert node_potential(engine.hg.nodes[m]) == 4
        assert engine.potentials[m] == 4


class TestFigure4:
    def test_initial_cut_is_3(self):
        engine, _ = _figure4_engine()
        assert engine.cut_size() == 3

    def test_extracted_vectors(self):
        engine, m = _figure4_engine()
        mv = engine.move_vectors(m)
        assert mv.a == ((1, 1, 1, 1, 0), (0, 0, 0, 1, 1))
        assert mv.ci == (0, 0, 0, 1, 1)
        assert mv.qi == (1, 1, 1, 1, 1)
        assert mv.co == (0, 1)
        assert mv.qo == (1, 1)

    def test_single_move_gain_minus_1(self):
        engine, m = _figure4_engine()
        assert engine.move_gain(m, 1, None) == -1
        assert gain_single_move(engine.move_vectors(m)) == -1

    def test_traditional_gain_minus_2(self):
        engine, m = _figure4_engine(style=TRADITIONAL)
        assert engine.move_gain(m, 0, (0, -1)) == -2
        assert gain_traditional_replication(engine.move_vectors(m)) == -2

    def test_functional_gains(self):
        engine, m = _figure4_engine()
        mv = engine.move_vectors(m)
        # Output X1 across: -4; output X2 across: +2 (cut 3 -> 1).
        assert engine.move_gain(m, 0, (0, 0)) == -4
        assert gain_functional_output(mv, 0) == -4
        assert engine.move_gain(m, 0, (0, 1)) == 2
        assert gain_functional_output(mv, 1) == 2
        assert gain_functional_replication(mv) == (2, 1)

    def test_applying_functional_replication(self):
        engine, m = _figure4_engine()
        engine.set_state(m, 0, (0, 1))
        assert engine.cut_size() == 1  # only a4 remains cut
        assert engine.replicas() == {m: (0, 1)}
        # Both sides now hold one instance of M.
        assert engine.sizes[0] >= 1 and engine.sizes[1] >= 1

    def test_unreplication_restores_cut(self):
        engine, m = _figure4_engine()
        engine.set_state(m, 0, (0, 1))
        engine.set_state(m, 0, None)
        assert engine.cut_size() == 3

    def test_pass_picks_the_functional_replication(self):
        engine, m = _figure4_engine()
        gain = engine.run_pass()
        assert gain == 2
        assert engine.rep[m] == (0, 1)
        assert engine.cut_size() == 1


class TestFigure1:
    def _engine(self, style):
        """Figure 1: M with inputs a, b, c and outputs X (a,b), Y (b,c).

        a is local (side 0, uncut); b and c are driven from side 1 (cut);
        X's sink is on side 0, Y's on side 1.  Cut = {b, c, Y} = 3.
        """
        hg = Hypergraph("figure1")
        nets = {n: hg.add_net(n) for n in ("a", "b", "c", "x", "y")}
        m = hg.add_node("M", NodeKind.CELL)
        for n in ("a", "b", "c"):
            hg.connect_input(m, nets[n])
        hg.connect_output(m, nets["x"])
        hg.connect_output(m, nets["y"])
        m.supports = [(0, 1), (1, 2)]
        sides = {m.index: 0}
        for name, side in (("a", 0), ("b", 1), ("c", 1)):
            drv = hg.add_node(f"drv_{name}", NodeKind.CELL)
            hg.connect_output(drv, nets[name])
            drv.supports = [()]
            sides[drv.index] = side
        for name, side in (("x", 0), ("y", 1)):
            snk = hg.add_node(f"snk_{name}", NodeKind.CELL)
            hg.connect_input(snk, nets[name])
            dead = hg.add_net(f"dead_{name}")
            hg.connect_output(snk, dead)
            snk.supports = [(0,)]
            sides[snk.index] = side
        hg.check()
        initial = [sides[i] for i in range(len(hg.nodes))]
        fixed = {i: sides[i] for i in range(len(hg.nodes)) if i != m.index}
        engine = ReplicationEngine(
            hg,
            ReplicationConfig(seed=0, threshold=0, style=style, fixed=fixed),
            initial=initial,
        )
        return engine, m.index

    def test_cell_potential_is_2(self):
        engine, m = self._engine(FUNCTIONAL)
        assert engine.potentials[m] == 2

    def test_traditional_replication_gains_nothing(self):
        # The paper's point: net Y leaves the cut, net a enters it.
        engine, m = self._engine(TRADITIONAL)
        assert engine.cut_size() == 3
        assert engine.move_gain(m, 0, (0, -1)) == 0
        assert gain_traditional_replication(engine.move_vectors(m)) == 0

    def test_functional_replication_wins(self):
        # Taking Y across drops both Y and the exclusive input c: gain +2.
        engine, m = self._engine(FUNCTIONAL)
        mv = engine.move_vectors(m)
        assert engine.move_gain(m, 0, (0, 1)) == 2
        assert gain_functional_output(mv, 1) == 2
        engine.set_state(m, 0, (0, 1))
        assert engine.cut_size() == 1  # only b remains
