"""Invariants and determinism contracts of the CSR multilevel V-cycle."""

import random

import pytest

from repro.hypergraph.compact import CompactHypergraph
from repro.hypergraph.metrics import cut_size, partition_clb_sizes
from repro.partition.clustering import _legacy_multilevel_bipartition
from repro.partition.kway import KWayConfig
from repro.partition.multilevel import (
    MULTILEVEL_AUTO_MIN_CELLS,
    MultilevelConfig,
    MultilevelHierarchy,
    MultilevelResult,
    coarsen_compact,
    resolve_multilevel,
    vcycle_bipartition,
)
from repro.partition.verify import verify_solution
from repro.techmap.mapped import technology_map
from repro.netlist.benchmarks import benchmark_circuit
from repro.hypergraph.build import build_hypergraph


@pytest.fixture(scope="module")
def compact(small_hg):
    return CompactHypergraph.from_hypergraph(small_hg)


@pytest.fixture(scope="module")
def compact_terms(small_hg_terms):
    return CompactHypergraph.from_hypergraph(small_hg_terms)


def _cell_weight(cp):
    return sum(w for w, c in zip(cp.weights, cp.is_cell) if c)


class TestCoarsenCompact:
    def test_reduces_cell_count(self, compact):
        coarse, cid, n_pairs = coarsen_compact(compact, random.Random(1))
        assert n_pairs > 0
        assert coarse.n_nodes == compact.n_nodes - n_pairs

    def test_coarse_id_total(self, compact):
        coarse, cid, _ = coarsen_compact(compact, random.Random(1))
        assert len(cid) == compact.n_nodes
        assert sorted(set(cid)) == list(range(coarse.n_nodes))

    def test_weights_conserved(self, compact):
        coarse, cid, _ = coarsen_compact(compact, random.Random(2))
        assert _cell_weight(coarse) == _cell_weight(compact)
        assert sum(coarse.weights) == sum(compact.weights)

    def test_terminals_never_clustered(self, compact_terms):
        coarse, cid, _ = coarsen_compact(compact_terms, random.Random(1))
        fine_terms = [v for v in range(compact_terms.n_nodes) if not compact_terms.is_cell[v]]
        coarse_terms = [v for v in range(coarse.n_nodes) if not coarse.is_cell[v]]
        assert len(coarse_terms) == len(fine_terms)
        for v in fine_terms:
            c = cid[v]
            assert not coarse.is_cell[c]
            # one-to-one: no other fine node shares a terminal's coarse id
            assert sum(1 for u in range(compact_terms.n_nodes) if cid[u] == c) == 1

    def test_protected_nodes_never_clustered(self, compact):
        protected = {0, 1, 2}
        coarse, cid, _ = coarsen_compact(compact, random.Random(3), protected=protected)
        for v in protected:
            assert sum(1 for u in range(compact.n_nodes) if cid[u] == cid[v]) == 1

    def test_internal_nets_eliminated(self, compact):
        coarse, cid, _ = coarsen_compact(compact, random.Random(1))
        for e in range(coarse.n_nets):
            lo, hi = coarse.net_node_start[e], coarse.net_node_start[e + 1]
            members = coarse.net_nodes[lo:hi]
            assert len(members) >= 2
            assert len(set(members)) == len(members)
            assert members == sorted(members)

    def test_pin_counts_summed(self, compact):
        coarse, cid, _ = coarsen_compact(compact, random.Random(1))
        # Total pin count per surviving net is conserved: a coarse pin
        # count is the sum of its fine members' counts.
        fine_total = {}
        for e in range(compact.n_nets):
            lo, hi = compact.net_node_start[e], compact.net_node_start[e + 1]
            fine_total[e] = sum(compact.net_node_counts[lo:hi])
        coarse_totals = sorted(
            sum(
                coarse.net_node_counts[
                    coarse.net_node_start[e] : coarse.net_node_start[e + 1]
                ]
            )
            for e in range(coarse.n_nets)
        )
        # Every surviving coarse total must appear among the fine totals.
        fine_sorted = sorted(fine_total.values())
        i = 0
        for t in coarse_totals:
            while i < len(fine_sorted) and fine_sorted[i] < t:
                i += 1
            assert i < len(fine_sorted) and fine_sorted[i] == t
            i += 1


class TestHierarchy:
    def test_weight_conserved_across_levels(self, compact):
        h = MultilevelHierarchy(compact, MultilevelConfig(seed=1))
        total = _cell_weight(compact)
        for level in h.levels:
            assert _cell_weight(level) == total

    def test_monotone_shrink(self, compact):
        h = MultilevelHierarchy(compact, MultilevelConfig(seed=1))
        assert len(h.levels) > 1
        for a, b in zip(h.cell_counts, h.cell_counts[1:]):
            assert b < a

    def test_stall_respected(self, compact):
        # An impossible stall ratio stops coarsening immediately.
        h = MultilevelHierarchy(
            compact, MultilevelConfig(seed=1, coarsening_stall_ratio=0.0)
        )
        assert len(h.levels) == 1

    def test_min_nodes_respected(self, compact):
        h = MultilevelHierarchy(compact, MultilevelConfig(seed=1, min_nodes=10**9))
        assert len(h.levels) == 1

    def test_max_levels_respected(self, compact):
        h = MultilevelHierarchy(compact, MultilevelConfig(seed=1, max_levels=2))
        assert len(h.levels) <= 2

    def test_solve_deterministic(self, compact):
        h = MultilevelHierarchy(compact, MultilevelConfig(seed=5))
        a1, c1, _ = h.solve(17)
        a2, c2, _ = h.solve(17)
        assert a1 == a2 and c1 == c2

    def test_level_stats_cover_all_levels(self, compact):
        h = MultilevelHierarchy(compact, MultilevelConfig(seed=5))
        _, _, stats = h.solve(3)
        assert [s["level"] for s in stats] == list(
            range(len(h.levels) - 1, -1, -1)
        )
        assert stats[0]["match_rate"] <= 1.0
        assert stats[-1]["match_rate"] == 1.0


class TestVCycle:
    def test_cut_matches_assignment(self, small_hg):
        r = vcycle_bipartition(small_hg, MultilevelConfig(seed=1))
        assert isinstance(r, MultilevelResult)
        assert cut_size(small_hg, r.assignment) == r.cut_size

    def test_bit_deterministic_repeated(self, small_hg):
        runs = [vcycle_bipartition(small_hg, MultilevelConfig(seed=9)) for _ in range(3)]
        assert all(r.assignment == runs[0].assignment for r in runs)
        assert all(r.cut_size == runs[0].cut_size for r in runs)

    def test_balance_respected(self, small_hg):
        r = vcycle_bipartition(
            small_hg, MultilevelConfig(seed=2, balance_tolerance=0.05)
        )
        sizes = partition_clb_sizes(small_hg, r.assignment)
        total = small_hg.total_clb_weight()
        assert abs(sizes.get(0, 0) - total / 2) <= max(1, 0.05 * total) + 1

    def test_replication_refine_improves(self, small_hg):
        r = vcycle_bipartition(
            small_hg, MultilevelConfig(seed=1, replication_refine=True)
        )
        assert r.replication is not None
        assert r.final_cut <= r.cut_size

    def test_parity_with_legacy_engine(self, small_hg):
        # The CSR engine replaces the object-graph reference; both must
        # produce feasible solutions of comparable quality.
        legacy = [
            _legacy_multilevel_bipartition(small_hg, MultilevelConfig(seed=s)).cut_size
            for s in range(3)
        ]
        csr = [
            vcycle_bipartition(small_hg, MultilevelConfig(seed=s)).cut_size
            for s in range(3)
        ]
        assert sum(csr) / len(csr) <= 1.25 * sum(legacy) / len(legacy)

    def test_jobs_workers_bit_identical(self, small_hg):
        from repro.perf.parallel import parallel_multilevel_results

        base = MultilevelConfig(seed=0)
        seeds = [11, 22, 33, 44]
        seq = parallel_multilevel_results(small_hg, base, seeds, jobs=1)
        par = parallel_multilevel_results(small_hg, base, seeds, jobs=2)
        assert [r.assignment for r in seq] == [r.assignment for r in par]
        assert [r.final_cut for r in seq] == [r.final_cut for r in par]


class TestResolve:
    def test_explicit_wins(self):
        assert resolve_multilevel(True, 1) is True
        assert resolve_multilevel(False, 10**9) is False

    def test_auto_threshold(self):
        assert resolve_multilevel(None, MULTILEVEL_AUTO_MIN_CELLS) is True
        assert resolve_multilevel(None, MULTILEVEL_AUTO_MIN_CELLS - 1) is False


class TestKWayIntegration:
    @pytest.fixture(scope="class")
    def mapped(self):
        return technology_map(benchmark_circuit("s5378", scale=0.12, seed=7))

    def test_multilevel_solution_verifies(self, mapped):
        from repro.partition.kway import best_heterogeneous_partition

        config = KWayConfig(threshold=4, seed=3, multilevel=True)
        solution = best_heterogeneous_partition(mapped, config, n_solutions=1)
        assert solution.feasible
        assert verify_solution(mapped, solution) == []

    def test_multilevel_jobs_deterministic(self, mapped):
        from repro.partition.kway import best_heterogeneous_partition

        base = dict(threshold=4, seed=3, multilevel=True)
        s1 = best_heterogeneous_partition(
            mapped, KWayConfig(jobs=1, **base), n_solutions=1
        )
        s2 = best_heterogeneous_partition(
            mapped, KWayConfig(jobs=2, **base), n_solutions=1
        )
        assert s1.cost.total_cost == s2.cost.total_cost
        assert [sorted(b.cells) for b in s1.blocks] == [
            sorted(b.cells) for b in s2.blocks
        ]


class TestFlowIntegration:
    def test_bipartition_experiment_multilevel(self, small_mapped):
        from repro.core.flow import bipartition_experiment

        report = bipartition_experiment(
            small_mapped, algorithm="fm+functional", runs=2, multilevel=True
        )
        assert report.runs == 2
        assert all(c >= 0 for c in report.cuts)

    def test_bipartition_experiment_multilevel_jobs_match(self, small_mapped):
        from repro.core.flow import bipartition_experiment

        seq = bipartition_experiment(
            small_mapped, algorithm="fm", runs=3, multilevel=True, jobs=1
        )
        par = bipartition_experiment(
            small_mapped, algorithm="fm", runs=3, multilevel=True, jobs=2
        )
        assert seq.cuts == par.cuts


def test_auto_enables_on_large_rent_netlist():
    # A generated netlist above the auto threshold flips the tri-state on;
    # build_hypergraph itself is cheap enough at this size for a unit test.
    from repro.netlist.generate import random_logic

    netlist = random_logic("rent_auto", 2400, 48, 48, seed=9)
    mapped = technology_map(netlist)
    hg = build_hypergraph(mapped, include_terminals=False)
    assert resolve_multilevel(None, hg.n_cells) is False  # below threshold
    assert resolve_multilevel(True, hg.n_cells) is True
