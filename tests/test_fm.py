"""Tests for the classic FM bipartitioner."""

import pytest

from repro.hypergraph.metrics import cut_size, partition_clb_sizes
from repro.partition.fm import FMConfig, FMResult, best_of_runs, fm_bipartition
from tests.conftest import make_cell_hypergraph


def _two_cliques():
    """Two 4-cell cliques joined by a single bridge net: optimal cut = 1."""
    spec = []
    for side, prefix in enumerate(("l", "r")):
        for i in range(4):
            inputs = [f"{prefix}{j}" for j in range(4) if j != i]
            spec.append(
                {
                    "name": f"{prefix}c{i}",
                    "inputs": inputs,
                    "outputs": [f"{prefix}{i}"],
                    "supports": [tuple(range(len(inputs)))],
                }
            )
    # bridge: cell lc0's output l0 read by rc0 via an extra pin.
    hg = make_cell_hypergraph(spec)
    bridge = hg.nets[hg.net_index("l0")]
    rc0 = next(n for n in hg.nodes if n.name == "rc0")
    hg.connect_input(rc0, bridge)
    rc0.supports = [tuple(range(len(rc0.input_nets)))]
    return hg


class TestOnCliques:
    def test_finds_the_bridge_cut(self):
        hg = _two_cliques()
        result = fm_bipartition(hg, FMConfig(seed=1))
        assert result.cut_size == 1
        assert cut_size(hg, result.assignment) == 1

    def test_balanced(self):
        hg = _two_cliques()
        result = fm_bipartition(hg, FMConfig(seed=1))
        sizes = partition_clb_sizes(hg, result.assignment)
        assert sizes[0] == sizes[1] == 4


class TestInvariants:
    def test_reported_cut_matches_metric(self, small_hg):
        for seed in range(4):
            result = fm_bipartition(small_hg, FMConfig(seed=seed))
            assert cut_size(small_hg, result.assignment) == result.cut_size

    def test_never_worse_than_initial(self, small_hg):
        for seed in range(4):
            result = fm_bipartition(small_hg, FMConfig(seed=seed))
            assert result.cut_size <= result.initial_cut

    def test_balance_tolerance_respected(self, small_hg):
        tol = 0.02
        total = small_hg.total_clb_weight()
        slack = max(1, int(tol * total))
        result = fm_bipartition(small_hg, FMConfig(seed=2, balance_tolerance=tol))
        sizes = partition_clb_sizes(small_hg, result.assignment)
        assert abs(sizes.get(0, 0) - total / 2) <= slack + 1

    def test_deterministic(self, small_hg):
        a = fm_bipartition(small_hg, FMConfig(seed=5))
        b = fm_bipartition(small_hg, FMConfig(seed=5))
        assert a.assignment == b.assignment
        assert a.cut_size == b.cut_size

    def test_seed_variation(self, small_hg):
        cuts = {fm_bipartition(small_hg, FMConfig(seed=s)).cut_size for s in range(6)}
        assert len(cuts) >= 2  # randomized starts explore different optima

    def test_pass_gains_monotone_stop(self, small_hg):
        result = fm_bipartition(small_hg, FMConfig(seed=0))
        assert result.pass_gains[-1] <= 0
        for g in result.pass_gains[:-1]:
            assert g > 0


class TestConstraints:
    def test_side0_bounds(self, small_hg):
        total = small_hg.total_clb_weight()
        lo, hi = total // 4, total // 3
        result = fm_bipartition(
            small_hg, FMConfig(seed=3, side0_bounds=(lo, hi))
        )
        sizes = partition_clb_sizes(small_hg, result.assignment)
        assert lo <= sizes.get(0, 0) <= hi

    def test_fixed_nodes_stay(self, small_hg):
        fixed = {0: 1, 1: 0}
        result = fm_bipartition(small_hg, FMConfig(seed=3, fixed=fixed))
        assert result.assignment[0] == 1
        assert result.assignment[1] == 0

    def test_initial_assignment_honoured(self, small_hg):
        initial = [i % 2 for i in range(len(small_hg.nodes))]
        result = fm_bipartition(small_hg, FMConfig(seed=0, max_passes=0), initial=initial)
        assert result.assignment == initial

    def test_initial_length_checked(self, small_hg):
        with pytest.raises(ValueError):
            fm_bipartition(small_hg, FMConfig(seed=0), initial=[0])


class TestBestOfRuns:
    def test_best_is_min(self, small_hg):
        best, cuts = best_of_runs(small_hg, 5, FMConfig(seed=1))
        assert best.cut_size == min(cuts)
        assert len(cuts) == 5
