"""Property-based tests for the plain FM engine's gain bookkeeping."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph.metrics import cut_size
from repro.partition.fm import FMConfig, _FMState, fm_bipartition
from tests.test_gain_model import _random_hypergraph


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 10**9))
def test_gain_equals_cut_delta(seed):
    """state.gain(v) must equal the exact cut change of moving v."""
    rng = random.Random(seed)
    hg = _random_hypergraph(rng)
    state = _FMState(hg, FMConfig(seed=seed % 1009), None)
    for v in range(len(hg.nodes)):
        gain = state.gain(v)
        before = state.cut_size()
        state.apply(v)
        after = state.cut_size()
        assert before - after == gain, v
        state.apply(v)  # restore
        assert state.cut_size() == before


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10**9))
def test_final_cut_matches_metrics(seed):
    rng = random.Random(seed)
    hg = _random_hypergraph(rng)
    result = fm_bipartition(hg, FMConfig(seed=seed % 1009))
    assert cut_size(hg, result.assignment) == result.cut_size


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10**9))
def test_fm_never_worse_than_initial(seed):
    rng = random.Random(seed)
    hg = _random_hypergraph(rng)
    result = fm_bipartition(hg, FMConfig(seed=seed % 1009))
    assert result.cut_size <= result.initial_cut


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10**9))
def test_state_counts_consistent(seed):
    """Pin counts stay consistent with the side assignment after moves."""
    rng = random.Random(seed)
    hg = _random_hypergraph(rng)
    state = _FMState(hg, FMConfig(seed=1), None)
    nodes = list(range(len(hg.nodes)))
    rng.shuffle(nodes)
    for v in nodes[: len(nodes) // 2]:
        state.apply(v)
    for net_idx, net in enumerate(hg.nets):
        expect = [0, 0]
        for node, _, _ in net.pins:
            expect[state.side[node]] += 1
        assert state.counts[net_idx] == expect
