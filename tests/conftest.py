"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.hypergraph.build import build_hypergraph
from repro.hypergraph.hypergraph import Hypergraph, NodeKind
from repro.netlist.benchmarks import benchmark_circuit
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.techmap.mapped import technology_map


@pytest.fixture
def tiny_netlist() -> Netlist:
    """A 5-gate combinational circuit used across parser/mapper tests."""
    n = Netlist("tiny")
    for pi in ("a", "b", "c", "d"):
        n.add_input(pi)
    n.add_gate("g1", GateType.AND, ["a", "b"])
    n.add_gate("g2", GateType.OR, ["c", "d"])
    n.add_gate("g3", GateType.XOR, ["g1", "g2"])
    n.add_gate("g4", GateType.NAND, ["g1", "c"])
    n.add_gate("g5", GateType.NOT, ["g3"])
    n.add_output("g4")
    n.add_output("g5")
    n.check()
    return n


@pytest.fixture
def seq_netlist() -> Netlist:
    """A small sequential circuit (2-bit counter with enable)."""
    n = Netlist("seq")
    n.add_input("en")
    n.add_gate("t0", GateType.XOR, ["q0", "en"])
    n.add_gate("c0", GateType.AND, ["q0", "en"])
    n.add_gate("t1", GateType.XOR, ["q1", "c0"])
    n.add_gate("q0", GateType.DFF, ["t0"])
    n.add_gate("q1", GateType.DFF, ["t1"])
    n.add_output("q0")
    n.add_output("q1")
    n.check()
    return n


@pytest.fixture(scope="session")
def small_mapped():
    """A mapped mid-size benchmark shared by partitioning tests."""
    netlist = benchmark_circuit("s5378", scale=0.12, seed=7)
    return technology_map(netlist)


@pytest.fixture(scope="session")
def small_hg(small_mapped):
    return build_hypergraph(small_mapped, include_terminals=False)


@pytest.fixture(scope="session")
def small_hg_terms(small_mapped):
    return build_hypergraph(small_mapped, include_terminals=True)


def make_cell_hypergraph(spec, nets_extra=()):
    """Build a hypergraph from a compact spec for gain-model tests.

    ``spec`` is a list of cell dicts::

        {"name": "m", "inputs": ["n1", "n2"], "outputs": ["n3", "n4"],
         "supports": [(0, 1), (1,)]}

    Nets are created on demand; ``nets_extra`` names nets that should exist
    even if no listed cell touches them.
    """
    hg = Hypergraph("case")
    nets = {}

    def net_of(name):
        if name not in nets:
            nets[name] = hg.add_net(name)
        return nets[name]

    for cell in spec:
        node = hg.add_node(cell["name"], NodeKind.CELL)
        for net in cell["inputs"]:
            hg.connect_input(node, net_of(net))
        for net in cell["outputs"]:
            hg.connect_output(node, net_of(net))
        node.supports = [tuple(s) for s in cell.get(
            "supports", [tuple(range(len(cell["inputs"])))] * len(cell["outputs"])
        )]
    for name in nets_extra:
        net_of(name)
    return hg


def random_small_netlist(seed: int, n_gates: int = 40) -> Netlist:
    """A random valid netlist for property-based tests."""
    from repro.netlist.generate import random_logic

    rng = random.Random(seed)
    return random_logic(
        f"rand{seed}",
        n_gates=n_gates,
        n_inputs=rng.randint(3, 8),
        n_outputs=rng.randint(2, 6),
        seed=seed,
        cluster_size=rng.choice([8, 16, 32]),
    )
