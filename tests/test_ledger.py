"""Run ledger: fingerprints, record store, determinism, CLI flows."""

import json
import os

import pytest

from repro import api
from repro.core.flow import map_circuit
from repro.obs import ledger as obs_ledger
from repro.obs.compare import diff_records
from repro.obs.ledger import (
    LEDGER_ENV_VAR,
    LEDGER_SCHEMA_NAME,
    Ledger,
    build_record,
    canonical_json,
    config_fingerprint,
    fingerprint,
    netlist_fingerprint,
    resolve_ledger,
    run_key,
    set_ledger,
    stable_view,
    use_ledger,
    validate_record,
)


@pytest.fixture
def small_mapped():
    return map_circuit("s5378", scale=0.08, seed=1994)


@pytest.fixture
def record(small_mapped):
    return build_record(
        kind="partition",
        circuit="s5378",
        mapped=small_mapped,
        config={"verb": "partition", "threshold": 1},
        seed=7,
        quality={"k": 2, "total_cost": 100.0, "feasible": True},
    )


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def test_canonical_json_is_order_insensitive_and_strict():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
    assert '"inf"' in canonical_json({"t": float("inf")})
    assert '"nan"' in canonical_json({"t": float("nan")})


def test_fingerprint_stability(small_mapped):
    assert fingerprint({"a": 1}) == fingerprint({"a": 1})
    assert fingerprint({"a": 1}) != fingerprint({"a": 2})
    assert netlist_fingerprint(small_mapped) == netlist_fingerprint(small_mapped)
    other = map_circuit("s5378", scale=0.08, seed=2)
    assert netlist_fingerprint(small_mapped) != netlist_fingerprint(other)


def test_run_key_depends_on_all_components():
    base = run_key("n", config_fingerprint({"t": 1}), 3)
    assert base == run_key("n", config_fingerprint({"t": 1}), 3)
    assert base != run_key("m", config_fingerprint({"t": 1}), 3)
    assert base != run_key("n", config_fingerprint({"t": 2}), 3)
    assert base != run_key("n", config_fingerprint({"t": 1}), 4)


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


def test_build_record_conforms_and_is_stable(record, small_mapped):
    assert validate_record(record) == []
    assert record["schema"] == LEDGER_SCHEMA_NAME
    assert record["netlist_hash"] == netlist_fingerprint(small_mapped)
    again = build_record(
        kind="partition",
        circuit="s5378",
        mapped=small_mapped,
        config={"verb": "partition", "threshold": 1},
        seed=7,
        quality={"k": 2, "total_cost": 100.0, "feasible": True},
    )
    # volatile fields may differ; the stable view must not
    assert stable_view(record) == stable_view(again)
    assert "ts" not in stable_view(record) and "git_rev" not in stable_view(record)


def test_build_record_rejects_unknown_kind():
    with pytest.raises(ValueError):
        build_record(
            kind="mystery", circuit="x", config={}, seed=0, quality={}
        )


def test_validate_record_flags_problems(record):
    broken = dict(record)
    broken.pop("run_id")
    broken["seed"] = "seven"
    problems = validate_record(broken)
    assert any("run_id" in p for p in problems)
    assert any("seed" in p for p in problems)
    assert validate_record("not a dict")


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


def test_ledger_append_find_latest(tmp_path, record):
    ledger = Ledger(str(tmp_path / "led"))
    assert ledger.records() == []
    ledger.append(record)
    other = dict(record, run_id="ffff00000001", circuit="c880")
    ledger.append(other)
    rows = ledger.records()
    assert [r["circuit"] for r in rows] == ["s5378", "c880"]
    assert ledger.find("latest")["circuit"] == "c880"
    assert ledger.find("0")["circuit"] == "s5378"
    assert ledger.find("-1")["circuit"] == "c880"
    assert ledger.find(record["run_id"][:6])["circuit"] == "s5378"
    assert ledger.latest(circuit="s5378")["run_id"] == record["run_id"]
    assert ledger.latest(circuit="nope") is None
    with pytest.raises(LookupError):
        ledger.find("zzzz")


def test_ledger_find_reads_golden_file(tmp_path, record):
    golden = tmp_path / "golden.jsonl"
    golden.write_text(json.dumps(record) + "\n")
    ledger = Ledger(str(tmp_path / "led"))
    found = ledger.find(str(golden))
    assert found["run_id"] == record["run_id"]


def test_ledger_append_rejects_malformed(tmp_path):
    ledger = Ledger(str(tmp_path / "led"))
    with pytest.raises(ValueError):
        ledger.append({"schema": "nope"})
    assert not os.path.exists(ledger.path)


def test_ledger_survives_torn_tail(tmp_path, record):
    ledger = Ledger(str(tmp_path / "led"))
    ledger.append(record)
    with open(ledger.path, "a", encoding="utf-8") as fh:
        fh.write('{"v": 1, "torn')  # crashed writer
    assert len(ledger.records()) == 1


# ---------------------------------------------------------------------------
# Enablement
# ---------------------------------------------------------------------------


def test_resolve_ledger_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv(LEDGER_ENV_VAR, raising=False)
    assert resolve_ledger() is None
    monkeypatch.setenv(LEDGER_ENV_VAR, str(tmp_path / "env"))
    assert resolve_ledger().path.startswith(str(tmp_path / "env"))
    installed = Ledger(str(tmp_path / "installed"))
    with use_ledger(installed):
        assert resolve_ledger() is installed
        explicit = resolve_ledger(str(tmp_path / "explicit"))
        assert explicit.path.startswith(str(tmp_path / "explicit"))
    assert resolve_ledger() is not installed


def test_env_var_truthy_means_default_dir(monkeypatch):
    monkeypatch.setenv(LEDGER_ENV_VAR, "1")
    ledger = resolve_ledger()
    assert ledger.path == os.path.join(
        obs_ledger.DEFAULT_LEDGER_DIR, obs_ledger.LEDGER_FILENAME
    )


def test_set_ledger_round_trip(tmp_path):
    ledger = Ledger(str(tmp_path / "led"))
    try:
        assert set_ledger(ledger) is ledger
        assert obs_ledger.get_ledger() is ledger
    finally:
        set_ledger(None)
    assert obs_ledger.get_ledger() is None


# ---------------------------------------------------------------------------
# api auto-logging and the determinism contract
# ---------------------------------------------------------------------------


def test_api_partition_autolog_is_deterministic(tmp_path, small_mapped):
    ledger = Ledger(str(tmp_path / "led"))
    with use_ledger(ledger):
        first = api.partition(small_mapped, threshold=1, seed=3)
        second = api.partition(small_mapped, threshold=1, seed=3)
    assert first.run_record is not None and second.run_record is not None
    assert first.run_record["run_key"] == second.run_record["run_key"]
    assert stable_view(first.run_record) == stable_view(second.run_record)
    diff = diff_records(first.run_record, second.run_record)
    assert diff.verdict == "identical" and not diff.warnings
    # convergence was distilled: one carve series per committed level
    carves = first.run_record["convergence"]["carves"]
    assert carves and carves[-1].get("final") is True
    assert len([c for c in carves if c.get("final")]) >= 1
    assert len(ledger.records()) == 2


def test_api_without_ledger_attaches_no_record(small_mapped, monkeypatch):
    monkeypatch.delenv(LEDGER_ENV_VAR, raising=False)
    result = api.partition(small_mapped, threshold=1, seed=3)
    assert result.run_record is None


def test_api_bipartition_autolog(tmp_path, small_mapped):
    ledger = Ledger(str(tmp_path / "led"))
    with use_ledger(ledger):
        result = api.bipartition(small_mapped, runs=2, seed=3)
    record = result.run_record
    assert record is not None and record["kind"] == "bipartition"
    assert record["quality"]["best_cut"] == result.solution.best_cut
    assert record["convergence"]["pass_series"], "no FM pass gains captured"


def test_api_runner_path_stores_volatile_runner_log(tmp_path, small_mapped):
    ledger = Ledger(str(tmp_path / "led"))
    with use_ledger(ledger):
        result = api.partition(small_mapped, threshold=1, seed=3, max_retries=0)
    record = result.run_record
    assert record is not None and record["runner"]["attempts"]
    # runner data is volatile: it never enters the determinism contract
    assert "runner" not in stable_view(record)


# ---------------------------------------------------------------------------
# CLI flows
# ---------------------------------------------------------------------------


def _run_cli(argv):
    from repro.cli import main

    return main(argv)


def test_cli_partition_logs_and_runs_subcommands(tmp_path, capsys):
    led = str(tmp_path / "led")
    code = _run_cli(
        ["partition", "s5378", "--scale", "0.08", "--threshold", "1",
         "--ledger", led]
    )
    assert code == 0
    assert "logged run" in capsys.readouterr().err
    code = _run_cli(
        ["partition", "s5378", "--scale", "0.08", "--threshold", "1",
         "--ledger", led]
    )
    assert code == 0
    capsys.readouterr()

    assert _run_cli(["runs", "list", "--ledger", led]) == 0
    listing = capsys.readouterr().out
    assert listing.count("partition") == 2 and "s5378" in listing

    assert _run_cli(["runs", "show", "latest", "--ledger", led]) == 0
    shown = capsys.readouterr().out
    assert "quality.total_cost" in shown and "carve" in shown

    assert _run_cli(["runs", "diff", "0", "latest", "--ledger", led,
                     "--strict"]) == 0
    assert "identical" in capsys.readouterr().out

    out = str(tmp_path / "report.html")
    assert _run_cli(["runs", "report", "--ledger", led, "--baseline", "0",
                     "--out", out]) == 0
    capsys.readouterr()
    page = open(out, encoding="utf-8").read()
    assert page.startswith("<!DOCTYPE html>") and "<svg" in page
    assert "verdict-identical" in page or "identical" in page


def test_cli_runs_diff_flags_regression(tmp_path, record, capsys):
    ledger = Ledger(str(tmp_path / "led"))
    ledger.append(record)
    worse = build_record(
        kind="partition",
        circuit="s5378",
        netlist_hash=record["netlist_hash"],
        config={"verb": "partition", "threshold": 1},
        seed=7,
        quality={"k": 2, "total_cost": 120.0, "feasible": True},
    )
    ledger.append(worse)
    code = _run_cli(["runs", "diff", "0", "latest", "--ledger",
                     str(tmp_path / "led")])
    assert code == 1
    out = capsys.readouterr().out
    assert "regression" in out and "total_cost" in out
    # a generous tolerance waives the drift
    code = _run_cli(["runs", "diff", "0", "latest", "--ledger",
                     str(tmp_path / "led"), "--tolerance", "total_cost=25%"])
    assert code == 0


def test_cli_runs_diff_missing_record_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit):
        _run_cli(["runs", "diff", "0", "latest", "--ledger",
                  str(tmp_path / "nothing")])
