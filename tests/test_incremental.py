"""Warm-start repartitioning: the repair engine and the api front door."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import api
from repro.cache.store import SolutionCache, build_entry, nearest_ancestor, use_cache
from repro.core.flow import kway_solution
from repro.netlist.benchmarks import benchmark_circuit
from repro.partition.incremental import (
    DEFAULT_MAX_DIRTY_FRACTION,
    IncrementalConfig,
    incremental_partition,
)
from repro.partition.verify import verify_solution
from repro.request import build_request
from repro.robust.errors import DeltaError
from repro.techmap.delta import DeltaOp, DirtyRegion, NetlistDelta, seeded_delta
from repro.techmap.mapped import technology_map


@pytest.fixture(scope="module")
def eco_mapped():
    """s5378 at the scale where the cold carve replicates (k=2)."""
    return technology_map(benchmark_circuit("s5378", scale=0.25, seed=7))


@pytest.fixture(scope="module")
def previous(eco_mapped):
    return kway_solution(eco_mapped, threshold=1, n_solutions=1, seed=7)


def _removal_delta(mapped, previous):
    """A delta removing one replicated, non-PO cell (readers rewired)."""
    po = set(mapped.primary_outputs)
    victim = next(
        c
        for name in sorted(previous.replicated_cells)
        for c in mapped.cells
        if c.name == name and not set(c.outputs) & po
    )
    outs = set(victim.outputs)
    pis = sorted(mapped.primary_inputs)
    ops = [DeltaOp(op="remove_cell", cell=victim.name)]
    for cell in mapped.cells:
        if cell.name == victim.name:
            continue
        for pin, net in enumerate(cell.inputs):
            if net in outs:
                target = next(p for p in pis if p not in cell.inputs)
                ops.append(
                    DeltaOp(op="rewire_pin", cell=cell.name, pin=pin, net=target)
                )
    return victim.name, NetlistDelta(ops=tuple(ops))


class TestRepairEngine:
    def test_warm_repair_verifies_and_keeps_cost(self, eco_mapped, previous):
        delta = seeded_delta(eco_mapped, fraction=0.01, seed=0)
        new_mapped, dirty = delta.apply(eco_mapped)
        solution, info = incremental_partition(
            new_mapped, previous, dirty, IncrementalConfig(seed=7)
        )
        assert info["mode"] == "warm", info
        assert solution is not None and solution.feasible
        assert verify_solution(new_mapped, solution) == []
        assert solution.cost.total_cost <= previous.cost.total_cost * 1.25

    def test_removing_a_replicated_cell_collapses_it(
        self, eco_mapped, previous
    ):
        assert previous.replicated_cells, "fixture must replicate"
        victim, delta = _removal_delta(eco_mapped, previous)
        new_mapped, dirty = delta.apply(eco_mapped)
        assert all(c.name != victim for c in new_mapped.cells)
        solution, info = incremental_partition(
            new_mapped, previous, dirty, IncrementalConfig(seed=7)
        )
        assert info["mode"] == "warm", info
        instances = [
            orig for block in solution.blocks for orig in block.originals
            if orig == victim
        ]
        assert instances == []
        assert victim not in solution.replicated_cells
        assert verify_solution(new_mapped, solution) == []

    def test_large_dirty_region_declines(self, eco_mapped, previous):
        names = frozenset(c.name for c in eco_mapped.cells)
        dirty = DirtyRegion(
            cells=names, touched_nets=frozenset(), n_cells=len(names)
        )
        assert dirty.fraction > DEFAULT_MAX_DIRTY_FRACTION
        solution, info = incremental_partition(
            eco_mapped, previous, dirty, IncrementalConfig(seed=7)
        )
        assert solution is None
        assert info["mode"] == "cold"
        assert "dirty fraction" in info["reason"]

    def test_truncated_previous_declines(self, eco_mapped, previous):
        truncated = dataclasses.replace(previous, truncated=True)
        delta = seeded_delta(eco_mapped, fraction=0.01, seed=0)
        new_mapped, dirty = delta.apply(eco_mapped)
        solution, info = incremental_partition(
            new_mapped, truncated, dirty, IncrementalConfig(seed=7)
        )
        assert solution is None
        assert "truncated" in info["reason"]


class TestApiFrontDoor:
    @pytest.fixture()
    def store(self, tmp_path):
        return SolutionCache(str(tmp_path / "cache"))

    @pytest.fixture()
    def base_request(self):
        return build_request(
            "partition", "s5378", scale=0.25, seed=7, threshold=1,
            n_solutions=1,
        )

    def _eco_request(self, delta, **kwargs):
        return build_request(
            "partition", "s5378", scale=0.25, seed=7, threshold=1,
            n_solutions=1, delta=delta.to_dict(), **kwargs,
        )

    def test_empty_delta_is_a_pure_cache_hit(
        self, eco_mapped, store, base_request
    ):
        empty = NetlistDelta()
        with use_cache(store):
            cold = api.run_request(
                base_request, circuit=eco_mapped, cache="use"
            )
            assert cold.cache_info["status"] == "miss"
            hit = api.run_request(
                self._eco_request(empty), circuit=eco_mapped, cache="use"
            )
        assert hit.cache_info["status"] == "hit"
        assert json.dumps(
            hit.to_dict()["solution"], sort_keys=True
        ) == json.dumps(cold.to_dict()["solution"], sort_keys=True)

    def test_warm_solve_and_bit_identical_replay(
        self, eco_mapped, store, base_request
    ):
        delta = seeded_delta(eco_mapped, fraction=0.01, seed=0)
        with use_cache(store):
            api.run_request(base_request, circuit=eco_mapped, cache="use")
            warm = api.run_request(
                self._eco_request(delta), circuit=eco_mapped, cache="use"
            )
            replay = api.run_request(
                self._eco_request(delta), circuit=eco_mapped, cache="use"
            )
        warm_info = warm.cache_info["warm"]
        assert warm_info["mode"] == "warm"
        assert warm_info["dirty_cells"] > 0
        assert replay.cache_info["status"] == "hit"
        assert json.dumps(
            replay.to_dict()["solution"], sort_keys=True
        ) == json.dumps(warm.to_dict()["solution"], sort_keys=True)

    def test_warm_start_off_forces_a_cold_solve(
        self, eco_mapped, store, base_request
    ):
        delta = seeded_delta(eco_mapped, fraction=0.01, seed=0)
        with use_cache(store):
            api.run_request(base_request, circuit=eco_mapped, cache="use")
            cold = api.run_request(
                self._eco_request(delta, warm_start="off"),
                circuit=eco_mapped,
                cache="use",
            )
        assert "warm" not in (cold.cache_info or {})
        assert cold.cache_info["status"] == "miss"

    def test_oversized_delta_falls_back_to_cold(
        self, eco_mapped, store, base_request
    ):
        delta = seeded_delta(eco_mapped, fraction=0.6, seed=0)
        with use_cache(store):
            api.run_request(base_request, circuit=eco_mapped, cache="use")
            result = api.run_request(
                self._eco_request(delta), circuit=eco_mapped, cache="use"
            )
        warm_info = result.cache_info["warm"]
        assert warm_info["mode"] == "cold"
        assert "dirty fraction" in warm_info["reason"]
        assert result.ok and result.solution.feasible

    def test_fixed_terminal_delta_rejected(self, eco_mapped, base_request):
        po_driver = next(
            c for c in eco_mapped.cells
            if set(c.outputs) & set(eco_mapped.primary_outputs)
        )
        delta = NetlistDelta(
            ops=(DeltaOp(op="remove_cell", cell=po_driver.name),)
        )
        with pytest.raises(DeltaError, match="fixed terminals"):
            api.run_request(
                self._eco_request(delta), circuit=eco_mapped, cache="off"
            )

    def test_stale_base_hash_rejected(self, eco_mapped):
        delta = NetlistDelta(base="0" * 64)
        request = build_request(
            "partition", "s5378", scale=0.25, seed=7, threshold=1,
            n_solutions=1, delta=delta.to_dict(),
        )
        with pytest.raises(DeltaError, match="live netlist"):
            api.run_request(request, circuit=eco_mapped, cache="off")


class TestNearestAncestor:
    @staticmethod
    def _entry(key, netlist_hash, config_fp, seed):
        entry = build_entry(
            kind="partition",
            key=key,
            circuit="c",
            netlist_hash=netlist_hash,
            config={"verb": "partition"},
            seed=seed,
            solution={"stub": key},
            elapsed_seconds=1.0,
        )
        # nearest_ancestor ranks by the *stored* fingerprint field
        entry["config_fingerprint"] = config_fp
        return entry

    def test_prefers_exact_config_and_seed(self, tmp_path):
        store = SolutionCache(str(tmp_path))
        store.put(self._entry("aaa1", "h1", "cfgA", 1))
        store.put(self._entry("bbb2", "h1", "cfgA", 7))
        store.put(self._entry("ccc3", "h1", "cfgB", 7))
        best = nearest_ancestor(store, "h1", config_fp="cfgA", seed=7)
        assert best["key"] == "bbb2"

    def test_config_match_beats_hash_only(self, tmp_path):
        store = SolutionCache(str(tmp_path))
        store.put(self._entry("aaa1", "h1", "cfgB", 1))
        store.put(self._entry("bbb2", "h1", "cfgA", 1))
        best = nearest_ancestor(store, "h1", config_fp="cfgA", seed=7)
        assert best["key"] == "bbb2"

    def test_other_netlists_never_match(self, tmp_path):
        store = SolutionCache(str(tmp_path))
        store.put(self._entry("aaa1", "h2", "cfgA", 7))
        assert nearest_ancestor(store, "h1", config_fp="cfgA", seed=7) is None

    def test_empty_store_returns_none(self, tmp_path):
        assert nearest_ancestor(SolutionCache(str(tmp_path)), "h1") is None
