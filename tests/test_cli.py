"""Smoke tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_stats_benchmark(capsys):
    assert main(["stats", "c6288", "--scale", "0.15", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["name"] == "c6288"
    assert data["gates"] > 0


def test_stats_bench_file(capsys, tmp_path, tiny_netlist):
    from repro.netlist.bench_io import save_bench

    path = str(tmp_path / "tiny.bench")
    save_bench(tiny_netlist, path)
    assert main(["stats", path]) == 0
    assert "gates" in capsys.readouterr().out


def test_unknown_circuit_rejected():
    with pytest.raises(SystemExit):
        main(["stats", "c17"])


def test_map_command(capsys):
    assert main(["map", "c6288", "--scale", "0.15", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["#CLBs"] > 0
    assert "multi_output_cells" in data


def test_bipartition_command(capsys):
    assert (
        main(
            [
                "bipartition",
                "s5378",
                "--scale",
                "0.08",
                "--runs",
                "2",
                "--json",
            ]
        )
        == 0
    )
    data = json.loads(capsys.readouterr().out)
    assert data["best_cut"] >= 0
    assert data["runs"] == 2


def test_bipartition_fm_only(capsys):
    assert (
        main(
            [
                "bipartition",
                "s5378",
                "--scale",
                "0.08",
                "--algorithm",
                "fm",
                "--runs",
                "2",
            ]
        )
        == 0
    )
    assert "best cut" in capsys.readouterr().out


def test_partition_command(capsys):
    assert (
        main(
            [
                "partition",
                "s5378",
                "--scale",
                "0.12",
                "--threshold",
                "1",
                "--solutions",
                "1",
                "--json",
            ]
        )
        == 0
    )
    data = json.loads(capsys.readouterr().out)
    assert data["k"] >= 1
    assert data["total_cost"] > 0


def test_experiment_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "XC3090" in capsys.readouterr().out


def test_experiment_table2(capsys):
    assert (
        main(["experiment", "table2", "--scale", "0.1", "--circuits", "c6288"]) == 0
    )
    assert "#CLBs" in capsys.readouterr().out


def test_experiment_figure3(capsys):
    assert (
        main(["experiment", "figure3", "--scale", "0.1", "--circuits", "c6288"]) == 0
    )
    assert "psi" in capsys.readouterr().out


def test_analyze_command(capsys):
    assert main(["analyze", "c6288", "--scale", "0.15", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["circuit"] == "c6288"
    assert "rent_exponent" in data
    assert "psi_distribution" in data


def test_partition_verify_flag(capsys):
    rc = main(
        [
            "partition",
            "s5378",
            "--scale",
            "0.1",
            "--threshold",
            "1",
            "--solutions",
            "1",
            "--verify",
            "--json",
        ]
    )
    data = json.loads(capsys.readouterr().out)
    assert data["violations"] == []
    assert rc == 0
