"""Tests for fan-in decomposition."""

import itertools

import pytest

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.techmap.decompose import decompose_netlist


def _wide_gate_netlist(gtype: GateType, width: int) -> Netlist:
    n = Netlist(f"wide_{gtype.value}")
    pis = [f"i{k}" for k in range(width)]
    for pi in pis:
        n.add_input(pi)
    n.add_gate("y", gtype, pis)
    n.add_output("y")
    return n


@pytest.mark.parametrize(
    "gtype",
    [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND, GateType.NOR, GateType.XNOR],
)
@pytest.mark.parametrize("width", [5, 7, 9, 13])
def test_equivalence_exhaustive(gtype, width):
    original = _wide_gate_netlist(gtype, width)
    decomposed = decompose_netlist(original, max_fanin=4)
    for gate in decomposed.gates():
        if gate.is_combinational:
            assert len(gate.fanin) <= 4
    # Exhaustive check is feasible up to 13 inputs via sampling all corners
    # plus random rows; use full exhaustion for width <= 9.
    rows = range(1 << width) if width <= 9 else [0, (1 << width) - 1, 0x155, 0x2AA]
    for row in rows:
        vec = {f"i{k}": (row >> k) & 1 for k in range(width)}
        assert original.simulate([vec]) == decomposed.simulate([vec])


def test_narrow_gates_untouched(tiny_netlist):
    out = decompose_netlist(tiny_netlist, max_fanin=4)
    assert set(out.gate_names()) == set(tiny_netlist.gate_names())


def test_names_preserved():
    n = _wide_gate_netlist(GateType.AND, 10)
    out = decompose_netlist(n)
    assert "y" in out
    assert out.outputs == ["y"]


def test_dff_passthrough(seq_netlist):
    out = decompose_netlist(seq_netlist)
    assert sorted(out.dffs) == sorted(seq_netlist.dffs)
    vecs = [{"en": 1}] * 4
    assert out.simulate(vecs) == seq_netlist.simulate(vecs)


def test_max_fanin_too_small_rejected():
    n = _wide_gate_netlist(GateType.AND, 6)
    with pytest.raises(ValueError):
        decompose_netlist(n, max_fanin=1)


def test_helper_names_are_fresh():
    n = _wide_gate_netlist(GateType.OR, 9)
    out = decompose_netlist(n)
    helpers = [g for g in out.gate_names() if "__dc" in g]
    assert helpers
    assert len(set(helpers)) == len(helpers)
