"""Tests for the spectral and simulated-annealing baseline partitioners."""

import pytest

from repro.hypergraph.metrics import cut_size, partition_clb_sizes
from repro.partition.annealing import AnnealingConfig, annealing_bipartition
from repro.partition.fm import FMConfig, fm_bipartition
from repro.partition.spectral import SpectralConfig, spectral_bipartition
from tests.conftest import make_cell_hypergraph
from tests.test_fm import _two_cliques


class TestSpectral:
    def test_finds_clique_structure(self):
        hg = _two_cliques()
        result = spectral_bipartition(hg, SpectralConfig(refine_with_fm=False))
        assert result.cut_size <= 2  # near-optimal without refinement
        sizes = partition_clb_sizes(hg, result.assignment)
        assert sizes[0] == sizes[1] == 4

    def test_cut_reported_correctly(self, small_hg):
        result = spectral_bipartition(small_hg, SpectralConfig(seed=1))
        assert cut_size(small_hg, result.assignment) == result.cut_size

    def test_fiedler_value_nonnegative(self, small_hg):
        result = spectral_bipartition(small_hg, SpectralConfig(refine_with_fm=False))
        assert result.fiedler_value >= -1e-9

    def test_refinement_helps_or_ties(self, small_hg):
        raw = spectral_bipartition(small_hg, SpectralConfig(refine_with_fm=False))
        refined = spectral_bipartition(small_hg, SpectralConfig(refine_with_fm=True))
        assert refined.cut_size <= raw.cut_size

    def test_size_guard(self, small_hg):
        with pytest.raises(ValueError, match="guard"):
            spectral_bipartition(small_hg, SpectralConfig(max_cells=10))

    def test_terminals_assigned(self, small_hg_terms):
        result = spectral_bipartition(small_hg_terms, SpectralConfig(seed=2))
        for node in small_hg_terms.nodes:
            assert result.assignment[node.index] in (0, 1)

    def test_trivial_graph(self):
        hg = make_cell_hypergraph(
            [{"name": "a", "inputs": [], "outputs": ["n"], "supports": [()]}]
        )
        result = spectral_bipartition(hg)
        assert result.cut_size == 0


class TestAnnealing:
    def test_finds_clique_bridge(self):
        hg = _two_cliques()
        result = annealing_bipartition(hg, AnnealingConfig(seed=2))
        assert result.cut_size <= 3

    def test_balanced(self, small_hg):
        config = AnnealingConfig(seed=1, balance_tolerance=0.05)
        result = annealing_bipartition(small_hg, config)
        sizes = partition_clb_sizes(small_hg, result.assignment)
        total = small_hg.total_clb_weight()
        assert abs(sizes.get(0, 0) - total / 2) <= max(1, 0.05 * total) + 1

    def test_cut_reported_correctly(self, small_hg):
        result = annealing_bipartition(small_hg, AnnealingConfig(seed=3))
        assert cut_size(small_hg, result.assignment) == result.cut_size

    def test_deterministic(self, small_hg):
        a = annealing_bipartition(small_hg, AnnealingConfig(seed=9))
        b = annealing_bipartition(small_hg, AnnealingConfig(seed=9))
        assert a.assignment == b.assignment

    def test_progress_counters(self, small_hg):
        result = annealing_bipartition(small_hg, AnnealingConfig(seed=1))
        assert result.temperature_steps > 10
        assert result.accepted_moves > 0

    def test_competitive_with_fm(self, small_hg):
        # SA is a sanity baseline: within 2x of FM on small graphs.
        fm = fm_bipartition(small_hg, FMConfig(seed=1)).cut_size
        sa = annealing_bipartition(small_hg, AnnealingConfig(seed=1)).cut_size
        assert sa <= max(2 * fm, fm + 20)
