"""Tests for Rent's-rule analysis (generator-fidelity check)."""

import pytest

from repro.hypergraph.build import build_hypergraph
from repro.netlist.benchmarks import benchmark_circuit
from repro.netlist.rent import RentFit, fit_rent, rent_exponent, rent_points
from repro.techmap.mapped import technology_map


class TestFit:
    def test_perfect_power_law(self):
        points = [(b, int(round(3 * b ** 0.6))) for b in (8, 16, 32, 64, 128, 256)]
        fit = fit_rent(points)
        assert fit is not None
        assert fit.exponent == pytest.approx(0.6, abs=0.05)
        assert fit.coefficient == pytest.approx(3.0, rel=0.2)

    def test_prediction(self):
        fit = RentFit(exponent=0.5, coefficient=2.0, points=())
        assert fit.predicted_terminals(100) == pytest.approx(20.0)

    def test_underdetermined(self):
        assert fit_rent([(10, 5)]) is None
        assert fit_rent([]) is None
        assert fit_rent([(10, 0), (20, 0), (40, 0)]) is None


class TestOnCircuits:
    @pytest.fixture(scope="class")
    def hg(self):
        netlist = benchmark_circuit("s5378", scale=0.15, seed=3)
        return build_hypergraph(technology_map(netlist), include_terminals=False)

    def test_points_collected(self, hg):
        points = rent_points(hg, seed=1)
        assert len(points) >= 3
        for cells, terminals in points:
            assert cells > 0 and terminals >= 0

    def test_exponent_realistic(self, hg):
        # The substitution requirement: synthetic benchmarks must show the
        # sub-linear terminal growth of real circuits, p well below 1.
        p = rent_exponent(hg, seed=1)
        assert p is not None
        assert 0.1 < p < 0.95

    def test_deterministic(self, hg):
        assert rent_points(hg, seed=5) == rent_points(hg, seed=5)
