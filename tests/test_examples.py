"""Smoke tests for the example scripts."""

import os
import py_compile
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _example_paths():
    return sorted(
        os.path.join(EXAMPLES_DIR, name)
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    )


def test_at_least_five_examples():
    assert len(_example_paths()) >= 5


@pytest.mark.parametrize("path", _example_paths(), ids=os.path.basename)
def test_examples_compile(path):
    py_compile.compile(path, doraise=True)


def test_quickstart_runs(capsys, monkeypatch):
    path = os.path.join(EXAMPLES_DIR, "quickstart.py")
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "F-M min-cut" in out
    assert "functional repl" in out


def test_replication_analysis_runs(capsys, monkeypatch):
    path = os.path.join(EXAMPLES_DIR, "replication_analysis.py")
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "G_m  = -1" in out
    assert "G_X2 = +2" in out


def test_shootout_runs_small(capsys, monkeypatch):
    path = os.path.join(EXAMPLES_DIR, "partitioner_shootout.py")
    monkeypatch.setattr(sys, "argv", [path, "s5378", "0.08"])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "DAC'94" in out
