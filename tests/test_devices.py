"""Tests for the device library (Table I)."""

import pytest

from repro.partition.devices import Device, DeviceLibrary, XC3000_LIBRARY


class TestDevice:
    def test_fits_window(self):
        dev = Device("D", clbs=100, terminals=80, price=10, util_lower=0.5, util_upper=0.9)
        assert dev.min_clbs == 50
        assert dev.max_clbs == 90
        assert dev.fits(70, 80)
        assert not dev.fits(49, 10)  # under lower utilization bound
        assert not dev.fits(91, 10)  # over upper utilization bound
        assert not dev.fits(70, 81)  # too many terminals

    def test_cost_per_clb(self):
        dev = Device("D", clbs=100, terminals=80, price=150)
        assert dev.cost_per_clb == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            Device("D", clbs=0, terminals=80, price=1)
        with pytest.raises(ValueError):
            Device("D", clbs=10, terminals=0, price=1)
        with pytest.raises(ValueError):
            Device("D", clbs=10, terminals=8, price=-1)
        with pytest.raises(ValueError):
            Device("D", clbs=10, terminals=8, price=1, util_lower=0.9, util_upper=0.5)


class TestLibrary:
    def test_sorted_by_size(self):
        sizes = [d.clbs for d in XC3000_LIBRARY]
        assert sizes == sorted(sizes)

    def test_lookup(self):
        assert XC3000_LIBRARY["XC3090"].clbs == 320
        with pytest.raises(KeyError):
            XC3000_LIBRARY["XC9999"]

    def test_largest_smallest(self):
        assert XC3000_LIBRARY.largest.name == "XC3090"
        assert XC3000_LIBRARY.smallest.name == "XC3020"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DeviceLibrary([])

    def test_duplicate_names_rejected(self):
        dev = Device("D", clbs=10, terminals=8, price=1)
        with pytest.raises(ValueError):
            DeviceLibrary([dev, Device("D", clbs=20, terminals=8, price=2)])

    def test_cheapest_fit(self):
        dev = XC3000_LIBRARY.cheapest_fit(50, 40)
        assert dev is not None
        assert dev.name == "XC3020"

    def test_cheapest_fit_respects_terminals(self):
        dev = XC3000_LIBRARY.cheapest_fit(50, 100)
        assert dev is not None
        assert dev.terminals >= 100

    def test_no_fit_returns_none(self):
        assert XC3000_LIBRARY.cheapest_fit(10_000, 10) is None
        assert XC3000_LIBRARY.cheapest_fit(10, 10_000) is None

    def test_feasible_devices_sorted_by_price(self):
        fits = XC3000_LIBRARY.feasible_devices(60, 60)
        prices = [d.price for d in fits]
        assert prices == sorted(prices)

    def test_lower_bound_cost_monotone(self):
        lb1 = XC3000_LIBRARY.lower_bound_cost(100)
        lb2 = XC3000_LIBRARY.lower_bound_cost(200)
        assert lb2 > lb1 > 0


class TestXC3000Economics:
    def test_paper_table1_property(self):
        """Unit cost per CLB strictly decreases with device size (Table I)."""
        rates = [d.cost_per_clb for d in XC3000_LIBRARY]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_capacities_match_datasheet(self):
        expected = {
            "XC3020": (64, 64),
            "XC3030": (100, 80),
            "XC3042": (144, 96),
            "XC3064": (224, 120),
            "XC3090": (320, 144),
        }
        for dev in XC3000_LIBRARY:
            assert (dev.clbs, dev.terminals) == expected[dev.name]


class TestLibraryEdgeCases:
    def test_iteration_and_len(self):
        assert len(XC3000_LIBRARY) == 5
        names = [d.name for d in XC3000_LIBRARY]
        assert names[0] == "XC3020" and names[-1] == "XC3090"

    def test_min_clbs_with_lower_bound(self):
        dev = Device("D", clbs=100, terminals=50, price=1, util_lower=0.33)
        assert dev.min_clbs == 33

    def test_fits_boundary_values(self):
        dev = Device("D", clbs=100, terminals=50, price=1,
                     util_lower=0.5, util_upper=0.9)
        assert dev.fits(50, 50)
        assert dev.fits(90, 50)
        assert not dev.fits(50, 51)


class TestXC4000Library:
    def test_importable(self):
        from repro.partition.devices import XC4000_LIBRARY

        assert len(XC4000_LIBRARY) == 5
        assert XC4000_LIBRARY.largest.name == "XC4010"

    def test_economics(self):
        from repro.partition.devices import XC4000_LIBRARY

        rates = [d.cost_per_clb for d in XC4000_LIBRARY]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_usable_in_kway(self):
        from repro.netlist.benchmarks import benchmark_circuit
        from repro.partition.devices import XC4000_LIBRARY
        from repro.partition.kway import KWayConfig, partition_heterogeneous
        from repro.techmap.mapped import technology_map

        mapped = technology_map(benchmark_circuit("c6288", scale=0.3, seed=3))
        sol = partition_heterogeneous(
            mapped,
            KWayConfig(library=XC4000_LIBRARY, threshold=1, seed=1, seeds_per_carve=1),
        )
        assert sol.k >= 1
        assert set(sol.cost.device_counts) <= {d.name for d in XC4000_LIBRARY}
