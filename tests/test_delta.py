"""ECO delta schema, application, diffing and request integration."""

from __future__ import annotations

import json

import pytest

from repro.request import RequestError, build_request
from repro.robust.errors import DeltaError, ReproError
from repro.techmap.delta import (
    DELTA_SCHEMA_NAME,
    CellSpec,
    DeltaOp,
    NetlistDelta,
    diff_mapped,
    seeded_delta,
)
from repro.techmap.mapped import technology_map


@pytest.fixture
def tiny_mapped(tiny_netlist):
    return technology_map(tiny_netlist)


def _cell(mapped, name):
    return next(c for c in mapped.cells if c.name == name)


class TestCellSpec:
    def test_round_trips_through_dict(self, tiny_mapped):
        spec = CellSpec.from_cell(tiny_mapped.cells[0])
        assert CellSpec.from_dict(spec.to_dict()) == spec

    def test_ragged_arrays_rejected(self, tiny_mapped):
        doc = CellSpec.from_cell(tiny_mapped.cells[0]).to_dict()
        doc["masks"] = doc["masks"] + [0]
        with pytest.raises(DeltaError, match="ragged"):
            CellSpec.from_dict(doc)

    def test_support_outside_inputs_rejected(self, tiny_mapped):
        doc = CellSpec.from_cell(tiny_mapped.cells[0]).to_dict()
        doc["supports"] = [["not-a-pin"] for _ in doc["supports"]]
        with pytest.raises(DeltaError, match="support outside"):
            CellSpec.from_dict(doc)


class TestDeltaOpDecoding:
    def test_unknown_op_rejected(self):
        with pytest.raises(DeltaError, match="unknown delta op"):
            DeltaOp.from_dict({"op": "rename_cell", "cell": "x"})

    def test_rewire_needs_nonnegative_int_pin(self):
        with pytest.raises(DeltaError, match="pin"):
            DeltaOp.from_dict(
                {"op": "rewire_pin", "cell": "x", "pin": -1, "net": "a"}
            )
        with pytest.raises(DeltaError, match="pin"):
            DeltaOp.from_dict(
                {"op": "rewire_pin", "cell": "x", "pin": True, "net": "a"}
            )

    def test_remove_needs_cell_name(self):
        with pytest.raises(DeltaError, match="cell name"):
            DeltaOp.from_dict({"op": "remove_cell"})


class TestNetlistDeltaSerialization:
    def test_round_trips_bit_identically(self, tiny_mapped):
        delta = seeded_delta(tiny_mapped, fraction=0.5, seed=3, base="abc123")
        doc = delta.to_dict()
        assert doc["schema"] == DELTA_SCHEMA_NAME
        again = NetlistDelta.from_dict(doc)
        assert again == delta
        assert json.dumps(again.to_dict(), sort_keys=True) == json.dumps(
            doc, sort_keys=True
        )

    def test_unknown_field_rejected(self):
        with pytest.raises(DeltaError, match="unknown delta field"):
            NetlistDelta.from_dict({"ops": [], "extra": 1})

    def test_wrong_schema_rejected(self):
        with pytest.raises(DeltaError, match="schema"):
            NetlistDelta.from_dict({"schema": "bogus/9", "ops": []})

    def test_hashable_and_usable_as_key(self, tiny_mapped):
        delta = seeded_delta(tiny_mapped, fraction=0.5, seed=3)
        assert {delta: "v"}[NetlistDelta.from_dict(delta.to_dict())] == "v"

    def test_delta_error_is_repro_error(self):
        assert issubclass(DeltaError, ReproError)


class TestApply:
    def test_rewire_pin_moves_the_pin(self, tiny_mapped):
        cell = next(c for c in tiny_mapped.cells if c.inputs)
        pin = 0
        target = next(
            p for p in sorted(tiny_mapped.primary_inputs)
            if p not in cell.inputs
        )
        delta = NetlistDelta(
            ops=(DeltaOp(op="rewire_pin", cell=cell.name, pin=pin, net=target),)
        )
        new_mapped, dirty = delta.apply(tiny_mapped)
        assert _cell(new_mapped, cell.name).inputs[pin] == target
        # the input netlist is untouched
        assert _cell(tiny_mapped, cell.name).inputs[pin] != target
        assert cell.name in dirty.cells
        assert {cell.inputs[pin], target} <= dirty.touched_nets
        assert dirty.n_cells == new_mapped.n_cells

    def test_dirty_region_includes_one_hop_halo(self, tiny_mapped):
        cell = next(c for c in tiny_mapped.cells if c.inputs)
        target = next(
            p for p in sorted(tiny_mapped.primary_inputs)
            if p not in cell.inputs
        )
        delta = NetlistDelta(
            ops=(DeltaOp(op="rewire_pin", cell=cell.name, pin=0, net=target),)
        )
        new_mapped, dirty = delta.apply(tiny_mapped)
        for other in new_mapped.cells:
            touches = dirty.touched_nets.intersection(
                set(other.inputs) | set(other.outputs)
            )
            if touches:
                assert other.name in dirty.cells

    def test_remove_cell_driving_po_rejected(self, tiny_mapped):
        po_driver = next(
            c for c in tiny_mapped.cells
            if set(c.outputs) & set(tiny_mapped.primary_outputs)
        )
        delta = NetlistDelta(
            ops=(DeltaOp(op="remove_cell", cell=po_driver.name),)
        )
        with pytest.raises(DeltaError, match="fixed terminals"):
            delta.apply(tiny_mapped)

    def test_redriving_primary_input_rejected(self, tiny_mapped):
        pi = sorted(tiny_mapped.primary_inputs)[0]
        spec = CellSpec(
            name="evil", inputs=(), outputs=(pi,), supports=((),),
            masks=(0,), registered=(False,),
        )
        delta = NetlistDelta(ops=(DeltaOp(op="add_cell", spec=spec),))
        with pytest.raises(DeltaError, match="re-drive primary input"):
            delta.apply(tiny_mapped)

    def test_unknown_cell_rejected(self, tiny_mapped):
        delta = NetlistDelta(ops=(DeltaOp(op="remove_cell", cell="ghost"),))
        with pytest.raises(DeltaError, match="unknown cell"):
            delta.apply(tiny_mapped)

    def test_dangling_reader_rejected(self, tiny_mapped):
        # remove a cell whose output is read elsewhere without rewiring
        read = {
            net for c in tiny_mapped.cells for net in c.inputs
        }
        victim = next(
            c for c in tiny_mapped.cells
            if set(c.outputs) & read
            and not set(c.outputs) & set(tiny_mapped.primary_outputs)
        )
        delta = NetlistDelta(ops=(DeltaOp(op="remove_cell", cell=victim.name),))
        with pytest.raises(DeltaError, match="inconsistent"):
            delta.apply(tiny_mapped)


class TestDiff:
    def test_diff_round_trips(self, tiny_mapped):
        edited, _ = seeded_delta(tiny_mapped, fraction=0.6, seed=5).apply(
            tiny_mapped
        )
        delta = diff_mapped(tiny_mapped, edited)
        rebuilt, _ = delta.apply(tiny_mapped)
        want = {c.name: CellSpec.from_cell(c) for c in edited.cells}
        got = {c.name: CellSpec.from_cell(c) for c in rebuilt.cells}
        assert got == want

    def test_identical_netlists_diff_empty(self, tiny_mapped):
        assert diff_mapped(tiny_mapped, tiny_mapped).empty

    def test_different_primary_io_rejected(self, tiny_mapped, seq_netlist):
        other = technology_map(seq_netlist)
        with pytest.raises(DeltaError, match="primary I/O differs"):
            diff_mapped(tiny_mapped, other)


class TestSeededDelta:
    def test_deterministic(self, tiny_mapped):
        a = seeded_delta(tiny_mapped, fraction=0.5, seed=11)
        b = seeded_delta(tiny_mapped, fraction=0.5, seed=11)
        assert a == b

    def test_fraction_bounds_enforced(self, tiny_mapped):
        with pytest.raises(DeltaError, match="fraction"):
            seeded_delta(tiny_mapped, fraction=1.5)

    def test_result_applies_cleanly(self, tiny_mapped):
        delta = seeded_delta(tiny_mapped, fraction=0.4, seed=2)
        new_mapped, dirty = delta.apply(tiny_mapped)
        assert new_mapped.n_cells == tiny_mapped.n_cells
        assert len(dirty.cells) >= len(delta.ops) >= 1


class TestRequestIntegration:
    def test_request_normalizes_delta_documents(self, tiny_mapped):
        doc = seeded_delta(tiny_mapped, fraction=0.5, seed=1).to_dict()
        request = build_request(
            "partition", "tiny", seed=1, threshold=1, delta=doc
        )
        assert isinstance(request.delta, NetlistDelta)
        assert request.delta.to_dict() == doc

    def test_request_round_trips_with_delta(self, tiny_mapped):
        doc = seeded_delta(tiny_mapped, fraction=0.5, seed=1).to_dict()
        request = build_request(
            "partition", "tiny", seed=1, threshold=1, delta=doc,
            warm_start="auto",
        )
        from repro.request import PartitionRequest

        again = PartitionRequest.from_json(request.to_json())
        assert again == request
        assert again.to_json() == request.to_json()

    def test_delta_free_document_has_no_delta_field(self):
        doc = build_request("partition", "tiny", seed=1).to_dict()
        assert "delta" not in doc and "warm_start" not in doc

    def test_empty_delta_shares_the_base_cache_key(self, tiny_mapped):
        base = build_request("partition", "tiny", seed=1, threshold=1)
        eco = build_request(
            "partition", "tiny", seed=1, threshold=1,
            delta={"schema": DELTA_SCHEMA_NAME, "v": 1, "ops": []},
        )
        assert eco.cache_key(tiny_mapped) == base.cache_key(tiny_mapped)

    def test_nonempty_delta_moves_the_cache_key(self, tiny_mapped):
        base = build_request("partition", "tiny", seed=1, threshold=1)
        eco = build_request(
            "partition", "tiny", seed=1, threshold=1,
            delta=seeded_delta(tiny_mapped, fraction=0.5, seed=1).to_dict(),
        )
        assert eco.cache_key(tiny_mapped) != base.cache_key(tiny_mapped)

    def test_delta_only_supported_for_partition(self, tiny_mapped):
        with pytest.raises(RequestError, match="partition verb"):
            build_request(
                "bipartition", "tiny", seed=1,
                delta={"schema": DELTA_SCHEMA_NAME, "v": 1, "ops": []},
            )

    def test_bad_delta_document_rejected(self):
        with pytest.raises(RequestError, match="bad delta"):
            build_request("partition", "tiny", seed=1, delta={"ops": "nope"})
