"""Tests for the synthetic circuit generators."""

import random

import pytest

from repro.netlist.generate import (
    alu,
    array_multiplier,
    counter,
    full_adder,
    half_adder,
    lfsr,
    random_logic,
    ripple_adder,
    sequential_core,
)
from repro.netlist.netlist import Netlist
from repro.netlist.validate import validate_netlist


class TestAdders:
    def test_full_adder_truth_table(self):
        n = Netlist("fa")
        for pi in ("a", "b", "cin"):
            n.add_input(pi)
        s, c = full_adder(n, "a", "b", "cin", "fa")
        n.add_output(s)
        n.add_output(c)
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    out = n.simulate([{"a": a, "b": b, "cin": cin}])[0]
                    assert out[s] + 2 * out[c] == a + b + cin

    def test_half_adder_truth_table(self):
        n = Netlist("ha")
        n.add_input("a")
        n.add_input("b")
        s, c = half_adder(n, "a", "b", "ha")
        n.add_output(s)
        n.add_output(c)
        for a in (0, 1):
            for b in (0, 1):
                out = n.simulate([{"a": a, "b": b}])[0]
                assert out[s] + 2 * out[c] == a + b

    @pytest.mark.parametrize("width", [1, 4, 8])
    def test_ripple_adder_adds(self, width):
        n = ripple_adder(f"add{width}", width)
        validate_netlist(n)
        rng = random.Random(width)
        for _ in range(16):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            vec = {f"a{i}": (a >> i) & 1 for i in range(width)}
            vec.update({f"b{i}": (b >> i) & 1 for i in range(width)})
            vec["cin"] = 0
            out = n.simulate([vec])[0]
            total = sum(out[po] << i for i, po in enumerate(n.outputs))
            assert total == a + b

    def test_width_zero_rejected(self):
        with pytest.raises(ValueError):
            ripple_adder("bad", 0)


class TestMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4, 5])
    def test_multiplies(self, width):
        n = array_multiplier(f"mul{width}", width)
        validate_netlist(n)
        rng = random.Random(width)
        for _ in range(25):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            vec = {f"a{i}": (a >> i) & 1 for i in range(width)}
            vec.update({f"b{i}": (b >> i) & 1 for i in range(width)})
            out = n.simulate([vec])[0]
            total = sum(
                out.get(po, 0) << i for i, po in enumerate(n.outputs[: 2 * width])
            )
            assert total == a * b, (a, b, total)

    def test_c6288_scale(self):
        n = array_multiplier("c6288", 16)
        # The real c6288 has ~2400 gates (NOR-based full adders); our
        # XOR/AND/OR full adders land somewhat lower but the same order.
        assert 1200 <= len(n.logic_gates) <= 3500
        assert len(n.inputs) == 32

    def test_width_one_rejected(self):
        with pytest.raises(ValueError):
            array_multiplier("bad", 1)


class TestAlu:
    def test_alu_operations(self):
        width = 4
        n = alu("alu4", width)
        validate_netlist(n)
        rng = random.Random(9)
        for _ in range(20):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            for op, expect in (
                (0, a & b),
                (1, a | b),
                (2, a ^ b),
                (3, (a + b) % (1 << width)),
            ):
                vec = {f"a{i}": (a >> i) & 1 for i in range(width)}
                vec.update({f"b{i}": (b >> i) & 1 for i in range(width)})
                vec.update({"cin": 0, "op0": op & 1, "op1": (op >> 1) & 1})
                out = n.simulate([vec])[0]
                got = sum(out[f"s{i}_y"] << i for i in range(width))
                assert got == expect, (a, b, op)


class TestSequentialGenerators:
    def test_lfsr_cycles(self):
        n = lfsr("l", 8)
        validate_netlist(n)
        outs = n.simulate(
            [{"en": 1, "seed_in": 1}] + [{"en": 1, "seed_in": 0}] * 20
        )
        values = [tuple(sorted(o.items())) for o in outs]
        assert len(set(values)) > 1  # state evolves

    def test_lfsr_hold(self):
        n = lfsr("l", 6)
        outs = n.simulate(
            [{"en": 1, "seed_in": 1}, {"en": 0, "seed_in": 0}, {"en": 0, "seed_in": 0}]
        )
        assert outs[1] == outs[2]

    def test_counter_counts(self):
        n = counter("c", 5)
        validate_netlist(n)
        outs = n.simulate([{"en": 1}] * 10)
        values = [sum(o[f"q{i}"] << i for i in range(5)) for o in outs]
        assert values == list(range(10))


class TestRandomLogic:
    def test_deterministic(self):
        a = random_logic("r", 120, 10, 5, seed=3)
        b = random_logic("r", 120, 10, 5, seed=3)
        assert [repr(g) for g in a.gates()] == [repr(g) for g in b.gates()]

    def test_different_seeds_differ(self):
        a = random_logic("r", 120, 10, 5, seed=3)
        b = random_logic("r", 120, 10, 5, seed=4)
        assert [repr(g) for g in a.gates()] != [repr(g) for g in b.gates()]

    @pytest.mark.parametrize("seed", range(5))
    def test_always_valid(self, seed):
        n = random_logic("r", 150, 12, 8, seed=seed, cluster_size=16)
        validate_netlist(n)

    def test_size_parameters(self):
        n = random_logic("r", 200, 15, 6, seed=1)
        assert len(n.inputs) == 15
        # logic gates plus possibly OR-tree joiners
        assert len(n.logic_gates) >= 200

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            random_logic("r", 0, 4, 2)
        with pytest.raises(ValueError):
            random_logic("r", 10, 0, 2)


class TestSequentialCore:
    @pytest.mark.parametrize("seed", range(4))
    def test_always_valid(self, seed):
        n = sequential_core("s", 250, 10, 8, 30, seed=seed)
        validate_netlist(n)

    def test_dff_count(self):
        n = sequential_core("s", 200, 8, 6, 25, seed=2)
        assert len(n.dffs) == 25

    def test_deterministic(self):
        a = sequential_core("s", 180, 8, 6, 20, seed=5)
        b = sequential_core("s", 180, 8, 6, 20, seed=5)
        assert [repr(g) for g in a.gates()] == [repr(g) for g in b.gates()]

    def test_simulatable(self):
        n = sequential_core("s", 150, 6, 4, 16, seed=1)
        vecs = [
            {pi: (i >> k) & 1 for k, pi in enumerate(n.inputs)} for i in range(4)
        ]
        outs = n.simulate(vecs)
        assert len(outs) == 4
