"""Tests for LUT covering."""

import itertools
import random

import pytest

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.techmap.cover import Lut, cover_netlist
from repro.techmap.decompose import decompose_netlist
from tests.conftest import random_small_netlist


def _cover(netlist, k=5):
    return cover_netlist(decompose_netlist(netlist, max_fanin=min(4, k - 1)), k=k)


class TestCoverInvariants:
    def test_every_gate_covered_exactly_once(self, tiny_netlist):
        luts = _cover(tiny_netlist)
        covered = [g for lut in luts for g in lut.gates]
        logic = set(tiny_netlist.logic_gates)
        assert set(covered) == logic
        assert len(covered) == len(logic)  # duplication-free

    def test_support_bound(self, tiny_netlist):
        for lut in _cover(tiny_netlist):
            assert lut.k <= 5

    def test_roots_include_pos(self, tiny_netlist):
        roots = {lut.root for lut in _cover(tiny_netlist)}
        for po in tiny_netlist.outputs:
            assert po in roots

    def test_roots_include_dff_inputs(self, seq_netlist):
        luts = cover_netlist(seq_netlist)
        roots = {lut.root for lut in luts}
        for ff in seq_netlist.dffs:
            d_net = seq_netlist.gate(ff).fanin[0]
            assert d_net in roots

    def test_multifanout_nets_are_roots(self, tiny_netlist):
        # g1 feeds g3 and g4 so it must survive as a LUT root.
        roots = {lut.root for lut in _cover(tiny_netlist)}
        assert "g1" in roots

    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits_cover_cleanly(self, seed):
        netlist = random_small_netlist(seed, n_gates=60)
        decomposed = decompose_netlist(netlist)
        luts = cover_netlist(decomposed)
        covered = [g for lut in luts for g in lut.gates]
        assert len(covered) == len(set(covered))
        assert set(covered) == set(decomposed.logic_gates)
        for lut in luts:
            assert lut.k <= 5
            assert len(set(lut.support)) == lut.k

    def test_wide_gate_rejected_without_decompose(self):
        n = Netlist("wide")
        pis = [f"i{k}" for k in range(8)]
        for pi in pis:
            n.add_input(pi)
        n.add_gate("y", GateType.AND, pis)
        n.add_output("y")
        with pytest.raises(ValueError, match="decompose"):
            cover_netlist(n, k=5)

    def test_k_too_small_rejected(self, tiny_netlist):
        with pytest.raises(ValueError):
            cover_netlist(tiny_netlist, k=1)


class TestLutFunction:
    def test_masks_match_simulation(self, tiny_netlist):
        decomposed = decompose_netlist(tiny_netlist)
        luts = cover_netlist(decomposed)
        # Evaluate the full circuit on random vectors, then check each LUT
        # reproduces its root's value from its support values.
        rng = random.Random(0)
        order = decomposed.topological_order()
        for _ in range(12):
            vec = {pi: rng.randrange(2) for pi in decomposed.inputs}
            values = {}
            for name in order:
                gate = decomposed.gate(name)
                if gate.gtype is GateType.INPUT:
                    values[name] = vec[name]
                else:
                    from repro.netlist.gates import evaluate_gate

                    values[name] = evaluate_gate(
                        gate.gtype, [values[f] for f in gate.fanin]
                    )
            for lut in luts:
                got = lut.evaluate([values[s] for s in lut.support])
                assert got == values[lut.root], lut.root

    def test_lut_evaluate_arity_check(self):
        lut = Lut(root="r", support=["a", "b"], mask=0b1000, gates={"r"})
        with pytest.raises(ValueError):
            lut.evaluate([1])

    def test_constant_gates_become_zero_input_luts(self):
        n = Netlist("const")
        n.add_gate("one", GateType.CONST1)
        n.add_input("a")
        n.add_gate("y", GateType.AND, ["a", "one"])
        n.add_output("y")
        luts = cover_netlist(n)
        const_luts = [l for l in luts if l.root == "one"]
        assert len(const_luts) == 1
        assert const_luts[0].k == 0
        assert const_luts[0].mask == 1

    def test_absorption_reduces_lut_count(self):
        # A chain of single-fanout gates should collapse into few LUTs.
        n = Netlist("chain")
        n.add_input("a")
        n.add_input("b")
        prev = "a"
        for i in range(6):
            name = f"g{i}"
            n.add_gate(name, GateType.AND, [prev, "b"])
            prev = name
        n.add_output(prev)
        luts = cover_netlist(n)
        assert len(luts) < 6


class TestCoverEdgeCases:
    def test_pure_dff_chain(self):
        # Shift register: every D net is a pass-through; no logic LUTs.
        n = Netlist("shift")
        n.add_input("d")
        prev = "d"
        for i in range(4):
            n.add_gate(f"q{i}", GateType.DFF, [prev])
            prev = f"q{i}"
        n.add_output(prev)
        luts = cover_netlist(n)
        assert luts == []

    def test_fanout_to_po_and_gate(self):
        # A net that is both a PO and an internal fanout must stay a root.
        n = Netlist("pofan")
        n.add_input("a")
        n.add_input("b")
        n.add_gate("mid", GateType.AND, ["a", "b"])
        n.add_gate("top", GateType.NOT, ["mid"])
        n.add_output("mid")
        n.add_output("top")
        roots = {l.root for l in cover_netlist(n)}
        assert {"mid", "top"} <= roots
