"""Tests for partition metrics: cut set, sizes and terminal counting."""

from repro.hypergraph.hypergraph import Hypergraph, NodeKind
from repro.hypergraph.metrics import (
    balance_ratio,
    cut_nets,
    cut_size,
    net_blocks,
    partition_clb_sizes,
    partition_terminal_counts,
)
from tests.conftest import make_cell_hypergraph


def _chain_hypergraph(n_cells=4):
    """c0 -> c1 -> c2 -> c3 chain with one PI pad and one PO pad."""
    hg = Hypergraph("chain")
    nets = [hg.add_net(f"n{i}") for i in range(n_cells + 1)]
    pi = hg.add_node("pi:x", NodeKind.PI)
    hg.connect_output(pi, nets[0])
    for i in range(n_cells):
        cell = hg.add_node(f"c{i}", NodeKind.CELL)
        hg.connect_input(cell, nets[i])
        hg.connect_output(cell, nets[i + 1])
        cell.supports = [(0,)]
    po = hg.add_node("po:y", NodeKind.PO)
    hg.connect_input(po, nets[-1])
    hg.check()
    return hg


class TestCut:
    def test_uncut_chain(self):
        hg = _chain_hypergraph()
        assignment = [0] * len(hg.nodes)
        assert cut_size(hg, assignment) == 0

    def test_single_cut(self):
        hg = _chain_hypergraph()
        # pi, c0, c1 on block 0; c2, c3, po on block 1 -> only n2 crosses.
        assignment = [0, 0, 0, 1, 1, 1]
        assert cut_nets(hg, assignment) == [hg.net_index("n2")]

    def test_net_blocks_ignores_unassigned(self):
        hg = _chain_hypergraph()
        assignment = [0, 0, -1, 1, 1, 1]
        blocks = net_blocks(hg, assignment, hg.net_index("n1"))
        assert blocks == {0}

    def test_three_way_cut(self):
        hg = _chain_hypergraph()
        assignment = [0, 0, 1, 2, 2, 2]
        assert cut_size(hg, assignment) == 2  # n1 and n2


class TestSizes:
    def test_clb_sizes_exclude_terminals(self):
        hg = _chain_hypergraph()
        assignment = [0, 0, 0, 1, 1, 1]
        sizes = partition_clb_sizes(hg, assignment)
        assert sizes == {0: 2, 1: 2}

    def test_balance_ratio(self):
        hg = _chain_hypergraph()
        assert balance_ratio(hg, [0, 0, 0, 1, 1, 1]) == 0.5
        assert balance_ratio(hg, [0, 0, 0, 0, 1, 1]) == 0.75


class TestTerminals:
    def test_crossing_net_costs_both_blocks(self):
        hg = _chain_hypergraph()
        assignment = [0, 0, 0, 1, 1, 1]
        counts = partition_terminal_counts(hg, assignment)
        # Block 0: n0 has the PI pad (1 IOB) + crossing n2 -> 2.
        # Block 1: crossing n2 + n4 has the PO pad -> 2.
        assert counts == {0: 2, 1: 2}

    def test_internal_pad_costs_one(self):
        hg = _chain_hypergraph()
        assignment = [0] * len(hg.nodes)
        counts = partition_terminal_counts(hg, assignment)
        assert counts == {0: 2}  # the PI pad net and the PO pad net

    def test_pad_on_crossing_net_counted_once(self):
        hg = _chain_hypergraph(2)
        # pi(n0 driver) in block 1, its reading cell c0 in block 0:
        # net n0 crosses and carries a pad; block 1 pays exactly 1 for it.
        assignment = [1, 0, 0, 0]
        counts = partition_terminal_counts(hg, assignment)
        assert counts[1] == 1
        assert counts[0] >= 1

    def test_cells_only_no_pads(self):
        hg = make_cell_hypergraph(
            [
                {"name": "a", "inputs": [], "outputs": ["n1"], "supports": [()]},
                {"name": "b", "inputs": ["n1"], "outputs": ["n2"], "supports": [(0,)]},
                {"name": "c", "inputs": ["n2"], "outputs": ["n3"], "supports": [(0,)]},
            ]
        )
        counts = partition_terminal_counts(hg, [0, 1, 1])
        assert counts == {0: 1, 1: 1}


class TestBalanceEdgeCases:
    def test_empty_assignment(self):
        hg = _chain_hypergraph()
        from repro.hypergraph.metrics import balance_ratio

        assert balance_ratio(hg, [-1] * len(hg.nodes)) == 0.0

    def test_terminal_counts_empty_blocks(self):
        hg = _chain_hypergraph()
        counts = partition_terminal_counts(hg, [-1] * len(hg.nodes))
        assert counts == {}

    def test_unassigned_pins_ignored_in_cut(self):
        hg = _chain_hypergraph()
        assignment = [0, 0, -1, 1, 1, 1]
        # n2 connects c1 (unassigned here) and c2 (block 1): with c1's pin
        # ignored the net touches a single block, so it is not cut.
        assert hg.net_index("n2") not in cut_nets(hg, assignment)
