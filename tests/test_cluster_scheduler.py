"""Cluster dispatch: placement, crash -> re-dispatch, stealing, drills."""

import pytest

from repro.batch.manifest import MANIFEST_SCHEMA_NAME, expand_manifest
from repro.batch.scheduler import job_identity, run_batch
from repro.cluster.admin import create_cluster
from repro.cluster.drill import run_drill
from repro.cluster.node import NodeCrash
from repro.cluster.scheduler import ClusterScheduler, run_cluster_batch
from repro.robust import faults

CIRCUIT = "s5378"
SCALE = 0.1

SMALL_DEFAULTS = {
    "verb": "partition",
    "scale": SCALE,
    "seed": 1994,
    "n_solutions": 1,
    "seeds_per_carve": 2,
    "devices_per_carve": 2,
}


def _manifest(jobs, name="farm"):
    return {
        "schema": MANIFEST_SCHEMA_NAME,
        "name": name,
        "defaults": SMALL_DEFAULTS,
        "jobs": jobs,
    }


TWO_JOBS = _manifest(
    [
        {"circuit": CIRCUIT, "threshold": "inf"},
        {"circuit": CIRCUIT, "threshold": 1},
    ]
)

THREE_JOBS = _manifest(
    [
        {"circuit": CIRCUIT, "threshold": "inf"},
        {"circuit": CIRCUIT, "threshold": 1},
        {"circuit": CIRCUIT, "threshold": 2},
    ]
)


def test_cluster_batch_completes_and_replicates(tmp_path):
    cluster = create_cluster(str(tmp_path / "cl"), nodes=3)
    report = run_cluster_batch(TWO_JOBS, cluster=cluster)
    assert report.counts("status") == {"ok": 2}
    assert report.workers == 3
    # Manifest order, like the plain scheduler.
    assert [o.job_id for o in report.outcomes] == [
        j.job_id for j in expand_manifest(TWO_JOBS)
    ]
    # Full replication: every node holds every entry, digests agree.
    digests = cluster.digests()
    assert {d["entries"] for d in digests.values()} == {2}
    assert len({d["root"] for d in digests.values()}) == 1


def test_cluster_dispatch_follows_ring_ownership(tmp_path):
    cluster = create_cluster(str(tmp_path / "cl"), nodes=3)
    events = []
    run_cluster_batch(TWO_JOBS, cluster=cluster, on_event=events.append)
    dispatched = {
        e["job_id"]: e["node"] for e in events if e["event"] == "job.dispatch"
    }
    for job in expand_manifest(TWO_JOBS):
        owner = cluster.ring.primary_for(job_identity(job))
        assert dispatched[job.job_id] == owner


def test_cluster_matches_plain_batch_quality(tmp_path):
    plain = run_batch(TWO_JOBS, cache="use", cache_dir=str(tmp_path / "c"))
    cluster = create_cluster(str(tmp_path / "cl"), nodes=2)
    farmed = run_cluster_batch(TWO_JOBS, cluster=cluster)
    strip = lambda view: [  # noqa: E731
        {k: v[k] for k in ("job_id", "status", "quality")} for v in view
    ]
    assert strip(plain.stable_view()) == strip(farmed.stable_view())


def test_node_crash_is_detected_and_job_redispatched(tmp_path):
    cluster = create_cluster(str(tmp_path / "cl"), nodes=2)
    events = []
    with faults.inject(
        faults.Fault("node.crash", error=NodeCrash, times=1)
    ) as plan:
        report = run_cluster_batch(
            TWO_JOBS, cluster=cluster, on_event=events.append
        )
    assert plan.total_fires() == 1
    assert report.counts("status") == {"ok": 2}  # crash cost no jobs
    names = [e["event"] for e in events]
    assert "node.crash" in names
    assert "node.dead" in names
    assert "job.redispatch" in names
    crashed = next(e["node"] for e in events if e["event"] == "node.crash")
    assert not cluster.by_name[crashed].is_up()
    redispatch = next(e for e in events if e["event"] == "job.redispatch")
    assert redispatch["from"] == crashed
    assert redispatch["to"] != crashed


def test_all_nodes_dead_skips_remaining_jobs(tmp_path):
    cluster = create_cluster(str(tmp_path / "cl"), nodes=1)
    with faults.inject(faults.Fault("node.crash", error=NodeCrash, times=1)):
        report = run_cluster_batch(TWO_JOBS, cluster=cluster)
    counts = report.counts("status")
    assert counts.get("skipped") == 2
    assert all("no live nodes" in o.error for o in report.outcomes)


def test_expired_deadline_skips_everything(tmp_path):
    cluster = create_cluster(str(tmp_path / "cl"), nodes=2)
    report = run_cluster_batch(TWO_JOBS, cluster=cluster, deadline=0.0)
    assert report.counts("status") == {"skipped": 2}


def test_idle_node_steals_from_backlog(tmp_path):
    cluster = create_cluster(str(tmp_path / "cl"), nodes=2)
    jobs = expand_manifest(THREE_JOBS)
    scheduler = ClusterScheduler(cluster, steal=True)
    # Hand-crafted imbalance: everything starts on node-0.
    scheduler.queues["node-0"].extend(jobs)
    outcomes = scheduler.drain("use")
    assert len(outcomes) == len(jobs)
    assert all(o.status == "ok" for o in outcomes)
    assert scheduler.stolen >= 1
    assert cluster.by_name["node-1"].jobs_done >= 1


def test_stealing_can_be_disabled(tmp_path):
    cluster = create_cluster(str(tmp_path / "cl"), nodes=2)
    jobs = expand_manifest(THREE_JOBS)
    scheduler = ClusterScheduler(cluster, steal=False)
    scheduler.queues["node-0"].extend(jobs)
    outcomes = scheduler.drain("use")
    assert all(o.status == "ok" for o in outcomes)
    assert scheduler.stolen == 0
    assert cluster.by_name["node-1"].jobs_done == 0


def test_scheduler_rejects_bad_heartbeat_timeout(tmp_path):
    cluster = create_cluster(str(tmp_path / "cl"), nodes=1)
    with pytest.raises(Exception):
        ClusterScheduler(cluster, heartbeat_timeout=0)


# ---------------------------------------------------------------------------
# The full kill/recover/replay drill (the CI gate, in miniature)
# ---------------------------------------------------------------------------


def test_drill_passes_end_to_end(tmp_path):
    report = run_drill(THREE_JOBS, cluster_dir=str(tmp_path / "cl"), nodes=3)
    assert report.passed, report.problems
    assert report.fault_fired
    assert report.killed is not None
    assert report.redispatched >= 1
    assert report.digests_equal
    assert len(set(report.digest_roots.values())) == 1
    assert report.hit_rate == 1.0
    # The two runs' stable views were compared bit-for-bit by the drill;
    # double-check the invariant directly.
    assert (
        report.faulted_report["stable_view"]
        == report.replay_report["stable_view"]
    )


def test_drill_reports_unfired_fault_as_problem(tmp_path):
    # after=99 can never fire on a 3-job manifest: the drill must say so.
    report = run_drill(
        THREE_JOBS, cluster_dir=str(tmp_path / "cl"), nodes=3, after=99
    )
    assert not report.passed
    assert any("never fired" in p for p in report.problems)
