"""Property-based cross-validation: closed-form gains vs. engine deltas.

For randomly generated pin-level hypergraphs and random partition states,
the closed-form expressions of :mod:`repro.replication.gains` (eqs. 7-11)
must equal the engine's ground-truth cut delta for every move they model.
This is the central correctness argument of the reproduction: the paper's
unified cost model and our move semantics are the same object.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph.hypergraph import Hypergraph, NodeKind
from repro.partition.fm_replication import (
    FUNCTIONAL,
    TRADITIONAL,
    ReplicationConfig,
    ReplicationEngine,
)
from repro.replication.gains import (
    gain_functional_output,
    gain_single_move,
    gain_traditional_replication,
)


def _random_hypergraph(rng: random.Random) -> Hypergraph:
    """A random DAG-ish pin-level hypergraph of 1/2-output cells."""
    hg = Hypergraph("prop")
    n_cells = rng.randint(3, 10)
    output_nets = []  # nets available as input sources
    nodes = []
    for c in range(n_cells):
        node = hg.add_node(f"c{c}", NodeKind.CELL)
        nodes.append(node)
        n_outputs = rng.choice((1, 2, 2))
        n_inputs = rng.randint(0, min(5, len(output_nets)))
        sources = rng.sample(output_nets, n_inputs) if n_inputs else []
        for net in sources:
            hg.connect_input(node, net)
        outs = []
        for o in range(n_outputs):
            net = hg.add_net(f"n{c}_{o}")
            hg.connect_output(node, net)
            outs.append(net)
        # Random supports covering every input at least once.
        supports = [set() for _ in range(n_outputs)]
        for pin in range(n_inputs):
            owners = rng.sample(range(n_outputs), rng.randint(1, n_outputs))
            for o in owners:
                supports[o].add(pin)
        node.supports = [tuple(sorted(s)) for s in supports]
        output_nets.extend(outs)
    # Add a couple of extra sink pins so nets have varied degrees.
    for _ in range(rng.randint(0, 2 * n_cells)):
        node = rng.choice(nodes)
        net = rng.choice(output_nets)
        if net in node.output_nets:
            continue
        pin = hg.connect_input(node, net)
        o = rng.randrange(node.n_outputs)
        node.supports[o] = tuple(sorted(set(node.supports[o]) | {pin}))
    hg.check()
    return hg


def _single_pin_cells(hg):
    """Cells touching each of their nets exactly once (the formulas' domain)."""
    result = []
    for node in hg.nodes:
        nets = list(node.input_nets) + list(node.output_nets)
        if len(set(nets)) == len(nets):
            result.append(node.index)
    return result


@settings(max_examples=120, deadline=None)
@given(st.integers(0, 10**9))
def test_single_move_formula_matches_engine(seed):
    rng = random.Random(seed)
    hg = _random_hypergraph(rng)
    sides = [rng.randrange(2) for _ in hg.nodes]
    engine = ReplicationEngine(
        hg, ReplicationConfig(seed=0, threshold=0, style=FUNCTIONAL), initial=sides
    )
    for v in _single_pin_cells(hg):
        mv = engine.move_vectors(v)
        assert engine.move_gain(v, 1 - engine.side[v], None) == gain_single_move(mv)


@settings(max_examples=120, deadline=None)
@given(st.integers(0, 10**9))
def test_functional_formula_matches_engine(seed):
    rng = random.Random(seed)
    hg = _random_hypergraph(rng)
    sides = [rng.randrange(2) for _ in hg.nodes]
    engine = ReplicationEngine(
        hg, ReplicationConfig(seed=0, threshold=0, style=FUNCTIONAL), initial=sides
    )
    checked = 0
    for v in _single_pin_cells(hg):
        node = hg.nodes[v]
        if node.n_outputs < 2:
            continue
        mv = engine.move_vectors(v)
        s = engine.side[v]
        for o in range(node.n_outputs):
            assert engine.move_gain(v, s, (s, o)) == gain_functional_output(mv, o), (
                seed,
                v,
                o,
            )
            checked += 1
    # (some draws have no 2-output single-pin cells; that's fine)


@settings(max_examples=120, deadline=None)
@given(st.integers(0, 10**9))
def test_traditional_formula_matches_engine(seed):
    rng = random.Random(seed)
    hg = _random_hypergraph(rng)
    sides = [rng.randrange(2) for _ in hg.nodes]
    engine = ReplicationEngine(
        hg, ReplicationConfig(seed=0, threshold=0, style=TRADITIONAL), initial=sides
    )
    for v in _single_pin_cells(hg):
        mv = engine.move_vectors(v)
        s = engine.side[v]
        assert engine.move_gain(v, s, (s, -1)) == gain_traditional_replication(mv), (
            seed,
            v,
        )


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10**9))
def test_unreplication_gain_is_exact(seed):
    """Unreplication gains must equal the actual cut delta (paper III.C)."""
    rng = random.Random(seed)
    hg = _random_hypergraph(rng)
    sides = [rng.randrange(2) for _ in hg.nodes]
    engine = ReplicationEngine(
        hg, ReplicationConfig(seed=0, threshold=0, style=FUNCTIONAL), initial=sides
    )
    # Replicate every eligible cell, then spot-check unreplication gains.
    for v in list(range(len(hg.nodes))):
        node = hg.nodes[v]
        if node.is_cell and node.n_outputs >= 2 and rng.random() < 0.5:
            engine.set_state(v, engine.side[v], (engine.side[v], rng.randrange(node.n_outputs)))
    for v, (s, o) in list(engine.replicas().items()):
        for t in (0, 1):
            gain = engine.move_gain(v, t, None)
            before = engine.cut_size()
            engine.set_state(v, t, None)
            assert before - engine.cut_size() == gain
            engine.set_state(v, s, (s, o))


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10**9))
def test_engine_counts_consistent_after_run(seed):
    from collections import defaultdict

    rng = random.Random(seed)
    hg = _random_hypergraph(rng)
    engine = ReplicationEngine(
        hg, ReplicationConfig(seed=seed % 97, threshold=0, style=FUNCTIONAL)
    )
    engine.run()
    counts = defaultdict(lambda: [0, 0])
    for v in range(len(hg.nodes)):
        for net, side, k in engine.active_pins(v):
            counts[net][side] += k
    for net in range(len(hg.nets)):
        assert engine.counts[net] == counts[net]
