"""The partition service: queue/quota units + live HTTP server paths."""

import asyncio
import threading

import pytest

from repro import api
from repro.request import build_request
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobQueue, JobTable
from repro.service.quota import ClientQuota, TokenBucket
from repro.service.server import PartitionService

CIRCUIT = "s5378"
SCALE = 0.08


def quick_request(seed=7, **overrides):
    base = dict(
        circuit=CIRCUIT, scale=SCALE, seed=seed, threshold=1, n_solutions=1
    )
    base.update(overrides)
    return build_request("partition", **base)


def make_job(job_id="j1", priority=0, state="queued", client="anonymous"):
    return Job(
        job_id=job_id,
        request=quick_request(),
        priority=priority,
        state=state,
        client=client,
    )


# ---------------------------------------------------------------------------
# Queue / table / quota units
# ---------------------------------------------------------------------------


def test_queue_orders_by_priority_then_submission():
    queue = JobQueue()
    low = make_job("low", priority=0)
    high = make_job("high", priority=5)
    later = make_job("later", priority=5)
    for job in (low, high, later):
        queue.push(job)
    assert queue.pop() is high
    assert queue.pop() is later
    assert queue.pop() is low
    assert queue.pop() is None


def test_queue_skips_cancelled_tombstones():
    queue = JobQueue()
    victim = make_job("victim", priority=9)
    survivor = make_job("survivor")
    queue.push(victim)
    queue.push(survivor)
    victim.state = "cancelled"
    assert len(queue) == 1
    assert queue.pop() is survivor


def test_table_retention_evicts_only_finished():
    table = JobTable(keep_finished=2)
    live = make_job("live")
    table.add(live)
    for i in range(4):
        job = make_job(f"f{i}", state="done")
        table.add(job)
        table.finish(job)
    assert table.get("live") is live
    assert table.get("f0") is None and table.get("f1") is None
    assert table.get("f2") is not None and table.get("f3") is not None
    assert table.counts()["done"] == 2


def test_table_inflight_counts_per_client():
    table = JobTable()
    table.add(make_job("a", client="alice"))
    table.add(make_job("b", client="alice", state="running"))
    table.add(make_job("c", client="alice", state="done"))
    table.add(make_job("d", client="bob"))
    assert table.inflight("alice") == 2
    assert table.inflight("bob") == 1


def test_token_bucket_deterministic_clock():
    now = [0.0]
    bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
    assert bucket.try_acquire() and bucket.try_acquire()
    assert not bucket.try_acquire()
    assert bucket.retry_after() == pytest.approx(0.5)
    now[0] += 0.5
    assert bucket.try_acquire()
    with pytest.raises(ValueError):
        TokenBucket(rate=0, burst=1)


def test_client_quota_reasons():
    now = [0.0]
    quota = ClientQuota(rate=1.0, burst=1.0, max_inflight=2, clock=lambda: now[0])
    assert quota.admit("alice", 0) is None
    assert "submissions/s" in quota.admit("alice", 0)
    assert "in flight" in quota.admit("alice", 2)
    now[0] += 1.0
    assert quota.admit("alice", 1) is None
    # Independent buckets per client.
    assert quota.admit("bob", 0) is None


# ---------------------------------------------------------------------------
# Live server over real sockets
# ---------------------------------------------------------------------------


class ServiceThread:
    """Run a PartitionService on its own event-loop thread for tests."""

    def __init__(self, **kwargs):
        self.service = PartitionService(host="127.0.0.1", port=0, **kwargs)
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.service.start()
        self._ready.set()
        await self._stop.wait()
        await self.service.stop()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(30), "service failed to start"
        return ServiceClient("127.0.0.1", self.service.port, client_id="test")

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("service-cache"))
    with ServiceThread(workers=1, cache="use", cache_dir=cache_dir) as client:
        yield client, cache_dir


def test_health_and_stats(served):
    client, _ = served
    health = client.health()
    assert health["status"] == "ok"
    assert health["service"] == "repro-partition-service/1"
    stats = client.stats()
    assert "counters" in stats and "queue_depth" in stats


def test_submit_solve_hit_and_stream(served):
    client, cache_dir = served
    request = quick_request(seed=21)
    reply = client.submit(request)
    assert reply["_http_status"] == 202 and reply["state"] == "queued"
    done = client.wait(reply["job_id"], timeout=300)
    assert done["state"] == "done"
    assert done["result"]["schema"] == api.RESULT_SCHEMA_NAME
    assert done["result"]["ok"] is True

    # Same request again: instant 200 cache hit, bit-identical to a
    # direct api replay against the same store.
    hot = client.submit(request)
    assert hot["_http_status"] == 200 and hot["cached"] is True
    from repro.cache.store import SolutionCache, use_cache

    with use_cache(SolutionCache(cache_dir)):
        direct = api.run_request(request, cache="use")
    assert direct.cache_info.get("status") == "hit"
    assert hot["result"] == direct.to_dict()

    events = [e["event"] for e in client.stream(reply["job_id"])]
    assert events[0] == "job.queued"
    assert "job.start" in events and "job.done" in events
    assert events[-1] == "stream.end"


def test_cancel_queued_job(served):
    client, _ = served
    # Occupy the single worker, then cancel a queued victim.
    slow = client.submit(quick_request(seed=33, scale=0.2, n_solutions=2))
    victim = client.submit(quick_request(seed=34, scale=0.2))
    if victim["_http_status"] == 202:
        cancelled = client.cancel(victim["job_id"])
        assert cancelled["cancelled"] is True
        final = client.status(victim["job_id"])
        # Cancelled stays the verdict even if the dispatcher raced us
        # and the job had already started (best-effort cancel).
        assert final["state"] == "cancelled"
    # Cancelling a terminal job is a no-op, not an error.
    if slow["_http_status"] == 202:
        client.wait(slow["job_id"], timeout=300)
        again = client.cancel(slow["job_id"])
        assert again["cancelled"] is False


def test_error_paths(served):
    client, _ = served
    with pytest.raises(ServiceError) as excinfo:
        client.status("no-such-job")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client._request("POST", "/v1/jobs", body={"request": {"verb": "nope"}})
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client._request("PATCH", "/v1/jobs")
    assert excinfo.value.status == 405
    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", "/v1/teapot")
    assert excinfo.value.status == 404
    # Unsolvable circuit: refused at submit with a clear 400.
    with pytest.raises(ServiceError) as excinfo:
        client.submit(build_request("partition", "not-a-circuit"))
    assert excinfo.value.status == 400


def test_rate_limit_429():
    with ServiceThread(
        workers=1, cache="off", rate=0.001, burst=1.0, max_inflight=1
    ) as client:
        with pytest.raises(ServiceError) as excinfo:
            for _ in range(3):
                client._request("GET", "/v1/stats")
                client._request(
                    "POST",
                    "/v1/jobs",
                    body={"request": quick_request().to_dict(), "client": "flood"},
                )
        assert excinfo.value.status == 429
        assert "Retry-After" not in excinfo.value.payload  # header, not body
