"""Unit tests for the primitive gate layer."""

import pytest

from repro.netlist.gates import (
    Gate,
    GateType,
    evaluate_gate,
    gate_truth_table,
)


class TestGateType:
    def test_combinational_classification(self):
        assert GateType.AND.is_combinational
        assert GateType.NOT.is_combinational
        assert not GateType.INPUT.is_combinational
        assert not GateType.DFF.is_combinational
        assert not GateType.CONST0.is_combinational

    def test_source_classification(self):
        assert GateType.INPUT.is_source
        assert GateType.CONST1.is_source
        assert not GateType.DFF.is_source
        assert not GateType.NAND.is_source

    def test_fanin_bounds_unary(self):
        for gtype in (GateType.NOT, GateType.BUF, GateType.DFF):
            assert gtype.min_fanin == 1
            assert gtype.max_fanin == 1

    def test_fanin_bounds_nary(self):
        assert GateType.AND.min_fanin == 2
        assert GateType.XOR.max_fanin > 100

    def test_fanin_bounds_sources(self):
        assert GateType.INPUT.min_fanin == 0
        assert GateType.INPUT.max_fanin == 0


class TestEvaluateGate:
    @pytest.mark.parametrize(
        "gtype,inputs,expected",
        [
            (GateType.AND, (1, 1, 1), 1),
            (GateType.AND, (1, 0, 1), 0),
            (GateType.OR, (0, 0), 0),
            (GateType.OR, (0, 1), 1),
            (GateType.NAND, (1, 1), 0),
            (GateType.NAND, (0, 1), 1),
            (GateType.NOR, (0, 0), 1),
            (GateType.NOR, (1, 0), 0),
            (GateType.XOR, (1, 1, 1), 1),
            (GateType.XOR, (1, 1), 0),
            (GateType.XNOR, (1, 1), 1),
            (GateType.XNOR, (1, 0), 0),
            (GateType.NOT, (0,), 1),
            (GateType.NOT, (1,), 0),
            (GateType.BUF, (1,), 1),
        ],
    )
    def test_truth_values(self, gtype, inputs, expected):
        assert evaluate_gate(gtype, inputs) == expected

    def test_constants_ignore_inputs(self):
        assert evaluate_gate(GateType.CONST0, ()) == 0
        assert evaluate_gate(GateType.CONST1, ()) == 1

    def test_logic_without_inputs_rejected(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, ())

    def test_unevaluable_types_rejected(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.DFF, (1,))
        with pytest.raises(ValueError):
            evaluate_gate(GateType.INPUT, (1,))


class TestTruthTable:
    def test_and2(self):
        assert gate_truth_table(GateType.AND, 2) == (0, 0, 0, 1)

    def test_or2(self):
        assert gate_truth_table(GateType.OR, 2) == (0, 1, 1, 1)

    def test_xor3_parity(self):
        table = gate_truth_table(GateType.XOR, 3)
        for row in range(8):
            assert table[row] == bin(row).count("1") % 2

    def test_not1(self):
        assert gate_truth_table(GateType.NOT, 1) == (1, 0)

    def test_negative_fanin_rejected(self):
        with pytest.raises(ValueError):
            gate_truth_table(GateType.AND, -1)


class TestGate:
    def test_repr_and_arity(self):
        gate = Gate("g", GateType.AND, ["a", "b"])
        gate.check_arity()
        assert "g" in repr(gate)

    def test_arity_violation(self):
        gate = Gate("g", GateType.AND, ["a"])
        with pytest.raises(ValueError):
            gate.check_arity()

    def test_unary_arity_violation(self):
        gate = Gate("g", GateType.NOT, ["a", "b"])
        with pytest.raises(ValueError):
            gate.check_arity()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Gate("", GateType.AND, ["a", "b"])
