"""Tests for replication potential (eqs. 4-6) and distributions (Figure 3)."""

import pytest

from repro.hypergraph.build import build_hypergraph
from repro.replication.potential import (
    PotentialDistribution,
    T_INFINITY,
    cell_distribution,
    max_replication_factor,
    node_potential,
    replication_potential,
)
from tests.conftest import make_cell_hypergraph


class TestEquation4:
    def test_single_output_is_zero(self):
        assert replication_potential([(1, 1, 1)]) == 0

    def test_paper_figure1_cell(self):
        # Figure 1: A_X = [1,1,0], A_Y = [0,1,1] -> psi = 2.
        assert replication_potential([(1, 1, 0), (0, 1, 1)]) == 2

    def test_paper_figure2_cell(self):
        # Figure 2: A_X1 = [1,1,1,1,0], A_X2 = [0,0,0,1,1] -> psi = 4.
        assert replication_potential([(1, 1, 1, 1, 0), (0, 0, 0, 1, 1)]) == 4

    def test_fully_shared_inputs(self):
        assert replication_potential([(1, 1), (1, 1)]) == 0

    def test_fully_disjoint_inputs(self):
        assert replication_potential([(1, 1, 0, 0), (0, 0, 1, 1)]) == 4

    def test_three_outputs(self):
        # Input 0 exclusive to out0, input 1 shared by all, input 2 exclusive
        # to out2: psi = 2.
        vectors = [(1, 1, 0), (0, 1, 0), (0, 1, 1)]
        assert replication_potential(vectors) == 2

    def test_no_outputs_rejected(self):
        with pytest.raises(ValueError):
            replication_potential([])


class TestNodePotential:
    def test_from_hypergraph_node(self):
        hg = make_cell_hypergraph(
            [
                {
                    "name": "m",
                    "inputs": ["a", "b", "c", "d", "e"],
                    "outputs": ["x", "y"],
                    "supports": [(0, 1, 2, 3), (3, 4)],
                }
            ]
        )
        assert node_potential(hg.nodes[0]) == 4

    def test_terminal_is_zero(self, small_hg_terms):
        terminals = [n for n in small_hg_terms.nodes if not n.is_cell]
        assert terminals
        assert node_potential(terminals[0]) == 0


class TestDistribution:
    def _dist(self):
        return PotentialDistribution(
            name="t",
            n_cells=10,
            single_output_zero=4,
            multi_output_zero=1,
            by_potential={1: 2, 2: 2, 4: 1},
        )

    def test_fractions(self):
        dist = self._dist()
        assert dist.fraction(4) == 0.4

    def test_eq6_threshold_zero_includes_multi_zero(self):
        # Paper note: "T=0 includes multi-output cells with psi=0".
        dist = self._dist()
        assert max_replication_factor(dist, 0) == 6

    def test_eq6_threshold_one(self):
        assert max_replication_factor(self._dist(), 1) == 5

    def test_eq6_threshold_three(self):
        assert max_replication_factor(self._dist(), 3) == 1

    def test_eq6_infinity_disables(self):
        assert max_replication_factor(self._dist(), T_INFINITY) == 0

    def test_rows_ordering(self):
        rows = self._dist().rows()
        assert rows[0][0] == "psi=0 (1-out)"
        assert rows[1][0] == "psi=0* (m-out)"
        assert [r[0] for r in rows[2:]] == ["psi=1", "psi=2", "psi=4"]

    def test_distribution_over_real_circuit(self, small_mapped):
        hg = build_hypergraph(small_mapped)
        dist = cell_distribution(hg)
        assert dist.n_cells == small_mapped.n_cells
        total = (
            dist.single_output_zero
            + dist.multi_output_zero
            + sum(dist.by_potential.values())
        )
        assert total == dist.n_cells
        # Figure 3's headline property: most cells are replication candidates.
        assert max_replication_factor(dist, 1) > 0


class TestFigure3PaperShape:
    """The Figure 3 claims, asserted on the full mapped suite at small scale."""

    @pytest.mark.parametrize("name", ["c3540", "c6288", "s5378"])
    def test_majority_of_cells_replicable(self, name):
        from repro.netlist.benchmarks import benchmark_circuit
        from repro.techmap.mapped import technology_map

        hg = build_hypergraph(
            technology_map(benchmark_circuit(name, scale=0.15, seed=2))
        )
        dist = cell_distribution(hg)
        replicable = dist.cells_with_potential_at_least(1)
        assert replicable / dist.n_cells > 0.4

    def test_multiplier_is_regular(self):
        from repro.netlist.benchmarks import benchmark_circuit
        from repro.techmap.mapped import technology_map

        hg = build_hypergraph(
            technology_map(benchmark_circuit("c6288", scale=0.3, seed=2))
        )
        dist = cell_distribution(hg)
        # Full-adder pairs dominate: psi=2 is the modal class.
        modal = max(dist.by_potential, key=dist.by_potential.get)
        assert modal == 2
