"""Tests for the experiment harness (paper tables/figures)."""

import pytest

from repro.experiments import figure3, table1, table2, table3, tables4to7
from repro.experiments.common import TableResult, load_suite
from repro.partition.devices import XC3000_LIBRARY

CIRCUITS = ("c6288", "s5378")
SCALE = 0.1


class TestCommon:
    def test_suite_loading_and_memoization(self):
        a = load_suite(CIRCUITS, SCALE, seed=3)
        b = load_suite(CIRCUITS, SCALE, seed=3)
        assert [sc.name for sc in a] == list(CIRCUITS)
        assert a[0].mapped is b[0].mapped  # memoized

    def test_table_render(self):
        table = TableResult("T", ["a", "b"], [[1, 2.5], ["x", "y"]], notes=["n"])
        text = table.text()
        assert "T" in text and "2.50" in text and "note: n" in text

    def test_row_dict(self):
        table = TableResult("T", ["a", "b"], [[1, 2]])
        assert table.row_dict() == [{"a": 1, "b": 2}]


class TestTable1:
    def test_five_devices(self):
        result = table1.run()
        assert len(result.rows) == len(XC3000_LIBRARY)
        assert result.headers[0] == "Device"


class TestTable2:
    def test_columns(self):
        result = table2.run(CIRCUITS, SCALE)
        assert result.headers == ["Circuit", "#CLBs", "#IOBs", "#DFF", "#NETs", "#PINs"]
        assert len(result.rows) == len(CIRCUITS)
        for row in result.rows:
            assert row[1] > 0  # CLBs

    def test_sequential_has_dffs(self):
        result = table2.run(("s5378",), SCALE)
        assert result.rows[0][3] > 0


class TestFigure3:
    def test_fractions_sum_to_100(self):
        result = figure3.run(CIRCUITS, SCALE)
        for row in result.rows:
            assert sum(row[2:]) == pytest.approx(100.0, abs=0.5)

    def test_histogram_render(self):
        dist = figure3.distributions(("c6288",), SCALE)[0]
        text = figure3.ascii_histogram(dist)
        assert "c6288" in text and "%" in text

    def test_majority_replicable(self):
        # The paper's headline: most cells have psi >= 1.
        result = figure3.run(CIRCUITS, SCALE)
        for row in result.rows:
            single, multi_zero = row[2], row[3]
            assert single + multi_zero < 60.0


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(CIRCUITS, SCALE, runs=3)

    def test_shape(self, result):
        assert len(result.rows) == len(CIRCUITS) + 1  # + Avg row
        assert result.rows[-1][0] == "Avg"

    def test_replication_reduces_cut(self, result):
        avg_row = result.rows[-1]
        assert avg_row[-1] > 0  # average avg-cut reduction positive

    def test_best_leq_avg(self, result):
        for row in result.rows[:-1]:
            assert row[1] <= row[2]  # FM best <= FM avg
            assert row[3] <= row[4]  # FR best <= FR avg


class TestTables4to7:
    @pytest.fixture(scope="class")
    def data(self):
        return tables4to7.sweep(
            ("s5378",), 0.25, seed=3, n_solutions=1, seeds_per_carve=2
        )

    def test_sweep_keys(self, data):
        thresholds = {t for _, t in data}
        assert thresholds == set(tables4to7.DEFAULT_THRESHOLDS)

    def test_baseline_no_replication(self, data):
        assert data[("s5378", tables4to7.INF)].replicated_fraction == 0.0

    def test_table4(self, data):
        result = tables4to7.table4(data, 0.25)
        assert result.rows[-1][0] == "Avg"
        assert "T=0 %" in result.headers

    def test_table5(self, data):
        result = tables4to7.table5(data, 0.25)
        assert "Util in [3] %" in result.headers
        for row in result.rows:
            assert row[1] >= 0

    def test_table6(self, data):
        result = tables4to7.table6(data, 0.25)
        base = result.rows[0][1]
        assert base > 0

    def test_table7(self, data):
        result = tables4to7.table7(data, 0.25)
        assert "T=1 red %" in result.headers

    def test_run_all(self):
        tables = tables4to7.run_all(
            ("s5378",), 0.25, seed=3, n_solutions=1, seeds_per_carve=2
        )
        assert len(tables) == 4
        titles = [t.title for t in tables]
        assert any("Table IV" in t for t in titles)
        assert any("Table VII" in t for t in titles)


class TestDeviceDistribution:
    def test_table_from_synthetic_reports(self):
        from repro.core.results import KWayReport

        def report(name, t, k, devices):
            return KWayReport(
                circuit=name,
                threshold=t,
                k=k,
                total_cost=100.0,
                device_counts=devices,
                avg_clb_utilization=0.8,
                avg_iob_utilization=0.6,
                replicated_fraction=0.0 if t == float("inf") else 0.05,
                n_cells=100,
                n_instances=105,
                feasible=True,
                elapsed_seconds=1.0,
            )

        data = {
            ("x", float("inf")): report("x", float("inf"), 3, {"XC3090": 3}),
            ("x", 1.0): report("x", 1.0, 3, {"XC3064": 2, "XC3090": 1}),
        }
        result = tables4to7.device_distribution_table(data, 1.0)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row[0] == "x"
        assert "3090" in str(row[2])
        assert "3064" in str(row[4])
