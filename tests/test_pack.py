"""Tests for CLB packing (FF merge + LUT pairing)."""

import pytest

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.techmap.cover import cover_netlist
from repro.techmap.decompose import decompose_netlist
from repro.techmap.pack import CellSpec, FunctionSpec, pack_cells
from tests.conftest import random_small_netlist


def _pack(netlist, pair=True):
    decomposed = decompose_netlist(netlist)
    luts = cover_netlist(decomposed)
    return pack_cells(decomposed, luts, pair=pair), decomposed, luts


class TestXC3000Constraints:
    @pytest.mark.parametrize("seed", range(5))
    def test_cell_limits(self, seed):
        cells, _, _ = _pack(random_small_netlist(seed, n_gates=80))
        for cell in cells:
            assert 1 <= len(cell.functions) <= 2
            assert len(cell.inputs) <= 5
            if len(cell.functions) == 2:
                for fn in cell.functions:
                    assert len(fn.support) <= 4

    @pytest.mark.parametrize("seed", range(3))
    def test_every_function_emitted_once(self, seed):
        cells, decomposed, luts = _pack(random_small_netlist(seed, n_gates=80))
        outputs = [fn.output for cell in cells for fn in cell.functions]
        assert len(outputs) == len(set(outputs))
        # Outputs = FF outputs + unconsumed LUT roots.
        ff_outputs = set(decomposed.dffs)
        assert ff_outputs <= set(outputs)

    def test_pairing_disabled(self, tiny_netlist):
        cells, _, _ = _pack(tiny_netlist, pair=False)
        assert all(len(c.functions) == 1 for c in cells)


class TestFFMerge:
    def test_private_cone_registered(self):
        # d = AND(a, b) feeds only the DFF: the cone must merge into the FF.
        n = Netlist("merge")
        n.add_input("a")
        n.add_input("b")
        n.add_gate("d", GateType.AND, ["a", "b"])
        n.add_gate("q", GateType.DFF, ["d"])
        n.add_output("q")
        cells, _, _ = _pack(n)
        regs = [fn for c in cells for fn in c.functions if fn.registered]
        assert len(regs) == 1
        assert regs[0].output == "q"
        assert sorted(regs[0].support) == ["a", "b"]

    def test_shared_cone_gets_passthrough(self):
        # d feeds the DFF and a PO: the FF becomes a pass-through register.
        n = Netlist("shared")
        n.add_input("a")
        n.add_input("b")
        n.add_gate("d", GateType.AND, ["a", "b"])
        n.add_gate("q", GateType.DFF, ["d"])
        n.add_output("q")
        n.add_output("d")
        cells, _, _ = _pack(n)
        regs = [fn for c in cells for fn in c.functions if fn.registered]
        assert len(regs) == 1
        assert regs[0].support == ["d"]
        assert regs[0].mask == 0b10  # identity

    def test_pi_fed_dff(self):
        n = Netlist("pif")
        n.add_input("a")
        n.add_gate("q", GateType.DFF, ["a"])
        n.add_output("q")
        cells, _, _ = _pack(n)
        regs = [fn for c in cells for fn in c.functions if fn.registered]
        assert regs[0].support == ["a"]


class TestCellSpec:
    def test_inputs_deduplicated(self):
        spec = CellSpec(
            [
                FunctionSpec("x", ["a", "b"], 0b1000, False),
                FunctionSpec("y", ["b", "c"], 0b1000, False),
            ]
        )
        assert spec.inputs == ["a", "b", "c"]
        assert spec.outputs == ["x", "y"]

    def test_pairing_prefers_sharing(self):
        # Two function pairs: (x1,x2) share 3 inputs; (x3) is disjoint.
        n = Netlist("share")
        for pi in ("a", "b", "c", "d", "e", "f", "g", "h"):
            n.add_input(pi)
        n.add_gate("x1", GateType.AND, ["a", "b", "c"])
        n.add_gate("x2", GateType.OR, ["a", "b", "c", "d"])
        n.add_gate("x3", GateType.AND, ["e", "f", "g", "h"])
        for po in ("x1", "x2", "x3"):
            n.add_output(po)
        cells, _, _ = _pack(n)
        by_output = {}
        for i, cell in enumerate(cells):
            for fn in cell.functions:
                by_output[fn.output] = i
        assert by_output["x1"] == by_output["x2"]
        assert by_output["x3"] != by_output["x1"]


class TestPackEdgeCases:
    def test_five_input_function_stays_alone(self):
        n = Netlist("five")
        for pi in "abcde":
            n.add_input(pi)
        n.add_gate("t1", GateType.AND, ["a", "b", "c", "d"])
        n.add_gate("y", GateType.AND, ["t1", "e"])
        n.add_output("y")
        cells, _, _ = _pack(n)
        five_input = [c for c in cells if len(c.inputs) == 5]
        for cell in five_input:
            assert len(cell.functions) == 1

    def test_two_ffs_can_share_a_cell(self):
        n = Netlist("ffpair")
        n.add_input("a")
        n.add_input("b")
        n.add_gate("d0", GateType.AND, ["a", "b"])
        n.add_gate("d1", GateType.OR, ["a", "b"])
        n.add_gate("q0", GateType.DFF, ["d0"])
        n.add_gate("q1", GateType.DFF, ["d1"])
        n.add_output("q0")
        n.add_output("q1")
        cells, _, _ = _pack(n)
        # Both registered cones share inputs {a,b}: one CLB suffices.
        regs_per_cell = [sum(fn.registered for fn in c.functions) for c in cells]
        assert max(regs_per_cell) <= 2
        assert sum(regs_per_cell) == 2
