"""Solution cache: store edge cases, codec round-trips, api policies."""

import json
import os
import threading

import pytest

from repro import api
from repro.cache.codec import (
    CODEC_VERSION,
    CacheDecodeError,
    decode_solution,
    encode_solution,
)
from repro.cache.store import (
    CACHE_ENV_VAR,
    DEFAULT_CACHE_DIR,
    SolutionCache,
    build_entry,
    cache_key,
    get_cache,
    resolve_cache,
    set_cache,
    use_cache,
    validate_entry,
)

CIRCUIT = "s5378"
SCALE = 0.1


@pytest.fixture
def store(tmp_path):
    return SolutionCache(str(tmp_path / "cache"))


@pytest.fixture(scope="module")
def mapped():
    return api.map(CIRCUIT, scale=SCALE, seed=1994).solution


@pytest.fixture(scope="module")
def kway_result(mapped):
    return api.partition(mapped, scale=SCALE, seed=1994, n_solutions=1,
                         seeds_per_carve=2, devices_per_carve=2)


def _entry_for(mapped, solution, seed=1994, config=None):
    config = config or {"verb": "partition", "threshold": 1}
    key = cache_key(mapped, config, seed)
    return build_entry(
        kind="partition",
        key=key,
        circuit=mapped.name,
        netlist_hash="x" * 16,
        config=config,
        seed=seed,
        solution=encode_solution(solution),
        elapsed_seconds=1.25,
    )


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------


def test_cache_key_is_deterministic_and_sensitive(mapped):
    config = {"verb": "partition", "threshold": 1}
    key = cache_key(mapped, config, 7)
    assert key == cache_key(mapped, dict(config), 7)
    assert key != cache_key(mapped, {**config, "threshold": 2}, 7)
    assert key != cache_key(mapped, config, 8)


def test_cache_key_canonicalizes_inf(mapped):
    # float('inf') is not JSON; the ledger canonicalization makes it part
    # of the key rather than an error.
    a = cache_key(mapped, {"threshold": float("inf")}, 0)
    b = cache_key(mapped, {"threshold": float("inf")}, 0)
    assert a == b


def test_short_key_rejected(store):
    with pytest.raises(ValueError):
        store.path_for("ab")


# ---------------------------------------------------------------------------
# Store round-trip and corruption healing
# ---------------------------------------------------------------------------


def test_put_get_roundtrip_and_sharding(store, mapped, kway_result):
    entry = _entry_for(mapped, kway_result.solution)
    path = store.put(entry)
    assert os.path.dirname(path).endswith(entry["key"][:2])
    got = store.get(entry["key"])
    assert got is not None and got["key"] == entry["key"]
    decoded = decode_solution(got["solution"])
    assert decoded.summary() == kway_result.solution.summary()


def test_validate_entry_flags_problems(mapped, kway_result):
    entry = _entry_for(mapped, kway_result.solution)
    assert validate_entry(entry) == []
    assert validate_entry("nope")
    bad = dict(entry)
    bad["v"] = 99
    bad["seed"] = "seven"
    problems = validate_entry(bad)
    assert any("v=" in p for p in problems)
    assert any("seed" in p for p in problems)


def test_corrupted_entry_is_a_miss_and_self_heals(store, mapped, kway_result):
    entry = _entry_for(mapped, kway_result.solution)
    path = store.put(entry)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("{ this is not json")
    assert store.get(entry["key"]) is None
    assert not os.path.exists(path)  # bad file deleted, slot heals


def test_truncated_entry_is_a_miss(store, mapped, kway_result):
    entry = _entry_for(mapped, kway_result.solution)
    path = store.put(entry)
    blob = open(path, encoding="utf-8").read()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(blob[: len(blob) // 2])  # torn write simulation
    assert store.get(entry["key"]) is None
    assert not os.path.exists(path)


def test_key_mismatch_is_a_miss(store, mapped, kway_result):
    entry = _entry_for(mapped, kway_result.solution)
    store.put(entry)
    other = dict(entry, key=entry["key"][::-1])
    path = store.path_for(other["key"])
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh)  # body claims a different key
    assert store.get(other["key"]) is None


def test_decode_rejects_stale_codec_and_unknown_type():
    with pytest.raises(CacheDecodeError):
        decode_solution({"codec": CODEC_VERSION + 1, "type": "kway"})
    with pytest.raises(CacheDecodeError):
        decode_solution({"codec": CODEC_VERSION, "type": "mystery"})
    with pytest.raises(CacheDecodeError):
        decode_solution([1, 2, 3])


def test_encode_rejects_uncacheable_shapes():
    with pytest.raises(TypeError):
        encode_solution(object())


# ---------------------------------------------------------------------------
# Eviction
# ---------------------------------------------------------------------------


def test_eviction_under_size_cap(store, mapped, kway_result):
    paths = []
    for seed in range(4):
        entry = _entry_for(mapped, kway_result.solution, seed=seed)
        paths.append(store.put(entry))
        # Distinct mtimes so LRU order is well defined on coarse clocks.
        os.utime(paths[-1], (seed, seed))
    sizes = [os.path.getsize(p) for p in paths]
    store.max_bytes = sum(sizes) - 1  # one entry over the cap
    evicted = store.evict()
    assert len(evicted) == 1
    assert not os.path.exists(paths[0])  # oldest mtime went first
    assert all(os.path.exists(p) for p in paths[1:])
    assert store.stats()["bytes"] <= store.max_bytes


def test_touch_protects_recent_entries_from_eviction(store, mapped, kway_result):
    entries = [_entry_for(mapped, kway_result.solution, seed=s) for s in range(3)]
    paths = [store.put(e) for e in entries]
    for n, path in enumerate(paths):
        os.utime(path, (n, n))
    store.touch(entries[0]["key"])  # oldest becomes newest
    evicted = store.evict(max_bytes=os.path.getsize(paths[0]) + 1)
    assert entries[0]["key"] not in evicted
    assert store.get(entries[0]["key"]) is not None


def test_evict_zero_empties_store(store, mapped, kway_result):
    for seed in range(3):
        store.put(_entry_for(mapped, kway_result.solution, seed=seed))
    assert store.stats()["entries"] == 3
    store.evict(0)
    assert store.stats() == {
        "root": store.root, "entries": 0, "bytes": 0, "shards": 0,
        "max_bytes": store.max_bytes,
    }


def test_put_runs_eviction_automatically(store, mapped, kway_result):
    first = _entry_for(mapped, kway_result.solution, seed=0)
    path = store.put(first)
    os.utime(path, (1, 1))
    store.max_bytes = os.path.getsize(path) + 1
    store.put(_entry_for(mapped, kway_result.solution, seed=1))
    assert store.stats()["entries"] == 1
    assert store.get(first["key"]) is None  # older entry was evicted


# ---------------------------------------------------------------------------
# Concurrency: the tmp+rename discipline
# ---------------------------------------------------------------------------


def test_concurrent_writers_never_tear_an_entry(store, mapped, kway_result):
    entry = _entry_for(mapped, kway_result.solution)
    errors = []

    def writer():
        try:
            for _ in range(10):
                store.put(json.loads(json.dumps(entry)))
        except Exception as exc:  # pragma: no cover - the failure signal
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    got = store.get(entry["key"])
    assert got is not None and validate_entry(got) == []
    # No stray .tmp siblings survive the rename discipline.
    shard_dir = os.path.dirname(store.path_for(entry["key"]))
    assert [n for n in os.listdir(shard_dir) if ".tmp." in n] == []


# ---------------------------------------------------------------------------
# Enablement and resolution
# ---------------------------------------------------------------------------


def test_resolve_cache_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
    assert resolve_cache().root == DEFAULT_CACHE_DIR
    monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env"))
    assert resolve_cache().root == str(tmp_path / "env")
    monkeypatch.setenv(CACHE_ENV_VAR, "1")  # bare enable -> default dir
    assert resolve_cache().root == DEFAULT_CACHE_DIR
    installed = SolutionCache(str(tmp_path / "installed"))
    with use_cache(installed):
        assert resolve_cache() is installed
        assert resolve_cache(str(tmp_path / "explicit")).root == str(
            tmp_path / "explicit"
        )
    assert get_cache() is None


def test_set_cache_installs_and_clears(tmp_path):
    store = SolutionCache(str(tmp_path))
    assert set_cache(store) is store
    try:
        assert get_cache() is store
    finally:
        set_cache(None)
    assert get_cache() is None


# ---------------------------------------------------------------------------
# api integration: policies, verification, refresh
# ---------------------------------------------------------------------------


def _partition(**kwargs):
    return api.partition(
        CIRCUIT, scale=SCALE, seed=1994, n_solutions=1,
        seeds_per_carve=2, devices_per_carve=2, **kwargs
    )


def test_api_miss_then_hit_is_bit_identical(store):
    with use_cache(store):
        cold = _partition(cache="use")
        assert cold.cache_info["status"] == "miss"
        warm = _partition(cache="use")
    assert warm.cache_info["status"] == "hit"
    assert warm.cache_info["key"] == cold.cache_info["key"]
    assert warm.solution.summary() == cold.solution.summary()
    # Hits replay the original solve time (bit-identical CPU columns).
    assert warm.elapsed_seconds == cold.elapsed_seconds
    assert warm.cache_info["saved_seconds"] == cold.elapsed_seconds


def test_api_cache_off_touches_nothing(store):
    with use_cache(store):
        result = _partition(cache="off")
    assert result.cache_info is None
    assert store.stats()["entries"] == 0


def test_api_rejects_unknown_policy():
    with pytest.raises(ValueError):
        _partition(cache="sometimes")


def test_api_refresh_overwrites_stale_entry(store):
    with use_cache(store):
        cold = _partition(cache="use")
        key = cold.cache_info["key"]
        # Go stale: tamper the stored entry's payload in place.
        path = store.path_for(key)
        entry = json.load(open(path, encoding="utf-8"))
        entry["elapsed_seconds"] = 123456.0
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entry, fh)
        refreshed = _partition(cache="refresh")
        assert refreshed.cache_info["status"] == "refreshed"
        warm = _partition(cache="use")
    assert warm.cache_info["status"] == "hit"
    assert warm.elapsed_seconds != 123456.0  # stale entry was replaced


def test_api_corrupted_entry_falls_back_to_recompute(store):
    with use_cache(store):
        cold = _partition(cache="use")
        path = store.path_for(cold.cache_info["key"])
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"v": 1, "truncated')
        again = _partition(cache="use")
        assert again.cache_info["status"] == "miss"  # recomputed, not crashed
        assert again.solution.summary() == cold.solution.summary()
        assert store.get(cold.cache_info["key"]) is not None  # re-stored


def test_api_hit_is_verified_before_trust(store):
    with use_cache(store):
        cold = _partition(cache="use")
        path = store.path_for(cold.cache_info["key"])
        entry = json.load(open(path, encoding="utf-8"))
        # Decodes fine but fails the independent checker: drop a cell.
        block = entry["solution"]["blocks"][0]
        for field in ("cells", "originals", "cell_inputs", "cell_outputs"):
            block[field] = block[field][1:]
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entry, fh)
        again = _partition(cache="use")
    assert again.cache_info["status"] == "miss"  # tampered entry rejected
    assert again.solution.summary() == cold.solution.summary()


def test_api_bipartition_roundtrip(store):
    with use_cache(store):
        cold = api.bipartition(CIRCUIT, scale=SCALE, seed=3, runs=2, cache="use")
        warm = api.bipartition(CIRCUIT, scale=SCALE, seed=3, runs=2, cache="use")
    assert cold.cache_info["status"] == "miss"
    assert warm.cache_info["status"] == "hit"
    assert warm.solution.as_dict() == cold.solution.as_dict()


def test_api_hit_skips_ledger_append(store, tmp_path):
    from repro.obs.ledger import Ledger, use_ledger

    ledger = Ledger(str(tmp_path / "ledger"))
    with use_cache(store), use_ledger(ledger):
        cold = _partition(cache="use")
        warm = _partition(cache="use")
    assert cold.run_record is not None
    assert warm.run_record is None  # no new run happened
    assert len(ledger.records()) == 1


def test_self_heal_announces_cache_corrupt(store, mapped, kway_result):
    from repro.obs.events import ListEmitter
    from repro.obs.metrics import MetricsRegistry, use_registry

    entry = _entry_for(mapped, kway_result.solution)
    path = store.put(entry)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("{ torn write")
    reg = MetricsRegistry(enabled=True, emitter=ListEmitter())
    with use_registry(reg):
        assert store.get(entry["key"]) is None
        # Second flavor: parseable JSON that fails schema validation.
        store.put(entry)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"v": 99}, fh)
        assert store.get(entry["key"]) is None
    assert reg.counter("cache.corrupt").value == 2
    events = [e for e in reg.emitter.events if e["name"] == "cache.corrupt"]
    reasons = [e["fields"]["reason"] for e in events]
    assert any("unreadable" in r for r in reasons)
    assert any("schema mismatch" in r for r in reasons)
    assert all(e["fields"]["key"] == entry["key"] for e in events)


def test_plain_miss_is_not_corruption(store, mapped, kway_result):
    from repro.obs.events import ListEmitter
    from repro.obs.metrics import MetricsRegistry, use_registry

    entry = _entry_for(mapped, kway_result.solution)
    reg = MetricsRegistry(enabled=True, emitter=ListEmitter())
    with use_registry(reg):
        assert store.get(entry["key"]) is None  # never stored: plain miss
    assert reg.counter("cache.corrupt").value == 0
    assert [e for e in reg.emitter.events if e["name"] == "cache.corrupt"] == []
