"""Tests for the hypergraph structure and builder."""

import pytest

from repro.hypergraph.build import build_hypergraph
from repro.hypergraph.hypergraph import Hypergraph, Net, Node, NodeKind, PIN_IN, PIN_OUT
from repro.techmap.mapped import technology_map
from tests.conftest import make_cell_hypergraph


class TestStructure:
    def test_connect_pins(self):
        hg = Hypergraph("t")
        node = hg.add_node("c", NodeKind.CELL)
        net = hg.add_net("n")
        pin = hg.connect_input(node, net)
        assert pin == 0
        assert net.pins == [(0, PIN_IN, 0)]
        hg.connect_output(node, net)
        assert node.output_nets == [0]

    def test_duplicate_net_rejected(self):
        hg = Hypergraph("t")
        hg.add_net("n")
        with pytest.raises(ValueError):
            hg.add_net("n")

    def test_node_weights(self):
        hg = Hypergraph("t")
        cell = hg.add_node("c", NodeKind.CELL)
        pad = hg.add_node("p", NodeKind.PI)
        assert cell.clb_weight == 1 and cell.iob_weight == 0
        assert pad.clb_weight == 0 and pad.iob_weight == 1

    def test_adjacency_and_exclusive(self):
        hg = make_cell_hypergraph(
            [
                {
                    "name": "m",
                    "inputs": ["a", "b", "c"],
                    "outputs": ["x", "y"],
                    "supports": [(0, 1), (1, 2)],
                }
            ]
        )
        node = hg.nodes[0]
        assert node.adjacency_vector(0) == (1, 1, 0)
        assert node.adjacency_vector(1) == (0, 1, 1)
        assert node.exclusive_inputs(0) == (0,)
        assert node.exclusive_inputs(1) == (2,)

    def test_adjacent_nets_dedup(self):
        hg = make_cell_hypergraph(
            [
                {
                    "name": "m",
                    "inputs": ["a", "a"],
                    "outputs": ["x"],
                    "supports": [(0, 1)],
                }
            ]
        )
        assert len(hg.nodes[0].adjacent_nets()) == 2  # a + x

    def test_check_rejects_two_drivers(self):
        hg = Hypergraph("t")
        n1 = hg.add_node("c1", NodeKind.CELL)
        n2 = hg.add_node("c2", NodeKind.CELL)
        net = hg.add_net("n")
        hg.connect_output(n1, net)
        hg.connect_output(n2, net)
        n1.supports = [()]
        n2.supports = [()]
        with pytest.raises(ValueError, match="drivers"):
            hg.check()

    def test_check_rejects_bad_support(self):
        hg = Hypergraph("t")
        node = hg.add_node("c", NodeKind.CELL)
        net = hg.add_net("n")
        hg.connect_output(node, net)
        node.supports = [(5,)]
        with pytest.raises(ValueError, match="out of range"):
            hg.check()

    def test_check_rejects_cell_without_outputs(self):
        hg = Hypergraph("t")
        hg.add_node("c", NodeKind.CELL)
        with pytest.raises(ValueError, match="no outputs"):
            hg.check()


class TestBuild:
    def test_with_terminals(self, small_mapped):
        hg = build_hypergraph(small_mapped, include_terminals=True)
        assert hg.n_cells == small_mapped.n_cells
        assert hg.n_terminals > 0
        hg.check()

    def test_without_terminals(self, small_mapped):
        hg = build_hypergraph(small_mapped, include_terminals=False)
        assert hg.n_cells == small_mapped.n_cells
        assert hg.n_terminals == 0
        # every kept (non-dead) net has >= 2 cell pins
        for net in hg.nets:
            if not net.name.startswith("__dead"):
                assert len(net.pins) >= 2

    def test_terminal_counts(self, small_mapped):
        hg = build_hypergraph(small_mapped, include_terminals=True)
        pis = [n for n in hg.nodes if n.kind is NodeKind.PI]
        pos = [n for n in hg.nodes if n.kind is NodeKind.PO]
        assert len(pos) == len(small_mapped.primary_outputs)
        assert len(pis) <= len(small_mapped.primary_inputs)

    def test_supports_carried_over(self, small_mapped):
        hg = build_hypergraph(small_mapped, include_terminals=True)
        for node in hg.nodes:
            if node.is_cell:
                assert len(node.supports) == node.n_outputs
                for sup in node.supports:
                    for pin in sup:
                        assert 0 <= pin < node.n_inputs

    def test_supports_survive_pruned_build(self, small_mapped):
        hg = build_hypergraph(small_mapped, include_terminals=False)
        multi = [n for n in hg.nodes if n.is_cell and n.n_outputs == 2]
        # At least one multi-output cell must keep a non-trivial support.
        assert any(any(len(s) > 0 for s in n.supports) for n in multi)

    def test_cell_pin_structure_matches(self, tiny_netlist):
        mapped = technology_map(tiny_netlist)
        hg = build_hypergraph(mapped)
        by_name = {n.name: n for n in hg.nodes if n.is_cell}
        for cell in mapped.cells:
            node = by_name[cell.name]
            assert node.n_outputs == len(cell.outputs)


class TestNodeWeights:
    def test_default_weight(self):
        hg = Hypergraph("w")
        node = hg.add_node("c", NodeKind.CELL)
        assert node.weight == 1
        assert node.clb_weight == 1

    def test_custom_weight(self):
        hg = Hypergraph("w")
        node = hg.add_node("c", NodeKind.CELL)
        node.weight = 7
        assert node.clb_weight == 7

    def test_terminal_weight_ignored(self):
        hg = Hypergraph("w")
        node = hg.add_node("p", NodeKind.PI)
        node.weight = 7
        assert node.clb_weight == 0
        assert node.iob_weight == 1

    def test_total_weight(self, small_hg):
        assert small_hg.total_clb_weight() == small_hg.n_cells


class TestSlots:
    """Node and Net are slotted: tens of thousands of instances sit on the
    partitioners' traversal paths, so accidental ``__dict__`` growth (and
    the ad-hoc attributes it invites) must stay impossible."""

    def test_node_rejects_new_attributes(self):
        node = Node(index=0, name="n", kind=NodeKind.CELL)
        with pytest.raises(AttributeError):
            node.scratch = 1
        assert not hasattr(node, "__dict__")

    def test_net_rejects_new_attributes(self):
        net = Net(index=0, name="e")
        with pytest.raises(AttributeError):
            net.scratch = 1
        assert not hasattr(net, "__dict__")

    def test_declared_fields_still_writable(self):
        node = Node(index=0, name="n", kind=NodeKind.CELL)
        # The fields other modules legitimately assign post-construction
        # (clustering rewrites weight/supports, kway rewrites supports).
        node.weight = 5
        node.supports = [(0,)]
        assert node.clb_weight == 5
