"""The versioned request schema: round-trips, keys, shims and enums."""

import json
import warnings

import pytest

from repro import api
from repro.batch.manifest import (
    ManifestError,
    expand_manifest,
    requests_from_manifest,
)
from repro.cache.store import SolutionCache, cache_key, key_for_request, use_cache
from repro.obs.ledger import config_fingerprint, netlist_fingerprint, run_key
from repro.request import (
    REQUEST_SCHEMA_NAME,
    Algorithm,
    CachePolicy,
    MultilevelMode,
    PartitionRequest,
    RequestError,
    build_request,
    parse_threshold,
    threshold_json,
)

CIRCUIT = "s5378"
SCALE = 0.08


def quick_partition_request(**overrides):
    base = dict(circuit=CIRCUIT, scale=SCALE, seed=7, threshold=1, n_solutions=1)
    base.update(overrides)
    return build_request("partition", **base)


# ---------------------------------------------------------------------------
# JSON round-trips
# ---------------------------------------------------------------------------


def test_json_round_trip_partition():
    request = quick_partition_request(deadline=30.0, cache="use")
    clone = PartitionRequest.from_json(request.to_json())
    assert clone == request
    assert clone.to_json() == request.to_json()


def test_json_round_trip_bipartition():
    request = build_request(
        "bipartition", CIRCUIT, algorithm="fm", runs=3, threshold=0, seed=2
    )
    clone = PartitionRequest.from_json(request.to_json())
    assert clone == request
    assert clone.algorithm is Algorithm.FM


def test_json_document_shape_is_stable():
    doc = json.loads(quick_partition_request().to_json())
    assert doc["schema"] == REQUEST_SCHEMA_NAME
    assert doc["v"] == 1
    # Stable field order: schema header first, then identity fields.
    keys = list(doc)
    assert keys[0] == "schema" and keys[1] == "v"
    assert keys[2:5] == ["verb", "circuit", "scale"]


def test_inf_threshold_survives_json():
    request = quick_partition_request(threshold="inf")
    assert request.threshold == float("inf")
    doc = json.loads(request.to_json())
    assert doc["threshold"] == "inf"
    assert PartitionRequest.from_json(request.to_json()).threshold == float("inf")


def test_threshold_type_preserved():
    assert isinstance(parse_threshold(1), int)
    assert isinstance(parse_threshold(1.0), float)
    assert threshold_json(float("inf")) == "inf"
    with pytest.raises(RequestError):
        parse_threshold(True)
    with pytest.raises(RequestError):
        parse_threshold("nope")


def test_from_dict_rejects_unknown_and_wrong_schema():
    doc = quick_partition_request().to_dict()
    bad = dict(doc)
    bad["bogus_field"] = 1
    with pytest.raises(RequestError):
        PartitionRequest.from_dict(bad)
    wrong = dict(doc)
    wrong["schema"] = "other/1"
    with pytest.raises(RequestError):
        PartitionRequest.from_dict(wrong)
    with pytest.raises(RequestError):
        PartitionRequest.from_json("not json")


def test_request_validation():
    with pytest.raises(RequestError):
        build_request("frobnicate", CIRCUIT)
    with pytest.raises(RequestError):
        build_request("partition", "")
    with pytest.raises(RequestError):
        build_request("partition", CIRCUIT, algorithm="quantum")
    with pytest.raises(RequestError):
        build_request("partition", CIRCUIT, nonsense_knob=3)


# ---------------------------------------------------------------------------
# Cache-key / ledger identity
# ---------------------------------------------------------------------------


def test_cache_key_matches_ledger_run_key():
    request = quick_partition_request()
    mapped = api.map(CIRCUIT, scale=SCALE, seed=request.mapping_seed).solution
    use_ml = request.resolve_multilevel(mapped.n_cells)
    expected = run_key(
        netlist_fingerprint(mapped),
        config_fingerprint(request.config(use_ml)),
        request.seed,
    )
    assert request.cache_key(mapped) == expected
    assert key_for_request(mapped, request) == expected
    assert cache_key(mapped, request.config(use_ml), request.seed) == expected


def test_cache_key_stable_across_round_trip():
    request = quick_partition_request()
    mapped = api.map(CIRCUIT, scale=SCALE, seed=request.mapping_seed).solution
    clone = PartitionRequest.from_json(request.to_json())
    assert clone.cache_key(mapped) == request.cache_key(mapped)


def test_execution_fields_do_not_move_the_key():
    request = quick_partition_request()
    tweaked = quick_partition_request(cache="refresh", jobs=4)
    mapped = api.map(CIRCUIT, scale=SCALE, seed=request.mapping_seed).solution
    assert tweaked.cache_key(mapped) == request.cache_key(mapped)


def test_int_vs_float_threshold_changes_the_key():
    mapped = api.map(CIRCUIT, scale=SCALE, seed=1994).solution
    a = quick_partition_request(threshold=1)
    b = quick_partition_request(threshold=1.0)
    assert a.cache_key(mapped) != b.cache_key(mapped)


# ---------------------------------------------------------------------------
# Enum shims
# ---------------------------------------------------------------------------


def test_multilevel_bool_shim_warns():
    with pytest.deprecated_call():
        mode = MultilevelMode.coerce(True, warn=True)
    assert mode is MultilevelMode.ON and mode.tri is True
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert MultilevelMode.coerce(None) is MultilevelMode.AUTO
        assert MultilevelMode.coerce("off").tri is False
    with pytest.raises(RequestError):
        MultilevelMode.coerce("sideways")


def test_cache_policy_coercion_message():
    assert CachePolicy.coerce("use") is CachePolicy.USE
    with pytest.raises(ValueError, match="is not a cache policy"):
        CachePolicy.coerce("bogus")


def test_legacy_kwarg_shim_warns_and_matches(tmp_path):
    request = quick_partition_request()
    with use_cache(SolutionCache(str(tmp_path / "cache"))):
        via_request = api.run_request(request, cache="refresh")
        with pytest.deprecated_call():
            via_kwargs = api.partition(
                CIRCUIT,
                scale=SCALE,
                seed=7,
                threshold=1,
                n_solutions=1,
                multilevel=False,
                cache="use",
            )
    assert via_kwargs.cache_info.get("status") == "hit"
    assert via_kwargs.solution.cost.total_cost == via_request.solution.cost.total_cost
    assert (
        json.dumps(via_kwargs.to_dict()["solution"], sort_keys=True)
        == json.dumps(via_request.to_dict()["solution"], sort_keys=True)
    )


# ---------------------------------------------------------------------------
# RunResult serialization
# ---------------------------------------------------------------------------


def test_run_result_round_trip(tmp_path):
    with use_cache(SolutionCache(str(tmp_path / "cache"))):
        result = api.run_request(quick_partition_request(), cache="refresh")
    doc = result.to_dict()
    assert doc["schema"] == api.RESULT_SCHEMA_NAME
    assert list(doc)[:2] == ["schema", "v"]
    clone = api.RunResult.from_json(result.to_json())
    assert clone.kind == result.kind
    assert clone.elapsed_seconds == result.elapsed_seconds
    assert clone.solution.cost.total_cost == result.solution.cost.total_cost
    assert clone.to_json() == result.to_json()
    with pytest.raises(ValueError):
        api.RunResult.from_dict({"schema": "other/1", "v": 1})


# ---------------------------------------------------------------------------
# Batch-manifest bridge
# ---------------------------------------------------------------------------


def _manifest():
    return {
        "schema": "repro-batch-manifest/1",
        "name": "request-bridge",
        "defaults": {"scale": SCALE, "threshold": 1, "n_solutions": 1},
        "jobs": [
            {"verb": "partition", "circuit": CIRCUIT, "seeds": [1, 2]},
            {"verb": "bipartition", "circuit": CIRCUIT, "runs": 2},
        ],
    }


def test_requests_from_manifest():
    requests = requests_from_manifest(_manifest())
    assert len(requests) == 3
    assert {r.verb for r in requests} == {"partition", "bipartition"}
    assert requests[0].seed == 1 and requests[1].seed == 2
    # params() closes the loop: request -> manifest params -> request.
    jobs = expand_manifest(_manifest())
    again = jobs[0].to_request()
    assert again == requests[0]


def test_manifest_bad_params_surface_as_manifest_error():
    manifest = _manifest()
    manifest["jobs"][0]["threshold"] = "sideways"
    with pytest.raises(ManifestError):
        requests_from_manifest(manifest)
