"""Tests for binary adjacency vectors (the paper's three operations)."""

import pytest

from repro.replication.adjacency import norm, vand, vector, vnot, vor


def test_vector_validation():
    assert vector([1, 0, 1]) == (1, 0, 1)
    with pytest.raises(ValueError):
        vector([2, 0])


def test_complementation_paper_example():
    # Section II: not([1,1,0]) = [0,0,1].
    assert vnot((1, 1, 0)) == (0, 0, 1)


def test_and_paper_example():
    # Section II: [1,1,0,...] AND [0,0,0,1,1] -> product vector.
    a_x = (1, 1, 1, 1, 0)
    a_x2 = (0, 0, 0, 1, 1)
    assert vand(a_x, a_x2) == (0, 0, 0, 1, 0)


def test_norm_paper_example():
    # Section II: |A_X2| for [0,0,0,1,1] equals 2.
    assert norm((0, 0, 0, 1, 1)) == 2


def test_and_multiple():
    assert vand((1, 1, 1), (1, 1, 0), (1, 0, 1)) == (1, 0, 0)


def test_or():
    assert vor((1, 0, 0), (0, 0, 1)) == (1, 0, 1)


def test_double_complement_identity():
    v = (1, 0, 1, 1, 0)
    assert vnot(vnot(v)) == v


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        vand((1, 0), (1, 0, 1))
    with pytest.raises(ValueError):
        vor((1,), (1, 0))


def test_empty_operations_rejected():
    with pytest.raises(ValueError):
        vand()
    with pytest.raises(ValueError):
        vor()


def test_de_morgan():
    a = (1, 0, 1, 0)
    b = (1, 1, 0, 0)
    assert vnot(vand(a, b)) == vor(vnot(a), vnot(b))


def test_norm_of_complement():
    v = (1, 0, 1, 1, 0)
    assert norm(v) + norm(vnot(v)) == len(v)


def test_and_idempotent():
    v = (1, 0, 1)
    assert vand(v, v) == v


def test_or_with_zero_identity():
    v = (1, 0, 1)
    assert vor(v, (0, 0, 0)) == v


def test_and_absorbs_zero():
    assert vand((1, 1, 1), (0, 0, 0)) == (0, 0, 0)
