"""Perf harness: regression gate coverage semantics and bench history."""

import json

from repro.perf.bench import (
    HISTORY_SCHEMA_NAME,
    append_history,
    check_regressions,
    default_history_path,
    default_report_path,
    history_entry,
    make_report,
    speedup,
    write_report,
)


def _section(ref, fast):
    return {
        "ref_seconds": ref,
        "fast_seconds": fast,
        "speedup": round(speedup(ref, fast), 3),
    }


def _report(scale=0.25, **circuits):
    return make_report(scale, circuits)


BASE = _report(
    c3540={"kway": _section(2.0, 0.5), "fm": _section(1.0, 0.25)},
    s5378={"kway": _section(4.0, 1.0)},
)


def test_gate_passes_when_ratios_hold():
    current = _report(
        c3540={"kway": _section(1.0, 0.25), "fm": _section(0.5, 0.125)},
        s5378={"kway": _section(2.0, 0.5)},
    )
    assert check_regressions(current, BASE) == []


def test_gate_flags_ratio_regression():
    current = _report(
        c3540={"kway": _section(2.0, 1.5), "fm": _section(1.0, 0.25)},
        s5378={"kway": _section(4.0, 1.0)},
    )
    problems = check_regressions(current, BASE)
    assert len(problems) == 1 and "c3540/kway" in problems[0]


def test_missing_circuit_is_a_coverage_violation():
    current = _report(
        c3540={"kway": _section(2.0, 0.5), "fm": _section(1.0, 0.25)},
    )
    problems = check_regressions(current, BASE)
    assert len(problems) == 1
    assert "s5378" in problems[0] and "missing" in problems[0]


def test_missing_section_is_a_coverage_violation():
    current = _report(
        c3540={"kway": _section(2.0, 0.5)},  # fm section dropped
        s5378={"kway": _section(4.0, 1.0)},
    )
    problems = check_regressions(current, BASE)
    assert len(problems) == 1
    assert "c3540/fm" in problems[0] and "missing" in problems[0]


def test_extra_current_circuit_is_fine():
    current = _report(
        c3540={"kway": _section(2.0, 0.5), "fm": _section(1.0, 0.25)},
        s5378={"kway": _section(4.0, 1.0)},
        s9234={"kway": _section(9.0, 1.0)},
    )
    assert check_regressions(current, BASE) == []


def test_scale_mismatch_short_circuits():
    current = _report(scale=0.5)
    problems = check_regressions(current, BASE)
    assert len(problems) == 1 and "scale mismatch" in problems[0]


def test_sub_10ms_sections_are_skipped():
    base = _report(tiny={"kway": _section(0.005, 0.001)})
    current = _report(tiny={"kway": _section(0.005, 0.004)})
    assert check_regressions(current, base) == []


# ---------------------------------------------------------------------------
# History trajectory
# ---------------------------------------------------------------------------


def test_history_entry_distills_report():
    entry = history_entry(BASE)
    assert entry["schema"] == HISTORY_SCHEMA_NAME
    assert entry["scale"] == 0.25
    assert entry["iso_ts"].endswith("Z") and entry["ts"] > 0
    kway = entry["circuits"]["c3540"]["kway"]
    assert kway["speedup"] == 4.0
    assert set(entry["circuits"]) == {"c3540", "s5378"}


def test_append_history_round_trip(tmp_path):
    path = tmp_path / "history.jsonl"
    append_history(str(path), BASE)
    append_history(str(path), BASE)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    for line in lines:
        entry = json.loads(line)
        assert entry["schema"] == HISTORY_SCHEMA_NAME


def test_write_report_appends_history_when_asked(tmp_path):
    report_path = tmp_path / "report.json"
    history_path = tmp_path / "history.jsonl"
    write_report(str(report_path), BASE)
    assert not history_path.exists()
    write_report(str(report_path), BASE, history_path=str(history_path))
    write_report(str(report_path), BASE, history_path=str(history_path))
    assert len(history_path.read_text().strip().splitlines()) == 2
    # the main report itself is overwritten, not appended
    assert json.load(open(report_path))["scale"] == 0.25


def test_default_paths_share_the_repo_root():
    import os

    assert os.path.dirname(default_report_path()) == os.path.dirname(
        default_history_path()
    )
    assert default_history_path().endswith("BENCH_partition_history.jsonl")


def test_history_git_stamp_falls_back_to_unknown(monkeypatch, tmp_path):
    """No git metadata (tarball checkout, bare CI cache) must not crash
    or write null -- the trajectory line says "unknown" instead."""
    import repro.obs.ledger as obs_ledger

    monkeypatch.setattr(obs_ledger, "git_revision", lambda *a, **k: None)
    entry = history_entry(BASE)
    assert entry["git_rev"] == "unknown"

    def boom(*a, **k):
        raise OSError("git exploded")

    monkeypatch.setattr(obs_ledger, "git_revision", boom)
    path = tmp_path / "history.jsonl"
    appended = append_history(str(path), BASE)
    assert appended["git_rev"] == "unknown"
    assert json.loads(path.read_text())["git_rev"] == "unknown"
