"""Equivalence of the optimized partitioning core with frozen behavior.

The delta-gain engines in :mod:`repro.partition.fm` and
:mod:`repro.partition.fm_replication` are pure performance rewrites: for
every hypergraph, configuration and seed they must reproduce the
*reference* engines (:mod:`repro.partition.reference`, a verbatim copy of
the pre-optimization code) bit for bit -- same assignment, same cut, same
per-pass gains, same replica set.

Three layers of enforcement:

* **golden replay** -- ``tests/golden/fm_golden.json`` froze the reference
  engines' outputs on a deterministic hypergraph family; the optimized
  engines must match every case;
* **randomized equivalence** -- fresh random hypergraphs (disjoint from
  the golden family) are run through both engines and compared in full;
* **end-to-end parity** -- the k-way carver must produce the identical
  solution with ``engine="fast"`` and ``engine="reference"``, and
  ``--jobs N`` must pick the same winner as ``--jobs 1``.
"""

import json
import random

import pytest

from repro.partition.fm import FMConfig, fm_bipartition
from repro.partition.fm import best_of_runs as fm_best_of_runs
from repro.partition.fm_replication import (
    ReplicationConfig,
    replication_bipartition,
)
from repro.partition.fm_replication import best_of_runs as repl_best_of_runs
from repro.partition.reference import (
    reference_fm_bipartition,
    reference_replication_bipartition,
)
from tests.golden.regenerate import (
    GOLDEN_PATH,
    case_hypergraph,
    fm_case_configs,
    replication_case_configs,
)
from tests.test_gain_model import _random_hypergraph

with open(GOLDEN_PATH) as fh:
    GOLDEN = json.load(fh)

CASE_IDS = [record["case_seed"] for record in GOLDEN["cases"]]


def _replicas_as_lists(replicas):
    return sorted([v, s, o] for v, (s, o) in replicas.items())


# ---------------------------------------------------------------------------
# Golden replay
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case_seed", CASE_IDS)
def test_fm_matches_golden(case_seed):
    record = GOLDEN["cases"][case_seed]
    assert record["case_seed"] == case_seed
    hg = case_hypergraph(case_seed)
    total = hg.total_clb_weight()
    for label, config in fm_case_configs(case_seed, total).items():
        result = fm_bipartition(hg, config)
        expect = record["fm"][label]
        assert result.assignment == expect["assignment"], label
        assert result.cut_size == expect["cut_size"], label
        assert result.passes == expect["passes"], label


@pytest.mark.parametrize("case_seed", CASE_IDS)
def test_replication_matches_golden(case_seed):
    record = GOLDEN["cases"][case_seed]
    hg = case_hypergraph(case_seed)
    total = hg.total_clb_weight()
    for label, config in replication_case_configs(case_seed, total).items():
        result = replication_bipartition(hg, config)
        expect = record["replication"][label]
        assert result.sides == expect["sides"], label
        assert _replicas_as_lists(result.replicas) == expect["replicas"], label
        assert result.cut_size == expect["cut_size"], label


# ---------------------------------------------------------------------------
# Randomized equivalence against the reference engines
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case_seed", range(100, 112))
def test_fm_random_equivalence(case_seed):
    hg = _random_hypergraph(random.Random(case_seed * 7919 + 13))
    total = hg.total_clb_weight()
    for config in fm_case_configs(case_seed, total).values():
        fast = fm_bipartition(hg, config)
        ref = reference_fm_bipartition(hg, config)
        assert fast.assignment == ref.assignment
        assert fast.cut_size == ref.cut_size
        assert fast.initial_cut == ref.initial_cut
        assert fast.pass_gains == ref.pass_gains


@pytest.mark.parametrize("case_seed", range(100, 110))
def test_replication_random_equivalence(case_seed):
    hg = _random_hypergraph(random.Random(case_seed * 7919 + 13))
    total = hg.total_clb_weight()
    for config in replication_case_configs(case_seed, total).values():
        fast = replication_bipartition(hg, config)
        ref = reference_replication_bipartition(hg, config)
        assert fast.sides == ref.sides
        assert fast.replicas == ref.replicas
        assert fast.cut_size == ref.cut_size
        assert fast.pass_gains == ref.pass_gains


# ---------------------------------------------------------------------------
# End-to-end parity: k-way carver and parallel fan-out
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def mapped():
    from repro.netlist.benchmarks import benchmark_circuit
    from repro.techmap.mapped import technology_map

    return technology_map(benchmark_circuit("s5378", scale=0.08, seed=11))


def _solution_shape(solution):
    return [
        (block.device.name, sorted(block.cells), sorted(block.pads))
        for block in solution.blocks
    ]


def test_kway_fast_matches_reference_engine(mapped):
    from repro.partition.kway import KWayConfig, partition_heterogeneous
    from tests.test_kway import TINY_LIBRARY

    base = dict(library=TINY_LIBRARY, threshold=1, seed=5, seeds_per_carve=2)
    fast = partition_heterogeneous(mapped, KWayConfig(engine="fast", **base))
    ref = partition_heterogeneous(mapped, KWayConfig(engine="reference", **base))
    assert _solution_shape(fast) == _solution_shape(ref)
    assert fast.cost.total_cost == ref.cost.total_cost


def test_parallel_fm_same_winner_as_sequential():
    hg = _random_hypergraph(random.Random(321))
    base = FMConfig(seed=9)
    seq_best, seq_cuts = fm_best_of_runs(hg, runs=4, base_config=base, jobs=1)
    par_best, par_cuts = fm_best_of_runs(hg, runs=4, base_config=base, jobs=2)
    assert par_cuts == seq_cuts
    assert par_best.assignment == seq_best.assignment
    assert par_best.cut_size == seq_best.cut_size


def test_parallel_replication_same_winner_as_sequential():
    hg = _random_hypergraph(random.Random(654))
    base = ReplicationConfig(seed=4, threshold=1)
    seq_best, seq_cuts = repl_best_of_runs(hg, runs=3, base_config=base, jobs=1)
    par_best, par_cuts = repl_best_of_runs(hg, runs=3, base_config=base, jobs=2)
    assert par_cuts == seq_cuts
    assert par_best.sides == seq_best.sides
    assert par_best.replicas == seq_best.replicas
    assert par_best.cut_size == seq_best.cut_size
