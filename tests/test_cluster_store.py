"""Replicated cache: quorums, hinted handoff, read repair, anti-entropy."""

import os

import pytest

from repro.cache.store import build_entry
from repro.cluster.ring import HashRing
from repro.cluster.store import (
    QuorumError,
    ReplicaNode,
    ReplicatedCache,
    RpcTimeout,
)
from repro.robust import faults


def make_entry(key, seed=1):
    """A schema-valid synthetic entry (no solver run needed)."""
    return build_entry(
        kind="partition",
        key=key,
        circuit="s5378",
        netlist_hash="h" * 16,
        config={"threshold": 1, "variant": seed},
        seed=seed,
        solution={"value": seed},
        elapsed_seconds=1.5,
    )


KEY_A = "a" * 40
KEY_B = "b" * 40
KEY_C = "c" * 40


@pytest.fixture
def nodes(tmp_path):
    return [
        ReplicaNode(f"node-{i}", str(tmp_path / f"node-{i}")) for i in range(3)
    ]


@pytest.fixture
def cache(nodes, tmp_path):
    return ReplicatedCache(nodes, replication=3, root=str(tmp_path))


# ---------------------------------------------------------------------------
# Healthy-cluster basics
# ---------------------------------------------------------------------------


def test_put_replicates_to_every_preference_node(cache, nodes):
    entry = make_entry(KEY_A)
    path = cache.put(entry)
    assert os.path.exists(path)
    for node in nodes:
        assert node.store.get(KEY_A) is not None
    got = cache.get(KEY_A)
    assert got is not None and got["seed"] == 1
    assert cache.path_for(KEY_A).startswith(
        cache.by_name[cache.ring.nodes_for(KEY_A, 1)[0]].root
    )


def test_partial_replication_places_rf_copies(nodes, tmp_path):
    cache = ReplicatedCache(nodes, replication=2, root=str(tmp_path))
    cache.put(make_entry(KEY_A))
    holders = [n.name for n in nodes if n.store.get(KEY_A) is not None]
    assert sorted(holders) == sorted(cache.ring.nodes_for(KEY_A, 2))


def test_stats_and_entries_aggregate_replicas(cache):
    cache.put(make_entry(KEY_A))
    cache.put(make_entry(KEY_B, seed=2))
    stats = cache.stats()
    assert stats["entries"] == 2  # distinct keys
    assert stats["replicas"] == 6  # 2 keys x RF 3
    assert len(cache.entries()) == 6


def test_delete_removes_all_replicas_and_hints(cache, nodes):
    cache.put(make_entry(KEY_A))
    nodes[0].store_hint("node-1", make_entry(KEY_A))
    assert cache.delete(KEY_A) is True
    assert all(n.store.get(KEY_A) is None for n in nodes)
    assert nodes[0].pending_hints() in ({}, {"node-1": 0})
    assert cache.delete(KEY_A) is False


def test_put_validates_before_replicating(cache):
    with pytest.raises(ValueError):
        cache.put({"key": KEY_A})  # malformed: missing schema fields


def test_quorum_config_validated(nodes, tmp_path):
    with pytest.raises(Exception):
        ReplicatedCache(nodes, replication=3, write_quorum=4, root=str(tmp_path))
    with pytest.raises(Exception):
        ReplicatedCache([], root=str(tmp_path))


# ---------------------------------------------------------------------------
# Degraded writes: hinted handoff and quorums
# ---------------------------------------------------------------------------


def test_downed_replica_gets_hint_and_catches_up(cache, nodes):
    down = cache.by_name[cache.ring.nodes_for(KEY_A, 3)[2]]
    down.mark_down()
    cache.put(make_entry(KEY_A))
    assert down.store.get(KEY_A) is None
    # Full replication: the hint is co-located with a live real copy.
    holders = [n for n in nodes if n.pending_hints().get(down.name)]
    assert len(holders) == 1
    # Delivery is a no-op while the target is still down.
    assert cache.deliver_hints(down.name) == 0
    down.mark_up()
    assert cache.deliver_hints(down.name) == 1
    assert down.store.get(KEY_A) is not None
    assert holders[0].pending_hints().get(down.name, 0) == 0  # hint consumed


def test_sloppy_quorum_substitute_takes_readable_copy(nodes, tmp_path):
    cache = ReplicatedCache(nodes, replication=2, root=str(tmp_path))
    pref = cache.ring.nodes_for(KEY_A, 2)
    substitute = cache.ring.successor(KEY_A, exclude=pref)
    cache.by_name[pref[0]].mark_down()
    cache.put(make_entry(KEY_A))
    # The non-preference substitute holds a real copy plus the hint.
    assert cache.by_name[substitute].store.get(KEY_A) is not None
    assert cache.by_name[substitute].pending_hints() == {pref[0]: 1}


def test_write_quorum_failure_raises(nodes, tmp_path):
    cache = ReplicatedCache(nodes, replication=3, write_quorum=1, root=str(tmp_path))
    for node in nodes:
        node.mark_down()
    with pytest.raises(QuorumError):
        cache.put(make_entry(KEY_A))


def test_write_quorum_counts_hinted_acks(nodes, tmp_path):
    cache = ReplicatedCache(
        nodes, replication=2, write_quorum=2, root=str(tmp_path)
    )
    pref = cache.ring.nodes_for(KEY_A, 2)
    cache.by_name[pref[1]].mark_down()
    cache.put(make_entry(KEY_A))  # 1 real + 1 hinted substitute ack = W


def test_rpc_timeout_degrades_write_to_hint(cache, nodes):
    pref = cache.ring.nodes_for(KEY_A, 3)
    with faults.inject(
        faults.Fault(
            "rpc.timeout",
            error=RpcTimeout,
            match={"node": pref[1], "op": "put"},
        )
    ):
        cache.put(make_entry(KEY_A))
    assert cache.by_name[pref[0]].store.get(KEY_A) is not None
    assert cache.by_name[pref[1]].store.get(KEY_A) is None
    hinted = [n for n in nodes if n.pending_hints().get(pref[1])]
    assert len(hinted) == 1
    assert cache.deliver_hints(pref[1]) == 1
    assert cache.by_name[pref[1]].store.get(KEY_A) is not None


# ---------------------------------------------------------------------------
# Degraded reads: quorums and read repair
# ---------------------------------------------------------------------------


def test_read_skips_downed_nodes(cache, nodes):
    cache.put(make_entry(KEY_A))
    pref = cache.ring.nodes_for(KEY_A, 3)
    cache.by_name[pref[0]].mark_down()
    cache.by_name[pref[1]].mark_down()
    got = cache.get(KEY_A)
    assert got is not None and got["key"] == KEY_A


def test_read_quorum_miss_when_not_enough_replicas(nodes, tmp_path):
    cache = ReplicatedCache(
        nodes, replication=3, read_quorum=2, root=str(tmp_path)
    )
    cache.put(make_entry(KEY_A))
    pref = cache.ring.nodes_for(KEY_A, 3)
    cache.by_name[pref[0]].mark_down()
    cache.by_name[pref[1]].mark_down()
    assert cache.get(KEY_A) is None  # 1 live replica < R=2: a safe miss


def test_read_repair_backfills_live_gap(cache, nodes):
    cache.put(make_entry(KEY_A))
    pref = cache.ring.nodes_for(KEY_A, 3)
    # First preference node lost its copy but is up: the read finds the
    # entry downstream and repairs the gap in passing.
    cache.by_name[pref[0]].store.delete(KEY_A)
    assert cache.get(KEY_A) is not None
    assert cache.by_name[pref[0]].store.get(KEY_A) is not None


# ---------------------------------------------------------------------------
# Anti-entropy
# ---------------------------------------------------------------------------


def test_anti_entropy_repairs_missing_and_stale_copies(cache, nodes):
    cache.put(make_entry(KEY_A))
    cache.put(make_entry(KEY_B, seed=2))
    cache.put(make_entry(KEY_C, seed=3))
    assert cache.anti_entropy() == 0  # already converged: fast path

    nodes[1].store.delete(KEY_A)  # lost copy
    stale = make_entry(KEY_B, seed=2)
    stale["solution"] = {"value": "stale"}
    stale["created_ts"] = 0.0  # older than the real write
    nodes[2].store.put(stale)
    repaired = cache.anti_entropy()
    assert repaired == 2
    assert nodes[1].store.get(KEY_A) is not None
    assert nodes[2].store.get(KEY_B)["solution"] == {"value": 2}
    roots = {d["root"] for d in cache.digests().values()}
    assert len(roots) == 1


def test_anti_entropy_skips_downed_nodes(cache, nodes):
    cache.put(make_entry(KEY_A))
    nodes[1].store.delete(KEY_A)
    nodes[1].mark_down()
    cache.anti_entropy()
    assert nodes[1].store.get(KEY_A) is None  # untouched while down
    nodes[1].mark_up()
    assert cache.anti_entropy() == 1
    assert nodes[1].store.get(KEY_A) is not None


def test_digests_report_per_node_trees(cache, nodes):
    cache.put(make_entry(KEY_A))
    digests = cache.digests()
    assert set(digests) == {n.name for n in nodes}
    assert all(d["entries"] == 1 for d in digests.values())
