"""Batch layer: manifests, dedupe/ordering, scheduling, repeatability."""

import json

import pytest

from repro.batch.manifest import (
    MANIFEST_SCHEMA_NAME,
    ManifestError,
    expand_manifest,
    load_manifest,
    parse_threshold,
    threshold_label,
)
from repro.batch.scheduler import (
    check_reports,
    job_identity,
    order_jobs,
    run_batch,
)
from repro.experiments import tables4to7
from repro.robust.budget import Budget
from repro.robust.errors import ConfigError

CIRCUIT = "s5378"
SCALE = 0.1


def _manifest(jobs, defaults=None, name="t"):
    doc = {"schema": MANIFEST_SCHEMA_NAME, "name": name, "jobs": jobs}
    if defaults:
        doc["defaults"] = defaults
    return doc


SMALL_DEFAULTS = {
    "verb": "partition",
    "scale": SCALE,
    "seed": 1994,
    "n_solutions": 1,
    "seeds_per_carve": 2,
    "devices_per_carve": 2,
}


# ---------------------------------------------------------------------------
# Manifest expansion and validation
# ---------------------------------------------------------------------------


def test_expand_seeds_and_defaults():
    jobs = expand_manifest(
        _manifest(
            [{"circuit": CIRCUIT, "seeds": [1, 2], "threshold": "inf"}],
            defaults=SMALL_DEFAULTS,
        )
    )
    assert [j.seed for j in jobs] == [1, 2]
    assert all(j.params["threshold"] == float("inf") for j in jobs)
    assert all(j.params["scale"] == SCALE for j in jobs)
    assert jobs[0].job_id != jobs[1].job_id
    assert jobs[0].netlist_id != jobs[1].netlist_id  # mapping seed differs


def test_expand_rejects_malformed_manifests():
    with pytest.raises(ManifestError):
        expand_manifest({"schema": "wrong/1", "jobs": [{}]})
    with pytest.raises(ManifestError):
        expand_manifest(_manifest([]))
    with pytest.raises(ManifestError):
        expand_manifest(_manifest([{"circuit": CIRCUIT, "verb": "solve"}]))
    with pytest.raises(ManifestError):
        expand_manifest(_manifest([{"circuit": ""}]))
    with pytest.raises(ManifestError):
        expand_manifest(_manifest([{"circuit": CIRCUIT, "bogus_knob": 3}]))
    with pytest.raises(ManifestError):
        expand_manifest(
            _manifest([{"circuit": CIRCUIT, "seed": 1, "seeds": [1, 2]}])
        )


def test_mixed_verb_defaults_are_filtered_per_verb():
    # n_solutions only exists for partition; a shared defaults block must
    # not break the bipartition job.
    jobs = expand_manifest(
        _manifest(
            [
                {"verb": "partition", "circuit": CIRCUIT},
                {"verb": "bipartition", "circuit": CIRCUIT, "runs": 2},
            ],
            defaults={"n_solutions": 1, "scale": SCALE},
        )
    )
    assert jobs[0].params["n_solutions"] == 1
    assert "n_solutions" not in jobs[1].params
    with pytest.raises(ManifestError):
        expand_manifest(
            _manifest([{"circuit": CIRCUIT}], defaults={"not_a_knob": 1})
        )


def test_threshold_parsing_and_labels():
    assert parse_threshold("inf") == float("inf")
    assert parse_threshold(2) == 2
    assert threshold_label(float("inf")) == "inf"
    assert threshold_label(2.0) == "2"
    for bad in ("two", True, None):
        with pytest.raises(ManifestError):
            parse_threshold(bad)


def test_duplicate_job_ids_get_suffixes():
    jobs = expand_manifest(
        _manifest(
            [{"circuit": CIRCUIT}, {"circuit": CIRCUIT}], defaults=SMALL_DEFAULTS
        )
    )
    assert jobs[0].job_id != jobs[1].job_id
    assert jobs[1].job_id.endswith("#1")


def test_load_manifest_validates_eagerly(tmp_path):
    path = tmp_path / "m.json"
    path.write_text(json.dumps(_manifest([{"circuit": CIRCUIT, "nope": 1}])))
    with pytest.raises(ManifestError):
        load_manifest(str(path))
    with pytest.raises(ManifestError):
        load_manifest(str(tmp_path / "missing.json"))


# ---------------------------------------------------------------------------
# Dedupe and dispatch ordering
# ---------------------------------------------------------------------------


def test_order_jobs_dedupes_and_groups_by_netlist():
    jobs = expand_manifest(
        _manifest(
            [
                {"circuit": CIRCUIT, "threshold": 1},
                {"circuit": "c3540", "threshold": 1, "priority": 9},
                {"circuit": CIRCUIT, "threshold": 2},
                {"circuit": CIRCUIT, "threshold": 1},  # duplicate of job 0
            ],
            defaults=SMALL_DEFAULTS,
        )
    )
    primaries, duplicates = order_jobs(jobs)
    assert len(primaries) == 3 and len(duplicates) == 1
    assert job_identity(duplicates[0]) == job_identity(jobs[0])
    # The priority-9 circuit leads; the two s5378 jobs stay adjacent.
    assert [j.circuit for j in primaries] == ["c3540", CIRCUIT, CIRCUIT]


def test_job_identity_ignores_declaration_noise():
    a, b = expand_manifest(
        _manifest(
            [
                {"circuit": CIRCUIT, "threshold": 1},
                {"circuit": CIRCUIT, "threshold": 1, "priority": 5},
            ],
            defaults=SMALL_DEFAULTS,
        )
    )
    assert job_identity(a) == job_identity(b)  # priority is not identity


# ---------------------------------------------------------------------------
# run_batch: sequential path, dedupe hits, warm repeatability
# ---------------------------------------------------------------------------


@pytest.fixture
def sweep_manifest_small():
    return tables4to7.sweep_manifest(
        circuits=[CIRCUIT],
        scale=SCALE,
        thresholds=[float("inf"), 1],
        n_solutions=1,
        seeds_per_carve=2,
        devices_per_carve=2,
    )


def test_run_batch_cold_then_warm_is_bit_identical(sweep_manifest_small, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = run_batch(sweep_manifest_small, cache="use", cache_dir=cache_dir)
    warm = run_batch(sweep_manifest_small, cache="use", cache_dir=cache_dir)
    assert cold.counts("status") == {"ok": 2}
    assert cold.hit_rate == 0.0
    assert warm.hit_rate == 1.0
    assert warm.saved_seconds > 0.0
    assert check_reports(cold.as_dict(), warm.as_dict()) == []
    # The batch round-trips into table-builder input.
    data = tables4to7.reports_from_batch(warm)
    assert set(data) == {(CIRCUIT, float("inf")), (CIRCUIT, 1.0)}


def test_run_batch_duplicate_jobs_hit_in_run(tmp_path):
    manifest = _manifest(
        [{"circuit": CIRCUIT}, {"circuit": CIRCUIT}], defaults=SMALL_DEFAULTS
    )
    report = run_batch(manifest, cache="use", cache_dir=str(tmp_path / "c"))
    assert report.deduplicated == 1
    statuses = {o.job_id: o.cache_status for o in report.outcomes}
    assert sorted(statuses.values()) == ["hit", "miss"]
    # Outcomes come back in manifest order regardless of dispatch order.
    assert [o.job_id for o in report.outcomes] == [
        j.job_id for j in expand_manifest(manifest)
    ]


def test_run_batch_cache_off_solves_everything(tmp_path):
    manifest = _manifest(
        [{"circuit": CIRCUIT}, {"circuit": CIRCUIT}], defaults=SMALL_DEFAULTS
    )
    report = run_batch(manifest, cache="off", cache_dir=str(tmp_path / "c"))
    assert all(o.cache_status == "off" for o in report.outcomes)
    assert report.hit_rate == 0.0


def test_run_batch_expired_deadline_skips_everything(sweep_manifest_small, tmp_path):
    report = run_batch(
        sweep_manifest_small,
        cache="use",
        cache_dir=str(tmp_path / "c"),
        deadline=0.0,
    )
    assert report.counts("status") == {"skipped": 2}
    assert all(o.report is None for o in report.outcomes)
    assert report.hit_rate == 0.0


def test_run_batch_events_stream(sweep_manifest_small, tmp_path):
    events = []
    run_batch(
        sweep_manifest_small,
        cache="use",
        cache_dir=str(tmp_path / "c"),
        on_event=events.append,
    )
    names = [e["event"] for e in events]
    assert names.count("job.start") == 2
    assert names.count("job.done") == 2
    assert names[-1] == "batch.done"


def test_run_batch_failed_job_is_reported_not_raised(tmp_path):
    manifest = _manifest(
        [{"circuit": "no_such_circuit"}], defaults=SMALL_DEFAULTS
    )
    report = run_batch(manifest, cache="use", cache_dir=str(tmp_path / "c"))
    (outcome,) = report.outcomes
    assert outcome.status == "failed"
    assert "no_such_circuit" in outcome.error


def test_check_reports_flags_drift_and_low_hit_rate(sweep_manifest_small, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = run_batch(sweep_manifest_small, cache="use", cache_dir=cache_dir).as_dict()
    warm = run_batch(sweep_manifest_small, cache="use", cache_dir=cache_dir).as_dict()
    assert check_reports(cold, warm) == []
    # Cold-vs-cold fails the hit-rate gate.
    problems = check_reports(warm, cold, min_hit_rate=0.9)
    assert any("hit rate" in p for p in problems)
    # A flipped quality value fails the bit-identical gate, naming the job.
    drifted = json.loads(json.dumps(warm))
    drifted["stable_view"][0]["quality"]["total_cost"] = -1
    problems = check_reports(cold, drifted)
    assert any("results differ" in p for p in problems)
    assert check_reports({}, {}) == ["report missing cache.hit_rate",
                                     "report missing stable_view"]


def test_budget_share_splits_remaining_time():
    budget = Budget(10.0, clock=lambda: 0.0)
    assert budget.share(4) == pytest.approx(2.5)
    assert Budget.unlimited().share(3) is None
    with pytest.raises(ConfigError):
        budget.share(0)


# ---------------------------------------------------------------------------
# The process-pool path (kept tiny: one pool spin-up)
# ---------------------------------------------------------------------------


def test_run_batch_pool_matches_sequential(sweep_manifest_small, tmp_path):
    cache_dir = str(tmp_path / "cache")
    seq = run_batch(sweep_manifest_small, jobs=1, cache="use", cache_dir=cache_dir)
    pooled = run_batch(sweep_manifest_small, jobs=2, cache="use", cache_dir=cache_dir)
    assert pooled.workers == 2
    assert pooled.hit_rate == 1.0  # warm from the sequential run
    assert check_reports(seq.as_dict(), pooled.as_dict()) == []
