"""One end-to-end integration narrative: netlist to verified multi-FPGA plan.

Chains every stage of the reproduction on a single circuit and checks the
cross-stage invariants in one place: functional equivalence through
mapping, hypergraph consistency, replication-engine bookkeeping, k-way
solution verification and the cost model.
"""

import random

import pytest

from repro.hypergraph.build import build_hypergraph
from repro.hypergraph.metrics import cut_size
from repro.netlist.benchmarks import benchmark_circuit
from repro.netlist.transform import clean_netlist
from repro.netlist.validate import validate_netlist
from repro.partition.devices import Device, DeviceLibrary
from repro.partition.fm import FMConfig, fm_bipartition
from repro.partition.fm_replication import ReplicationConfig, replication_bipartition
from repro.partition.kway import KWayConfig, partition_heterogeneous
from repro.partition.verify import verify_solution
from repro.replication.potential import cell_distribution
from repro.techmap.mapped import technology_map

LIB = DeviceLibrary(
    [
        Device("T24", 24, 30, 12, util_upper=0.95),
        Device("T48", 48, 44, 21, util_upper=0.95),
        Device("T96", 96, 60, 38, util_upper=0.95),
    ]
)


@pytest.fixture(scope="module")
def pipeline():
    netlist = benchmark_circuit("s9234", scale=0.08, seed=11)
    cleaned = clean_netlist(netlist)
    mapped = technology_map(cleaned)
    hg_relaxed = build_hypergraph(mapped, include_terminals=False)
    return netlist, cleaned, mapped, hg_relaxed


def test_stage1_netlist_valid(pipeline):
    netlist, cleaned, _, _ = pipeline
    assert validate_netlist(cleaned, strict=False).ok
    rng = random.Random(0)
    vecs = [{pi: rng.randrange(2) for pi in netlist.inputs} for _ in range(5)]
    assert netlist.simulate(vecs) == cleaned.simulate(vecs)


def test_stage2_mapping_equivalent(pipeline):
    _, cleaned, mapped, _ = pipeline
    rng = random.Random(1)
    vecs = [{pi: rng.randrange(2) for pi in cleaned.inputs} for _ in range(5)]
    assert cleaned.simulate(vecs) == mapped.simulate(vecs)
    for cell in mapped.cells:
        assert 1 <= cell.n_outputs <= 2
        assert len(cell.inputs) <= 5


def test_stage3_replication_candidates_exist(pipeline):
    _, _, _, hg = pipeline
    dist = cell_distribution(hg)
    assert dist.cells_with_potential_at_least(1) > 0


def test_stage4_bipartition_improves(pipeline):
    _, _, _, hg = pipeline
    fm = fm_bipartition(hg, FMConfig(seed=5))
    fr = replication_bipartition(hg, ReplicationConfig(seed=5, threshold=0))
    assert cut_size(hg, fm.assignment) == fm.cut_size
    assert fr.cut_size <= fm.initial_cut
    assert fr.cut_size <= fr.initial_cut


def test_stage5_kway_solution_verifies(pipeline):
    _, _, mapped, _ = pipeline
    for threshold in (float("inf"), 1):
        solution = partition_heterogeneous(
            mapped,
            KWayConfig(library=LIB, threshold=threshold, seed=4, seeds_per_carve=2),
        )
        assert verify_solution(mapped, solution) == []
        assert solution.k >= 2
        assert solution.cost.total_cost > 0
        assert 0.0 < solution.cost.avg_clb_utilization <= 1.0
