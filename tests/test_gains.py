"""Unit tests for the unified gain model (eqs. 7-11)."""

import pytest

from repro.replication.gains import (
    MoveVectors,
    gain_functional_output,
    gain_functional_replication,
    gain_single_move,
    gain_traditional_replication,
    make_move_vectors,
)

#: The paper's worked example (Section III / Figure 4): the Figure 2 cell
#: (5 inputs, 2 outputs, A_X1 = 11110, A_X2 = 00011) with input nets 4 and 5
#: and output net X2 in the cut, everything critical.
PAPER_MV = make_move_vectors(
    a=[(1, 1, 1, 1, 0), (0, 0, 0, 1, 1)],
    ci=(0, 0, 0, 1, 1),
    qi=(1, 1, 1, 1, 1),
    co=(0, 1),
    qo=(1, 1),
)


class TestPaperNumbers:
    def test_eq7_single_move(self):
        # Paper: G_m = (2+1) - (3+1) = -1.
        assert gain_single_move(PAPER_MV) == -1

    def test_eq8_traditional(self):
        # Paper: G_tr = (2+1) - 5 = -2.
        assert gain_traditional_replication(PAPER_MV) == -2

    def test_eq9_output1(self):
        # Paper: G_X1 = -4.
        assert gain_functional_output(PAPER_MV, 0) == -4

    def test_eq10_output2(self):
        # Paper: G_X2 = +2 (cut shrinks from 3 to 1).
        assert gain_functional_output(PAPER_MV, 1) == 2

    def test_eq11_max(self):
        assert gain_functional_replication(PAPER_MV) == (2, 1)


class TestSingleMove:
    def test_all_removals(self):
        mv = make_move_vectors(
            a=[(1, 1)], ci=(1, 1), qi=(1, 1), co=(1,), qo=(1,)
        )
        assert gain_single_move(mv) == 3

    def test_all_additions(self):
        mv = make_move_vectors(
            a=[(1, 1)], ci=(0, 0), qi=(1, 1), co=(0,), qo=(1,)
        )
        assert gain_single_move(mv) == -3

    def test_non_critical_nets_neutral(self):
        mv = make_move_vectors(
            a=[(1, 1)], ci=(1, 0), qi=(0, 0), co=(1,), qo=(0,)
        )
        assert gain_single_move(mv) == 0


class TestTraditional:
    def test_figure1_case(self):
        # Figure 1: 3 inputs (a uncut; b, c cut), outputs X uncut, Y cut ->
        # G_tr = (2 + 1) - 3 = 0: "no reduction in the cut set".
        mv = make_move_vectors(
            a=[(1, 1, 0), (0, 1, 1)],
            ci=(0, 1, 1),
            qi=(1, 1, 1),
            co=(0, 1),
            qo=(1, 1),
        )
        assert gain_traditional_replication(mv) == 0

    def test_everything_cut_is_pure_gain(self):
        mv = make_move_vectors(
            a=[(1, 1)], ci=(1, 1), qi=(1, 1), co=(1,), qo=(1,)
        )
        assert gain_traditional_replication(mv) == 1


class TestFunctional:
    def test_figure1_functional_beats_traditional(self):
        mv = make_move_vectors(
            a=[(1, 1, 0), (0, 1, 1)],
            ci=(0, 1, 1),
            qi=(1, 1, 1),
            co=(0, 1),
            qo=(1, 1),
        )
        gain, output = gain_functional_replication(mv)
        assert output == 1  # take Y across
        assert gain == 2
        assert gain > gain_traditional_replication(mv)

    def test_shared_uncut_inputs_penalized(self):
        # Output 1's support is entirely shared and uncut: replicating it
        # pins every shared input on the far side.
        mv = make_move_vectors(
            a=[(1, 1), (1, 1)],
            ci=(0, 0),
            qi=(1, 1),
            co=(0, 1),
            qo=(1, 1),
        )
        assert gain_functional_output(mv, 1) == -1  # +1 output, -2 inputs

    def test_single_output_rejected(self):
        mv = make_move_vectors(a=[(1,)], ci=(0,), qi=(1,), co=(0,), qo=(1,))
        with pytest.raises(ValueError):
            gain_functional_replication(mv)

    def test_output_index_bounds(self):
        with pytest.raises(IndexError):
            gain_functional_output(PAPER_MV, 2)


class TestMoveVectorsValidation:
    def test_length_mismatches_rejected(self):
        with pytest.raises(ValueError):
            MoveVectors(a=((1, 0),), ci=(0,), qi=(0, 0), co=(0,), qo=(0,))
        with pytest.raises(ValueError):
            MoveVectors(a=((1, 0),), ci=(0, 0), qi=(0, 0), co=(0,), qo=(0, 0))
        with pytest.raises(ValueError):
            MoveVectors(a=((1,),), ci=(0, 0), qi=(0, 0), co=(0,), qo=(0,))
        with pytest.raises(ValueError):
            MoveVectors(a=(), ci=(0, 0), qi=(0, 0), co=(0,), qo=(0,))

    def test_properties(self):
        assert PAPER_MV.n_inputs == 5
        assert PAPER_MV.n_outputs == 2
