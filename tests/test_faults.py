"""The deterministic fault-injection harness."""

import pytest

from repro.robust import faults
from repro.robust.faults import Fault, FaultError, FaultPlan


class TestFault:
    def test_needs_error_or_delay(self):
        with pytest.raises(ValueError):
            Fault("site")

    def test_fires_default_error_class(self):
        fault = Fault("site", error=FaultError)
        with pytest.raises(FaultError, match="injected fault"):
            fault.fire("site", {})
        assert fault.hits == 1 and fault.fires == 1

    def test_fires_exception_instance(self):
        boom = RuntimeError("boom")
        fault = Fault("site", error=boom)
        with pytest.raises(RuntimeError) as err:
            fault.fire("site", {})
        assert err.value is boom

    def test_other_site_ignored(self):
        fault = Fault("site", error=FaultError)
        fault.fire("elsewhere", {})
        assert fault.hits == 0 and fault.fires == 0

    def test_match_filters_on_context(self):
        fault = Fault("site", error=FaultError, match={"style": "functional"})
        fault.fire("site", {"style": "traditional"})
        assert fault.fires == 0
        with pytest.raises(FaultError):
            fault.fire("site", {"style": "functional"})

    def test_after_skips_first_hits(self):
        fault = Fault("site", error=FaultError, after=2)
        fault.fire("site", {})
        fault.fire("site", {})
        assert fault.fires == 0
        with pytest.raises(FaultError):
            fault.fire("site", {})

    def test_times_caps_fires(self):
        fault = Fault("site", error=FaultError, times=1)
        with pytest.raises(FaultError):
            fault.fire("site", {})
        fault.fire("site", {})  # exhausted: silent
        assert fault.hits == 2 and fault.fires == 1

    def test_replay_is_deterministic(self):
        """The same plan fires at the same hit counts on every run."""
        for _ in range(2):
            fault = Fault("site", error=FaultError, after=1, times=2)
            fired_at = []
            for i in range(5):
                try:
                    fault.fire("site", {})
                except FaultError:
                    fired_at.append(i)
            assert fired_at == [1, 2]


class TestInjectScope:
    def test_noop_without_active_plan(self):
        assert not faults.active()
        faults.maybe_fire("site", style="functional")  # no raise

    def test_inject_activates_and_deactivates(self):
        with faults.inject(Fault("site", error=FaultError)) as plan:
            assert faults.active()
            with pytest.raises(FaultError):
                faults.maybe_fire("site")
            assert plan.total_fires() == 1
        assert not faults.active()
        faults.maybe_fire("site")  # plan removed

    def test_deactivates_even_after_error(self):
        with pytest.raises(RuntimeError):
            with faults.inject(Fault("site", error=RuntimeError("x"))):
                faults.maybe_fire("site")
        assert not faults.active()

    def test_scopes_nest(self):
        with faults.inject(Fault("a", error=FaultError)):
            with faults.inject(Fault("b", error=FaultError)):
                with pytest.raises(FaultError):
                    faults.maybe_fire("a")  # outer plan still consulted
                with pytest.raises(FaultError):
                    faults.maybe_fire("b")
            with pytest.raises(FaultError):
                faults.maybe_fire("a")
            faults.maybe_fire("b")  # inner scope gone

    def test_plan_collects_faults(self):
        plan = FaultPlan(
            Fault("a", error=FaultError, times=1),
            Fault("b", error=FaultError, times=1),
        )
        with faults.inject(plan):
            with pytest.raises(FaultError):
                faults.maybe_fire("a")
            with pytest.raises(FaultError):
                faults.maybe_fire("b")
        assert plan.total_fires() == 2


@pytest.fixture(scope="module")
def tiny_hg():
    from repro.hypergraph.build import build_hypergraph
    from repro.netlist.benchmarks import benchmark_circuit
    from repro.techmap.mapped import technology_map

    mapped = technology_map(benchmark_circuit("s5378", scale=0.05, seed=1))
    return build_hypergraph(mapped, include_terminals=False)


class TestSolverSites:
    """The documented fault sites are live inside the real solvers."""

    def test_fm_run_site(self, tiny_hg):
        from repro.partition.fm import FMConfig, fm_bipartition

        with faults.inject(Fault("fm.run", error=FaultError)):
            with pytest.raises(FaultError):
                fm_bipartition(tiny_hg, FMConfig(seed=1))

    def test_engine_run_site_matches_style(self, tiny_hg):
        from repro.partition.fm_replication import (
            FUNCTIONAL,
            TRADITIONAL,
            ReplicationConfig,
            replication_bipartition,
        )

        # A fault scoped to the traditional style must not hit the
        # functional engine...
        with faults.inject(
            Fault("engine.run", error=FaultError, match={"style": TRADITIONAL})
        ):
            replication_bipartition(
                tiny_hg, ReplicationConfig(style=FUNCTIONAL, seed=1)
            )
        # ...and must hit the matching one.
        with faults.inject(
            Fault("engine.run", error=FaultError, match={"style": FUNCTIONAL})
        ):
            with pytest.raises(FaultError):
                replication_bipartition(
                    tiny_hg, ReplicationConfig(style=FUNCTIONAL, seed=1)
                )
