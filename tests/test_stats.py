"""Tests for circuit statistics (Table II quantities)."""

from repro.netlist.stats import mapped_stats, netlist_stats
from repro.techmap.mapped import technology_map


def test_gate_level_stats(tiny_netlist):
    stats = netlist_stats(tiny_netlist)
    assert stats.n_gates == 9
    assert stats.n_logic == 5
    assert stats.n_inputs == 4
    assert stats.n_outputs == 2
    assert stats.n_dff == 0
    assert stats.depth == 3
    assert stats.max_fanin == 2
    assert stats.max_fanout == 2


def test_sequential_stats(seq_netlist):
    stats = netlist_stats(seq_netlist)
    assert stats.n_dff == 2
    assert stats.n_logic == 3


def test_stats_as_dict(tiny_netlist):
    data = netlist_stats(tiny_netlist).as_dict()
    assert data["name"] == "tiny"
    assert data["PI"] == 4


def test_mapped_stats(tiny_netlist):
    mapped = technology_map(tiny_netlist)
    stats = mapped_stats(mapped)
    assert stats.n_clbs == mapped.n_cells
    assert stats.n_iobs == 6  # 4 PI + 2 PO
    assert stats.n_dff == 0
    data = stats.as_dict()
    assert data["Circuit"] == "tiny"
    assert data["#IOBs"] == 6


def test_mapped_stats_sequential(seq_netlist):
    mapped = technology_map(seq_netlist)
    stats = mapped_stats(mapped)
    assert stats.n_dff == 2
    assert stats.n_iobs == 3  # en + q0 + q1
