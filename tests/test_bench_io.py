"""Tests for the ISCAS .bench reader/writer."""

import pytest

from repro.netlist.bench_io import (
    BenchParseError,
    dumps_bench,
    load_bench,
    loads_bench,
    save_bench,
)
from repro.netlist.gates import GateType

SAMPLE = """
# a tiny sample
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(q)
n1 = NAND(a, b)
y = NOT(n1)
q = DFF(y)
"""


class TestParse:
    def test_basic_parse(self):
        n = loads_bench(SAMPLE, "sample")
        assert n.inputs == ["a", "b"]
        assert n.outputs == ["y", "q"]
        assert n.gate("n1").gtype is GateType.NAND
        assert n.gate("q").gtype is GateType.DFF

    def test_case_insensitive_types(self):
        n = loads_bench("INPUT(a)\nOUTPUT(y)\ny = nand(a, a)\n")
        assert n.gate("y").gtype is GateType.NAND

    def test_aliases(self):
        n = loads_bench(
            "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = INV(a)\nz = BUFF(a)\n"
        )
        assert n.gate("y").gtype is GateType.NOT
        assert n.gate("z").gtype is GateType.BUF

    def test_comments_and_blanks_ignored(self):
        n = loads_bench("# c\n\nINPUT(a)\n  # indented comment\nOUTPUT(a)\n")
        assert n.inputs == ["a"]

    def test_unknown_type_rejected(self):
        with pytest.raises(BenchParseError, match="unknown gate type"):
            loads_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchParseError, match="unparseable"):
            loads_bench("INPUT(a)\nwhat is this\n")

    def test_error_carries_line_number(self):
        with pytest.raises(BenchParseError) as err:
            loads_bench("INPUT(a)\n\nbad line\n")
        assert err.value.lineno == 3

    def test_duplicate_gate_rejected(self):
        with pytest.raises(BenchParseError):
            loads_bench("INPUT(a)\na = NOT(a)\n")

    def test_missing_driver_rejected(self):
        with pytest.raises(ValueError):
            loads_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n")


class TestRoundTrip:
    def test_dump_parse_identity(self, tiny_netlist):
        text = dumps_bench(tiny_netlist)
        again = loads_bench(text, tiny_netlist.name)
        assert again.inputs == tiny_netlist.inputs
        assert again.outputs == tiny_netlist.outputs
        assert set(again.gate_names()) == set(tiny_netlist.gate_names())

    def test_roundtrip_preserves_function(self, seq_netlist):
        again = loads_bench(dumps_bench(seq_netlist))
        vecs = [{"en": 1}] * 5
        assert again.simulate(vecs) == seq_netlist.simulate(vecs)

    def test_file_roundtrip(self, tiny_netlist, tmp_path):
        path = str(tmp_path / "tiny.bench")
        save_bench(tiny_netlist, path)
        again = load_bench(path)
        assert again.name == "tiny"
        assert set(again.gate_names()) == set(tiny_netlist.gate_names())

    def test_load_uses_filename_as_default_name(self, tiny_netlist, tmp_path):
        path = str(tmp_path / "mycircuit.bench")
        save_bench(tiny_netlist, path)
        assert load_bench(path).name == "mycircuit"
