"""The structured exception taxonomy and its backward compatibility."""

import pytest

from repro.robust.errors import (
    FATAL,
    RETRYABLE,
    BudgetExceededError,
    ConfigError,
    InfeasibleError,
    ParseError,
    ReproError,
    SolverTimeoutError,
    VerificationError,
)


class TestHierarchy:
    def test_everything_descends_from_repro_error(self):
        for exc in (
            ConfigError,
            InfeasibleError,
            BudgetExceededError,
            SolverTimeoutError,
            ParseError,
            VerificationError,
        ):
            assert issubclass(exc, ReproError)

    def test_config_error_keeps_value_error_base(self):
        assert issubclass(ConfigError, ValueError)

    def test_infeasible_keeps_both_legacy_bases(self):
        assert issubclass(InfeasibleError, RuntimeError)
        assert issubclass(InfeasibleError, ValueError)

    def test_parse_error_keeps_value_error_base(self):
        assert issubclass(ParseError, ValueError)

    def test_retryable_and_fatal_are_disjoint(self):
        assert not set(RETRYABLE) & set(FATAL)
        for exc in RETRYABLE + FATAL:
            assert issubclass(exc, ReproError)


class TestParseError:
    def test_plain_message(self):
        err = ParseError("bad token")
        assert str(err) == "bad token"
        assert err.source is None and err.lineno is None

    def test_source_and_lineno_prefix(self):
        err = ParseError("bad token", source="a.bench", lineno=7)
        assert str(err) == "a.bench: line 7: bad token"
        assert err.source == "a.bench" and err.lineno == 7

    def test_lineno_only(self):
        err = ParseError("bad token", lineno=3)
        assert str(err) == "line 3: bad token"


class TestPayloads:
    def test_budget_exceeded_carries_log(self):
        sentinel = object()
        err = BudgetExceededError("out of time", log=sentinel)
        assert err.log is sentinel

    def test_solver_timeout_carries_elapsed(self):
        err = SolverTimeoutError("expired", elapsed=1.25)
        assert err.elapsed == 1.25

    def test_verification_error_carries_violations(self):
        err = VerificationError(["v1", "v2"], circuit="c17")
        assert err.violations == ["v1", "v2"]
        assert "c17" in str(err) and "2 violation(s)" in str(err)


class TestLegacyCallSites:
    """Re-parented call sites must still satisfy old ``except`` clauses."""

    def test_bad_device_raises_config_error(self):
        from repro.partition.devices import Device

        with pytest.raises(ConfigError):
            Device("bad", clbs=0, terminals=8, price=1.0)
        with pytest.raises(ValueError):  # legacy catch still works
            Device("bad", clbs=0, terminals=8, price=1.0)

    def test_empty_library_raises_config_error(self):
        from repro.partition.devices import DeviceLibrary

        with pytest.raises(ConfigError):
            DeviceLibrary([])

    def test_bad_algorithm_raises_config_error(self):
        from repro.core.flow import bipartition_experiment

        with pytest.raises(ConfigError):
            bipartition_experiment(None, algorithm="simulated-annealing")

    def test_parser_errors_are_parse_errors(self):
        from repro.netlist.bench_io import BenchParseError, loads_bench
        from repro.netlist.blif_io import BlifParseError, loads_blif
        from repro.netlist.verilog_io import VerilogParseError, loads_verilog

        for cls, fn in (
            (BenchParseError, loads_bench),
            (BlifParseError, loads_blif),
            (VerilogParseError, loads_verilog),
        ):
            assert issubclass(cls, ParseError)
            with pytest.raises(cls) as err:
                fn("")
            assert "empty" in str(err.value)
