"""Wall-clock budgets, driven by an injected fake clock."""

import pytest

from repro.robust.budget import (
    Budget,
    CancelFlag,
    ambient_budget,
    cancel_scope,
    cancelled,
)
from repro.robust.errors import SolverTimeoutError


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestUnlimited:
    def test_never_expires(self):
        clock = FakeClock()
        budget = Budget(None, clock=clock)
        clock.advance(1e9)
        assert not budget.expired
        assert budget.remaining() == float("inf")
        budget.check()  # no raise

    def test_unlimited_constructor(self):
        assert not Budget.unlimited().expired

    def test_elapsed_tracks_clock(self):
        clock = FakeClock(5.0)
        budget = Budget(None, clock=clock)
        clock.advance(2.5)
        assert budget.elapsed() == 2.5


class TestExpiry:
    def test_expires_at_deadline(self):
        clock = FakeClock()
        budget = Budget(1.0, clock=clock)
        assert not budget.expired
        clock.advance(0.999)
        assert not budget.expired
        clock.advance(0.001)
        assert budget.expired

    def test_remaining_clamps_to_zero(self):
        clock = FakeClock()
        budget = Budget(1.0, clock=clock)
        clock.advance(5.0)
        assert budget.remaining() == 0.0

    def test_zero_budget_expires_immediately(self):
        assert Budget(0.0, clock=FakeClock()).expired

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            Budget(-1.0)


class TestCheck:
    def test_graceful_never_raises(self):
        clock = FakeClock()
        budget = Budget(0.5, graceful=True, clock=clock)
        clock.advance(1.0)
        budget.check("anywhere")  # graceful: caller polls .expired instead

    def test_strict_raises_with_elapsed(self):
        clock = FakeClock()
        budget = Budget(0.5, graceful=False, clock=clock)
        budget.check("early")  # not yet expired
        clock.advance(2.0)
        with pytest.raises(SolverTimeoutError) as err:
            budget.check("carve loop")
        assert "carve loop" in str(err.value)
        assert err.value.elapsed == 2.0


class TestChild:
    def test_child_clamped_to_parent_remaining(self):
        clock = FakeClock()
        parent = Budget(1.0, clock=clock)
        clock.advance(0.75)
        child = parent.child(10.0)
        assert child.seconds == pytest.approx(0.25)

    def test_child_inherits_remaining_when_unspecified(self):
        clock = FakeClock()
        parent = Budget(2.0, clock=clock)
        clock.advance(0.5)
        child = parent.child()
        assert child.seconds == pytest.approx(1.5)

    def test_child_of_unlimited_parent(self):
        parent = Budget(None, clock=FakeClock())
        assert parent.child().seconds is None
        assert parent.child(3.0).seconds == 3.0

    def test_child_shares_clock(self):
        clock = FakeClock()
        child = Budget(10.0, clock=clock).child(1.0)
        clock.advance(1.5)
        assert child.expired


class TestCancellation:
    """The CancelFlag sentinel and its Budget/ambient integration."""

    def _flag(self, tmp_path, clock):
        return CancelFlag(
            str(tmp_path / "job.cancel"), poll_seconds=0.05, clock=clock
        )

    def test_set_creates_sentinel_and_latches(self, tmp_path):
        clock = FakeClock()
        flag = self._flag(tmp_path, clock)
        assert not flag.is_set()
        flag.set()
        clock.advance(0.1)
        assert flag.is_set()
        # latched: the file can disappear, the observation stands
        import os

        os.remove(flag.path)
        assert flag.is_set()

    def test_clear_resets_the_latch(self, tmp_path):
        clock = FakeClock()
        flag = self._flag(tmp_path, clock)
        flag.set()
        clock.advance(0.1)
        assert flag.is_set()
        flag.clear()
        assert not flag.is_set()

    def test_polls_are_throttled(self, tmp_path, monkeypatch):
        clock = FakeClock()
        flag = self._flag(tmp_path, clock)
        calls = []
        import os.path as osp

        real_exists = osp.exists
        monkeypatch.setattr(
            "os.path.exists", lambda p: calls.append(p) or real_exists(p)
        )
        for _ in range(100):
            flag.is_set()  # clock frozen: only the first call may stat
        assert len(calls) == 1
        clock.advance(0.06)
        flag.is_set()
        assert len(calls) == 2

    def test_scope_installs_and_restores(self, tmp_path):
        clock = FakeClock()
        flag = self._flag(tmp_path, clock)
        assert not cancelled()
        with cancel_scope(flag):
            assert not cancelled()
            flag.set()
            clock.advance(0.1)
            assert cancelled()
        assert not cancelled()

    def test_scopes_nest(self, tmp_path):
        clock = FakeClock()
        outer = self._flag(tmp_path, clock)
        outer.set()
        clock.advance(0.1)
        with cancel_scope(outer):
            assert cancelled()
            with cancel_scope(None):
                assert not cancelled()
            assert cancelled()

    def test_ambient_budget_requires_a_flag(self, tmp_path):
        assert ambient_budget() is None
        with cancel_scope(self._flag(tmp_path, FakeClock())):
            budget = ambient_budget()
            assert budget is not None and budget.seconds is None

    def test_cancellation_expires_every_budget(self, tmp_path):
        clock = FakeClock()
        flag = self._flag(tmp_path, clock)
        with cancel_scope(flag):
            unlimited = Budget(None, clock=clock)
            timed = Budget(100.0, clock=clock)
            assert not unlimited.expired and not timed.expired
            flag.set()
            clock.advance(0.1)
            assert unlimited.expired and timed.expired

    def test_strict_budget_raises_on_cancellation(self, tmp_path):
        clock = FakeClock()
        flag = self._flag(tmp_path, clock)
        flag.set()
        clock.advance(0.1)
        with cancel_scope(flag):
            budget = Budget(None, graceful=False, clock=clock)
            with pytest.raises(SolverTimeoutError, match="cancellation"):
                budget.check("carve loop")
