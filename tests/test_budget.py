"""Wall-clock budgets, driven by an injected fake clock."""

import pytest

from repro.robust.budget import Budget
from repro.robust.errors import SolverTimeoutError


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestUnlimited:
    def test_never_expires(self):
        clock = FakeClock()
        budget = Budget(None, clock=clock)
        clock.advance(1e9)
        assert not budget.expired
        assert budget.remaining() == float("inf")
        budget.check()  # no raise

    def test_unlimited_constructor(self):
        assert not Budget.unlimited().expired

    def test_elapsed_tracks_clock(self):
        clock = FakeClock(5.0)
        budget = Budget(None, clock=clock)
        clock.advance(2.5)
        assert budget.elapsed() == 2.5


class TestExpiry:
    def test_expires_at_deadline(self):
        clock = FakeClock()
        budget = Budget(1.0, clock=clock)
        assert not budget.expired
        clock.advance(0.999)
        assert not budget.expired
        clock.advance(0.001)
        assert budget.expired

    def test_remaining_clamps_to_zero(self):
        clock = FakeClock()
        budget = Budget(1.0, clock=clock)
        clock.advance(5.0)
        assert budget.remaining() == 0.0

    def test_zero_budget_expires_immediately(self):
        assert Budget(0.0, clock=FakeClock()).expired

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            Budget(-1.0)


class TestCheck:
    def test_graceful_never_raises(self):
        clock = FakeClock()
        budget = Budget(0.5, graceful=True, clock=clock)
        clock.advance(1.0)
        budget.check("anywhere")  # graceful: caller polls .expired instead

    def test_strict_raises_with_elapsed(self):
        clock = FakeClock()
        budget = Budget(0.5, graceful=False, clock=clock)
        budget.check("early")  # not yet expired
        clock.advance(2.0)
        with pytest.raises(SolverTimeoutError) as err:
            budget.check("carve loop")
        assert "carve loop" in str(err.value)
        assert err.value.elapsed == 2.0


class TestChild:
    def test_child_clamped_to_parent_remaining(self):
        clock = FakeClock()
        parent = Budget(1.0, clock=clock)
        clock.advance(0.75)
        child = parent.child(10.0)
        assert child.seconds == pytest.approx(0.25)

    def test_child_inherits_remaining_when_unspecified(self):
        clock = FakeClock()
        parent = Budget(2.0, clock=clock)
        clock.advance(0.5)
        child = parent.child()
        assert child.seconds == pytest.approx(1.5)

    def test_child_of_unlimited_parent(self):
        parent = Budget(None, clock=FakeClock())
        assert parent.child().seconds is None
        assert parent.child(3.0).seconds == 3.0

    def test_child_shares_clock(self):
        clock = FakeClock()
        child = Budget(10.0, clock=clock).child(1.0)
        clock.advance(1.5)
        assert child.expired
