"""Failure injection and fuzzing for the netlist parsers.

The parsers are the library's untrusted-input boundary; they must reject
malformed input with a clear exception and never crash with anything else
(no IndexError/KeyError leaks), and valid output must always round-trip.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.bench_io import BenchParseError, dumps_bench, loads_bench
from repro.netlist.blif_io import BlifParseError, dumps_blif, loads_blif
from tests.conftest import random_small_netlist

_ACCEPTABLE = (BenchParseError, BlifParseError, ValueError, KeyError)


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=300))
def test_bench_parser_never_crashes_unexpectedly(text):
    try:
        loads_bench(text)
    except _ACCEPTABLE:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=300))
def test_blif_parser_never_crashes_unexpectedly(text):
    try:
        loads_blif(text)
    except _ACCEPTABLE:
        pass


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.sampled_from(
            [
                "INPUT(a)",
                "INPUT(b)",
                "OUTPUT(y)",
                "y = AND(a, b)",
                "y = AND(a)",
                "z = NOT(a)",
                "w = DFF(z)",
                "# comment",
                "",
                "y = FROB(a)",
                "garbage",
            ]
        ),
        max_size=12,
    )
)
def test_bench_parser_structured_fuzz(lines):
    try:
        netlist = loads_bench("\n".join(lines))
    except _ACCEPTABLE:
        return
    # If parsing succeeded the netlist must satisfy its own invariants and
    # serialize to something that parses back identically.
    again = loads_bench(dumps_bench(netlist))
    assert set(again.gate_names()) == set(netlist.gate_names())


@pytest.mark.parametrize("seed", range(8))
def test_random_netlists_roundtrip_both_formats(seed):
    netlist = random_small_netlist(seed, n_gates=30)
    rng = random.Random(seed)
    vec = {pi: rng.randrange(2) for pi in netlist.inputs}
    expected = netlist.simulate([vec])[0]
    via_bench = loads_bench(dumps_bench(netlist))
    assert via_bench.simulate([vec])[0] == expected
    via_blif = loads_blif(dumps_blif(netlist))
    assert via_blif.simulate([vec])[0] == expected


def test_truncated_bench_file():
    with pytest.raises(_ACCEPTABLE):
        loads_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a,")


def test_bench_crlf_and_whitespace():
    text = "INPUT(a)\r\n  OUTPUT( y )\r\n y = NOT( a )\r\n"
    netlist = loads_bench(text)
    assert netlist.outputs == ["y"]


def test_blif_empty_model():
    netlist = loads_blif(".model empty\n.end\n")
    assert len(netlist) == 0
