"""Tests for the BLIF (subset) reader/writer."""

import itertools

import pytest

from repro.netlist.blif_io import BlifParseError, dumps_blif, loads_blif
from repro.netlist.gates import GateType

SAMPLE = """
.model demo
.inputs a b c
.outputs y q
.names a b t1
11 1
.names t1 c y
1- 1
-1 1
.latch y q 0
.end
"""


class TestParse:
    def test_model_name(self):
        assert loads_blif(SAMPLE).name == "demo"

    def test_io(self):
        n = loads_blif(SAMPLE)
        assert n.inputs == ["a", "b", "c"]
        assert n.outputs == ["y", "q"]

    def test_and_cover_recognized(self):
        n = loads_blif(SAMPLE)
        out = n.simulate([{"a": 1, "b": 1, "c": 0}])[0]
        assert out["y"] == 1

    def test_latch(self):
        n = loads_blif(SAMPLE)
        assert n.gate("q").gtype is GateType.DFF
        outs = n.simulate([{"a": 1, "b": 1, "c": 0}] * 2)
        assert outs[0]["q"] == 0 and outs[1]["q"] == 1

    def test_constant_cells(self):
        n = loads_blif(".model k\n.outputs one zero\n.names one\n1\n.names zero\n.end\n")
        out = n.simulate([{}])[0]
        assert out == {"one": 1, "zero": 0}

    def test_offset_cover(self):
        # f = NOT(a AND b) expressed through the off-set.
        text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
        n = loads_blif(text)
        for a, b in itertools.product((0, 1), repeat=2):
            out = n.simulate([{"a": a, "b": b}])[0]
            assert out["y"] == (0 if (a and b) else 1)

    def test_continuation_lines(self):
        text = ".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
        n = loads_blif(text)
        assert n.inputs == ["a", "b"]

    def test_dont_care_cubes(self):
        text = ".model m\n.inputs a b c\n.outputs y\n.names a b c y\n1-- 1\n-11 1\n.end\n"
        n = loads_blif(text)
        for a, b, c in itertools.product((0, 1), repeat=3):
            out = n.simulate([{"a": a, "b": b, "c": c}])[0]
            assert out["y"] == int(bool(a or (b and c)))

    def test_unsupported_directive_rejected(self):
        with pytest.raises(BlifParseError):
            loads_blif(".model m\n.gate NAND2 a=x b=y O=z\n.end\n")

    def test_cube_outside_names_rejected(self):
        with pytest.raises(BlifParseError):
            loads_blif(".model m\n11 1\n.end\n")

    def test_mixed_onoff_cover_rejected(self):
        with pytest.raises(BlifParseError):
            loads_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n")


class TestRoundTrip:
    def test_netlist_to_blif_and_back(self, tiny_netlist):
        text = dumps_blif(tiny_netlist)
        again = loads_blif(text)
        vec = {"a": 1, "b": 0, "c": 1, "d": 0}
        assert again.simulate([vec])[0] == tiny_netlist.simulate([vec])[0]

    def test_sequential_roundtrip(self, seq_netlist):
        again = loads_blif(dumps_blif(seq_netlist))
        vecs = [{"en": 1}] * 5
        assert again.simulate(vecs) == seq_netlist.simulate(vecs)

    def test_all_gate_types_roundtrip(self):
        from repro.netlist.netlist import Netlist

        n = Netlist("all")
        for pi in ("a", "b", "c"):
            n.add_input(pi)
        gates = [
            ("t_and", GateType.AND),
            ("t_or", GateType.OR),
            ("t_nand", GateType.NAND),
            ("t_nor", GateType.NOR),
            ("t_xor", GateType.XOR),
            ("t_xnor", GateType.XNOR),
        ]
        for name, gtype in gates:
            n.add_gate(name, gtype, ["a", "b", "c"])
            n.add_output(name)
        n.add_gate("t_not", GateType.NOT, ["a"])
        n.add_output("t_not")
        n.add_gate("t_buf", GateType.BUF, ["b"])
        n.add_output("t_buf")
        again = loads_blif(dumps_blif(n))
        for a, b, c in itertools.product((0, 1), repeat=3):
            vec = {"a": a, "b": b, "c": c}
            assert again.simulate([vec])[0] == n.simulate([vec])[0]
