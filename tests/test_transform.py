"""Tests for netlist transformation passes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.transform import (
    clean_netlist,
    propagate_constants,
    remove_dead_logic,
    sweep_buffers,
)
from tests.conftest import random_small_netlist


def _equivalent(a: Netlist, b: Netlist, seed: int = 0, cycles: int = 4) -> bool:
    rng = random.Random(seed)
    vecs = [
        {pi: rng.randrange(2) for pi in a.inputs} for _ in range(cycles)
    ]
    return a.simulate(vecs) == b.simulate(vecs)


class TestConstantPropagation:
    def test_folds_constant_cone(self):
        n = Netlist("c")
        n.add_input("a")
        n.add_gate("one", GateType.CONST1)
        n.add_gate("zero", GateType.CONST0)
        n.add_gate("g1", GateType.AND, ["one", "zero"])  # -> 0
        n.add_gate("g2", GateType.OR, ["g1", "a"])  # -> a
        n.add_output("g2")
        out = propagate_constants(n)
        assert out.gate("g1").gtype is GateType.CONST0
        assert out.gate("g2").gtype is GateType.BUF
        assert _equivalent(n, out)

    def test_controlling_value_kills_gate(self):
        n = Netlist("c")
        n.add_input("a")
        n.add_input("b")
        n.add_gate("zero", GateType.CONST0)
        n.add_gate("g", GateType.AND, ["a", "b", "zero"])
        n.add_output("g")
        out = propagate_constants(n)
        assert out.gate("g").gtype is GateType.CONST0

    def test_nand_with_controlling_zero(self):
        n = Netlist("c")
        n.add_input("a")
        n.add_gate("zero", GateType.CONST0)
        n.add_gate("g", GateType.NAND, ["a", "zero"])
        n.add_output("g")
        out = propagate_constants(n)
        assert out.gate("g").gtype is GateType.CONST1

    def test_xor_constant_absorption(self):
        n = Netlist("c")
        n.add_input("a")
        n.add_gate("one", GateType.CONST1)
        n.add_gate("g", GateType.XOR, ["a", "one"])
        n.add_output("g")
        out = propagate_constants(n)
        assert out.gate("g").gtype is GateType.NOT
        assert _equivalent(n, out)

    def test_dff_blocks_propagation(self):
        n = Netlist("c")
        n.add_gate("one", GateType.CONST1)
        n.add_gate("q", GateType.DFF, ["one"])
        n.add_output("q")
        out = propagate_constants(n)
        assert out.gate("q").gtype is GateType.DFF
        # Cycle 0 must still read the reset value 0, not the constant.
        assert out.simulate([{}, {}]) == [{"q": 0}, {"q": 1}]


class TestBufferSweep:
    def test_buffers_removed(self):
        n = Netlist("b")
        n.add_input("a")
        n.add_gate("b1", GateType.BUF, ["a"])
        n.add_gate("b2", GateType.BUF, ["b1"])
        n.add_gate("g", GateType.NOT, ["b2"])
        n.add_output("g")
        out = sweep_buffers(n)
        assert "b1" not in out and "b2" not in out
        assert out.gate("g").fanin == ["a"]
        assert _equivalent(n, out)

    def test_double_inverter_collapsed(self):
        n = Netlist("b")
        n.add_input("a")
        n.add_input("x")
        n.add_gate("n1", GateType.NOT, ["a"])
        n.add_gate("n2", GateType.NOT, ["n1"])
        n.add_gate("g", GateType.AND, ["n2", "x"])
        n.add_output("g")
        n.add_output("n1")  # n1 observable: must survive
        out = sweep_buffers(n)
        assert out.gate("g").fanin == ["a", "x"]
        assert "n1" in out
        assert _equivalent(n, out)

    def test_po_buffer_kept(self):
        n = Netlist("b")
        n.add_input("a")
        n.add_gate("y", GateType.BUF, ["a"])
        n.add_output("y")
        out = sweep_buffers(n)
        assert "y" in out
        assert out.outputs == ["y"]


class TestDeadLogicRemoval:
    def test_unobservable_gate_dropped(self):
        n = Netlist("d")
        n.add_input("a")
        n.add_gate("dead", GateType.NOT, ["a"])
        n.add_gate("live", GateType.BUF, ["a"])
        n.add_output("live")
        out = remove_dead_logic(n)
        assert "dead" not in out
        assert "live" in out

    def test_state_is_live(self, seq_netlist):
        out = remove_dead_logic(seq_netlist)
        assert sorted(out.dffs) == sorted(seq_netlist.dffs)

    def test_inputs_kept(self):
        n = Netlist("d")
        n.add_input("a")
        n.add_input("unused")
        n.add_gate("g", GateType.NOT, ["a"])
        n.add_output("g")
        out = remove_dead_logic(n)
        assert "unused" in out  # interface preserved


class TestCleanPipeline:
    @pytest.mark.parametrize("seed", range(6))
    def test_preserves_function(self, seed):
        n = random_small_netlist(seed, n_gates=50)
        out = clean_netlist(n)
        assert _equivalent(n, out, seed=seed + 1)

    def test_sequential_preserved(self, seq_netlist):
        out = clean_netlist(seq_netlist)
        vecs = [{"en": i % 2} for i in range(6)]
        assert out.simulate(vecs) == seq_netlist.simulate(vecs)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6))
    def test_idempotent(self, seed):
        n = random_small_netlist(seed % 1000, n_gates=40)
        once = clean_netlist(n)
        twice = clean_netlist(once)
        assert set(twice.gate_names()) == set(once.gate_names())
        assert _equivalent(once, twice, seed=seed % 97)
