"""Tests for the objective functions (eqs. 1 and 2)."""

import pytest

from repro.partition.cost import BlockUsage, SolutionCost, solution_cost
from repro.partition.devices import XC3000_LIBRARY

D20 = XC3000_LIBRARY["XC3020"]
D90 = XC3000_LIBRARY["XC3090"]


def test_eq1_total_cost():
    sol = solution_cost([(D20, 50, 40), (D20, 55, 30), (D90, 300, 100)])
    assert sol.total_cost == 100 + 100 + 370
    assert sol.device_counts == {"XC3020": 2, "XC3090": 1}
    assert sol.k == 3


def test_eq2_iob_utilization():
    sol = solution_cost([(D20, 50, 32), (D90, 300, 72)])
    # sum t_Pj / sum t_i n_i = (32 + 72) / (64 + 144) = 0.5
    assert sol.avg_iob_utilization == pytest.approx(0.5)


def test_clb_utilization():
    sol = solution_cost([(D20, 32, 10), (D90, 160, 10)])
    assert sol.avg_clb_utilization == pytest.approx((32 + 160) / (64 + 320))


def test_block_usage():
    block = BlockUsage(device=D20, clbs=32, terminals=64)
    assert block.clb_utilization == 0.5
    assert block.iob_utilization == 1.0
    assert block.feasible


def test_feasibility_propagates():
    good = solution_cost([(D20, 50, 40)])
    assert good.feasible
    bad = solution_cost([(D20, 50, 100)])  # terminal overflow
    assert not bad.feasible


def test_objective_key_ordering():
    cheap = solution_cost([(D20, 50, 40)])
    pricey = solution_cost([(D90, 50, 40)])
    assert cheap.objective_key() < pricey.objective_key()
    # Equal cost: lower interconnect wins.
    tight = solution_cost([(D20, 50, 10)])
    loose = solution_cost([(D20, 50, 60)])
    assert tight.objective_key() < loose.objective_key()


def test_empty_solution():
    sol = SolutionCost()
    assert sol.total_cost == 0
    assert sol.avg_iob_utilization == 0.0
    assert sol.feasible


def test_summary_fields():
    data = solution_cost([(D20, 50, 40)]).summary()
    assert data["k"] == 1
    assert data["cost"] == 100
    assert "avg_iob_util" in data
