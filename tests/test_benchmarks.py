"""Tests for the named DAC'94 benchmark suite."""

import pytest

from repro.netlist.benchmarks import (
    BENCHMARK_NAMES,
    COMBINATIONAL_NAMES,
    PROFILES,
    SEQUENTIAL_NAMES,
    benchmark_circuit,
    benchmark_suite,
)
from repro.netlist.validate import validate_netlist


def test_all_nine_circuits_present():
    assert len(BENCHMARK_NAMES) == 9
    assert set(COMBINATIONAL_NAMES) | set(SEQUENTIAL_NAMES) == set(BENCHMARK_NAMES)


def test_paper_table_order():
    assert BENCHMARK_NAMES[:4] == ("c3540", "c5315", "c6288", "c7552")
    assert BENCHMARK_NAMES[4:] == ("s5378", "s9234", "s13207", "s15850", "s38584")


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_circuit_valid_at_small_scale(name):
    n = benchmark_circuit(name, scale=0.1)
    report = validate_netlist(n, strict=False)
    assert report.ok, report.errors[:3]


@pytest.mark.parametrize("name", ["c3540", "s5378"])
def test_deterministic(name):
    a = benchmark_circuit(name, scale=0.15, seed=11)
    b = benchmark_circuit(name, scale=0.15, seed=11)
    assert [repr(g) for g in a.gates()] == [repr(g) for g in b.gates()]


def test_published_profiles_at_full_scale():
    # Spot-check the published ISCAS counts are honoured (PI/DFF are exact,
    # gate counts approximate for the structural multiplier).
    n = benchmark_circuit("s5378", scale=1.0)
    assert len(n.inputs) == PROFILES["s5378"].n_inputs
    assert len(n.dffs) == PROFILES["s5378"].n_dff


def test_combinational_have_no_dffs():
    for name in COMBINATIONAL_NAMES:
        assert PROFILES[name].n_dff == 0


def test_sequential_have_dffs():
    n = benchmark_circuit("s9234", scale=0.1)
    assert len(n.dffs) > 0


def test_scale_shrinks_circuit():
    small = benchmark_circuit("c7552", scale=0.1)
    large = benchmark_circuit("c7552", scale=0.3)
    assert len(small) < len(large)


def test_multiplier_is_structural():
    n = benchmark_circuit("c6288", scale=1.0)
    assert len(n.inputs) == 32
    assert n.name == "c6288"


def test_unknown_name_rejected():
    with pytest.raises(KeyError):
        benchmark_circuit("c17")


def test_bad_scale_rejected():
    with pytest.raises(ValueError):
        benchmark_circuit("c3540", scale=0.0)
    with pytest.raises(ValueError):
        benchmark_circuit("c3540", scale=1.5)


def test_suite_builder():
    suite = benchmark_suite(scale=0.05)
    assert set(suite) == set(BENCHMARK_NAMES)
