"""Scheduler-level fault drills: every failure is a verdict, not a crash.

The batch layer's contract under injected faults: a dead worker, an
expiring deadline or a store that raises on write must each surface as
per-job verdicts in a completed report -- ``run_batch`` itself never
raises for them.
"""

import json

import pytest

from repro.batch.manifest import MANIFEST_SCHEMA_NAME
from repro.batch.scheduler import run_batch
from repro.cli import main as cli_main
from repro.robust import faults

CIRCUIT = "s5378"
SCALE = 0.1

SMALL_DEFAULTS = {
    "verb": "partition",
    "scale": SCALE,
    "seed": 1994,
    "n_solutions": 1,
    "seeds_per_carve": 2,
    "devices_per_carve": 2,
}


def _manifest(jobs, name="faulty"):
    return {
        "schema": MANIFEST_SCHEMA_NAME,
        "name": name,
        "defaults": SMALL_DEFAULTS,
        "jobs": jobs,
    }


TWO_JOBS = _manifest(
    [
        {"circuit": CIRCUIT, "threshold": "inf"},
        {"circuit": CIRCUIT, "threshold": 1},
    ]
)


# ---------------------------------------------------------------------------
# Fault-spec serialization (what rides the worker initializers)
# ---------------------------------------------------------------------------


def test_fault_spec_round_trip():
    fault = faults.Fault(
        "fm.run",
        error=RuntimeError,
        match={"style": "functional"},
        after=2,
        times=1,
        exit_code=None,
    )
    rebuilt = faults.Fault.from_spec(fault.spec())
    assert rebuilt.site == "fm.run"
    assert rebuilt.error is RuntimeError
    assert rebuilt.match == {"style": "functional"}
    assert (rebuilt.after, rebuilt.times) == (2, 1)
    assert rebuilt.hits == 0  # counters never travel


def test_error_instance_degrades_to_class_in_spec():
    fault = faults.Fault("fm.run", error=ValueError("specific message"))
    rebuilt = faults.Fault.from_spec(fault.spec())
    assert rebuilt.error is ValueError


def test_export_and_install_spec(monkeypatch):
    assert faults.export_spec() == []
    with faults.inject(faults.Fault("fm.run", error=RuntimeError)):
        spec = faults.export_spec()
        assert len(spec) == 1 and spec[0]["site"] == "fm.run"
    assert faults.export_spec() == []
    assert faults.install_spec([]) is None
    plan = faults.install_spec(spec)
    try:
        assert faults.active()
        with pytest.raises(RuntimeError):
            faults.maybe_fire("fm.run")
    finally:
        faults._ACTIVE.remove(plan)


def test_exit_code_fault_requires_no_error():
    fault = faults.Fault("fm.run", exit_code=1)
    assert fault.spec()["exit_code"] == 1
    with pytest.raises(ValueError):
        faults.Fault("fm.run")  # no error, delay or exit_code


# ---------------------------------------------------------------------------
# Worker death mid-wave (the hard kill: os._exit in the child)
# ---------------------------------------------------------------------------


def test_pool_worker_death_yields_failed_verdicts(tmp_path):
    # The fault spec travels through the pool initializer into every
    # worker; each worker hard-exits on its first carve, breaking the
    # pool. The batch must complete with per-job failed verdicts.
    with faults.inject(faults.Fault("kway.carve", exit_code=17)):
        report = run_batch(
            TWO_JOBS, jobs=2, cache="use", cache_dir=str(tmp_path / "c")
        )
    assert len(report.outcomes) == 2
    counts = report.counts("status")
    assert counts.get("failed", 0) >= 1
    assert counts.get("failed", 0) + counts.get("skipped", 0) == 2
    for outcome in report.outcomes:
        if outcome.status == "failed":
            assert "worker died" in outcome.error


# ---------------------------------------------------------------------------
# Deadline expiry during dispatch
# ---------------------------------------------------------------------------


def test_pool_deadline_expiry_skips_not_crashes(tmp_path):
    report = run_batch(
        TWO_JOBS,
        jobs=2,
        cache="use",
        cache_dir=str(tmp_path / "c"),
        deadline=0.0,
    )
    assert report.counts("status") == {"skipped": 2}
    assert all("deadline" in o.error for o in report.outcomes)


# ---------------------------------------------------------------------------
# Cache store raising on write
# ---------------------------------------------------------------------------


def test_store_write_fault_fails_job_not_batch(tmp_path):
    with faults.inject(faults.Fault("store.partial_write", error=OSError)):
        report = run_batch(
            TWO_JOBS, cache="use", cache_dir=str(tmp_path / "c")
        )
    assert len(report.outcomes) == 2
    assert report.counts("status") == {"failed": 2}
    assert all("OSError" in o.error for o in report.outcomes)


def test_store_write_fault_once_leaves_batch_mostly_ok(tmp_path):
    with faults.inject(
        faults.Fault("store.partial_write", error=OSError, times=1)
    ):
        report = run_batch(
            TWO_JOBS, cache="use", cache_dir=str(tmp_path / "c")
        )
    counts = report.counts("status")
    assert counts.get("failed") == 1
    assert counts.get("ok") == 1


# ---------------------------------------------------------------------------
# CLI exit codes: nonzero on failure, --keep-going restores 0
# ---------------------------------------------------------------------------


@pytest.fixture
def failing_manifest(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(
        json.dumps(
            _manifest(
                [
                    {"circuit": CIRCUIT, "threshold": 1},
                    {"circuit": "no_such_circuit"},
                ]
            )
        )
    )
    return str(path)


def test_cli_batch_run_exits_nonzero_on_failure(failing_manifest, tmp_path):
    args = [
        "batch", "run", failing_manifest,
        "--cache-dir", str(tmp_path / "c"), "--quiet",
    ]
    assert cli_main(args) == 1
    assert cli_main(args + ["--keep-going"]) == 0


def test_cli_batch_run_exits_zero_when_clean(tmp_path):
    path = tmp_path / "ok.json"
    path.write_text(json.dumps(_manifest([{"circuit": CIRCUIT}])))
    args = [
        "batch", "run", str(path),
        "--cache-dir", str(tmp_path / "c"), "--quiet",
    ]
    assert cli_main(args) == 0
