"""Tests for result records and serialization."""

import json

from repro.core.results import BipartitionReport, KWayReport, dump_reports


def _bireport():
    return BipartitionReport(
        circuit="x",
        algorithm="fm",
        runs=3,
        cuts=[10, 8, 9],
        replicated_counts=[0, 0, 0],
        elapsed_seconds=1.25,
        n_cells=100,
    )


def test_bipartition_aggregates():
    report = _bireport()
    assert report.best_cut == 8
    assert report.avg_cut == 9.0
    assert report.avg_replicated == 0.0


def test_bipartition_dict():
    data = _bireport().as_dict()
    assert data["best_cut"] == 8
    assert data["elapsed_s"] == 1.25


def test_kway_report_dict():
    report = KWayReport(
        circuit="x",
        threshold=float("inf"),
        k=3,
        total_cost=100.0,
        device_counts={"D": 3},
        avg_clb_utilization=0.8,
        avg_iob_utilization=0.6,
        replicated_fraction=0.0,
        n_cells=10,
        n_instances=10,
        feasible=True,
        elapsed_seconds=0.5,
    )
    data = report.as_dict()
    assert data["threshold"] == "inf"
    assert data["k"] == 3


def test_kway_report_finite_threshold():
    report = KWayReport(
        circuit="x",
        threshold=2.0,
        k=1,
        total_cost=1.0,
        device_counts={},
        avg_clb_utilization=0.1,
        avg_iob_utilization=0.1,
        replicated_fraction=0.1,
        n_cells=1,
        n_instances=1,
        feasible=True,
        elapsed_seconds=0.0,
    )
    assert report.as_dict()["threshold"] == 2.0


def test_dump_reports_roundtrip(tmp_path):
    path = str(tmp_path / "out.json")
    dump_reports([_bireport(), _bireport()], path)
    with open(path) as handle:
        data = json.load(handle)
    assert len(data) == 2
    assert data[0]["circuit"] == "x"
