"""Tests for the FlowMap depth-optimal mapper."""

import random

import pytest

from repro.netlist.benchmarks import benchmark_circuit
from repro.netlist.gates import GateType
from repro.netlist.generate import array_multiplier, ripple_adder
from repro.netlist.netlist import Netlist
from repro.techmap.cover import cover_netlist
from repro.techmap.decompose import decompose_netlist
from repro.techmap.flowmap import flowmap_cover, lut_depth
from repro.techmap.mapped import technology_map
from tests.conftest import random_small_netlist


class TestLabels:
    def test_chain_labels(self):
        # A 12-long AND chain with one fresh input per stage packs into
        # ceil(12/4)-ish levels of 5-input LUTs: labels grow slowly.
        n = Netlist("chain")
        n.add_input("x0")
        prev = "x0"
        for i in range(12):
            n.add_input(f"y{i}")
            name = f"g{i}"
            n.add_gate(name, GateType.AND, [prev, f"y{i}"])
            prev = name
        n.add_output(prev)
        luts, labels = flowmap_cover(n, k=5)
        assert labels[prev] <= 4
        assert lut_depth(luts, n) == labels[prev]

    def test_single_lut_circuit(self):
        n = Netlist("one")
        for pi in "abcd":
            n.add_input(pi)
        n.add_gate("g1", GateType.AND, ["a", "b"])
        n.add_gate("g2", GateType.OR, ["c", "d"])
        n.add_gate("y", GateType.XOR, ["g1", "g2"])
        n.add_output("y")
        luts, labels = flowmap_cover(n, k=5)
        assert labels["y"] == 1
        assert len([l for l in luts if l.root == "y"]) == 1
        assert sorted(luts[0].support) == ["a", "b", "c", "d"] or len(luts) >= 1

    def test_wide_gate_rejected(self):
        n = Netlist("wide")
        pis = [f"i{k}" for k in range(8)]
        for pi in pis:
            n.add_input(pi)
        n.add_gate("y", GateType.AND, pis)
        n.add_output("y")
        with pytest.raises(ValueError, match="decompose"):
            flowmap_cover(n, k=5)


class TestDepthOptimality:
    @pytest.mark.parametrize("width", [8, 16])
    def test_beats_greedy_depth(self, width):
        d = decompose_netlist(ripple_adder(f"add{width}", width))
        greedy = cover_netlist(d)
        flow, _ = flowmap_cover(d)
        assert lut_depth(flow, d) <= lut_depth(greedy, d)

    def test_depth_matches_labels(self):
        d = decompose_netlist(random_small_netlist(3, n_gates=60))
        luts, labels = flowmap_cover(d)
        mapped_roots = {l.root for l in luts if l.support}
        assert lut_depth(luts, d) <= max(
            (labels[r] for r in mapped_roots), default=0
        )

    def test_support_bound(self):
        d = decompose_netlist(random_small_netlist(5, n_gates=80))
        luts, _ = flowmap_cover(d, k=5)
        for lut in luts:
            assert len(lut.support) <= 5


class TestEquivalence:
    def test_multiplier(self):
        n = array_multiplier("m", 3)
        mapped = technology_map(n, mapper="depth")
        rng = random.Random(1)
        for _ in range(25):
            vec = {pi: rng.randrange(2) for pi in n.inputs}
            assert n.simulate([vec]) == mapped.simulate([vec])

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuits(self, seed):
        n = random_small_netlist(seed, n_gates=40)
        mapped = technology_map(n, mapper="depth")
        rng = random.Random(seed + 9)
        for _ in range(6):
            vec = {pi: rng.randrange(2) for pi in n.inputs}
            assert n.simulate([vec]) == mapped.simulate([vec])

    def test_sequential(self, seq_netlist):
        mapped = technology_map(seq_netlist, mapper="depth")
        vecs = [{"en": 1}] * 6
        assert seq_netlist.simulate(vecs) == mapped.simulate(vecs)

    def test_benchmark_small(self):
        n = benchmark_circuit("s5378", scale=0.06, seed=5)
        mapped = technology_map(n, mapper="depth")
        rng = random.Random(7)
        vecs = [{pi: rng.randrange(2) for pi in n.inputs} for _ in range(6)]
        assert n.simulate(vecs) == mapped.simulate(vecs)

    def test_unknown_mapper_rejected(self, tiny_netlist):
        with pytest.raises(ValueError, match="mapper"):
            technology_map(tiny_netlist, mapper="magic")


class TestFlowNetwork:
    def test_simple_max_flow(self):
        from repro.techmap.flowmap import _FlowNetwork

        net = _FlowNetwork()
        s, a, b, t = (net.add_node() for _ in range(4))
        net.add_edge(s, a, 2)
        net.add_edge(s, b, 1)
        net.add_edge(a, t, 1)
        net.add_edge(b, t, 2)
        assert net.max_flow(s, t, limit=10) == 2

    def test_flow_limit_stops_early(self):
        from repro.techmap.flowmap import _FlowNetwork

        net = _FlowNetwork()
        s, t = net.add_node(), net.add_node()
        for _ in range(5):
            m = net.add_node()
            net.add_edge(s, m, 1)
            net.add_edge(m, t, 1)
        # limit=2 allows the flow to be pushed to at most 3 before aborting.
        assert net.max_flow(s, t, limit=2) == 3

    def test_reachability_after_flow(self):
        from repro.techmap.flowmap import _FlowNetwork

        net = _FlowNetwork()
        s, m, t = (net.add_node() for _ in range(3))
        net.add_edge(s, m, 1)
        net.add_edge(m, t, 1)
        net.max_flow(s, t, limit=10)
        reach = net.reachable_from(s)
        assert s in reach and t not in reach
