"""Regenerate the FM / replication-engine golden files.

The goldens freeze the *reference* engines' outputs (which are themselves
frozen pre-optimization behavior, see :mod:`repro.partition.reference`) on a
deterministic family of random hypergraphs.  The optimized engines must
reproduce every case bit-identically; ``tests/test_fm_equivalence.py``
enforces this.

Run from the repo root::

    PYTHONPATH=src:. python tests/golden/regenerate.py

Only regenerate when a behavior change is *intended* and has already been
applied to both the optimized and the reference engines.
"""

from __future__ import annotations

import json
import os
import random

from repro.partition.fm import FMConfig
from repro.partition.reference import (
    reference_fm_bipartition,
    reference_replication_bipartition,
)
from repro.partition.fm_replication import ReplicationConfig

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "fm_golden.json")

#: (case generator seed, engine seed) pairs; mixed so neither is degenerate.
N_CASES = 24


def case_hypergraph(case_seed: int):
    from tests.test_gain_model import _random_hypergraph

    return _random_hypergraph(random.Random(case_seed * 7919 + 13))


def fm_case_configs(case_seed: int, total_weight: int):
    lo, hi = max(1, total_weight // 4), max(1, total_weight // 2)
    return {
        "plain": FMConfig(seed=case_seed),
        "bounds": FMConfig(seed=case_seed + 1, side0_bounds=(lo, hi)),
        "fixed": FMConfig(seed=case_seed + 2, fixed={0: 1}),
        "tight": FMConfig(seed=case_seed + 3, balance_tolerance=0.001),
    }


def replication_case_configs(case_seed: int, total_weight: int):
    lo, hi = max(1, total_weight // 4), max(1, total_weight // 2)
    return {
        "functional": ReplicationConfig(seed=case_seed, threshold=0),
        "traditional": ReplicationConfig(
            seed=case_seed + 1, style="traditional", threshold=1
        ),
        "none": ReplicationConfig(seed=case_seed + 2, style="none"),
        "bounds_fixed": ReplicationConfig(
            seed=case_seed + 3,
            threshold=1,
            side0_bounds=(lo, hi),
            fixed={0: 1},
        ),
        "growth_cap": ReplicationConfig(
            seed=case_seed + 4, threshold=0, max_growth=0.1
        ),
        "cold_start": ReplicationConfig(
            seed=case_seed + 5, threshold=0, warm_start_moves_only=False
        ),
    }


def main() -> None:
    cases = []
    for case_seed in range(N_CASES):
        hg = case_hypergraph(case_seed)
        total = hg.total_clb_weight()
        record = {"case_seed": case_seed, "fm": {}, "replication": {}}
        for label, config in fm_case_configs(case_seed, total).items():
            result = reference_fm_bipartition(hg, config)
            record["fm"][label] = {
                "assignment": result.assignment,
                "cut_size": result.cut_size,
                "passes": result.passes,
            }
        for label, config in replication_case_configs(case_seed, total).items():
            result = reference_replication_bipartition(hg, config)
            record["replication"][label] = {
                "sides": result.sides,
                "replicas": sorted(
                    [v, s, o] for v, (s, o) in result.replicas.items()
                ),
                "cut_size": result.cut_size,
            }
        cases.append(record)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump({"n_cases": N_CASES, "cases": cases}, fh, indent=1)
    print(f"wrote {GOLDEN_PATH} ({N_CASES} cases)")


if __name__ == "__main__":
    main()
