"""Run diffing: tolerance semantics, verdicts, gating, renderings."""

import pytest

from repro.obs.compare import (
    DECREASE_BAD,
    INCREASE_BAD,
    MetricDelta,
    RunDiff,
    Tolerance,
    diff_records,
    flatten,
    gate_exit_code,
    parse_tolerance,
    render_html,
    render_text,
)
from repro.obs.ledger import build_record


def _record(quality, seed=1, config=None, **kwargs):
    return build_record(
        kind="partition",
        circuit="c880",
        netlist_hash="abc123",
        config=config or {"verb": "partition", "threshold": 1},
        seed=seed,
        quality=quality,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# flatten / tolerances
# ---------------------------------------------------------------------------


def test_flatten_nested_structures():
    flat = flatten({"a": {"b": 1}, "c": [10, {"d": 2}]})
    assert flat == {"a.b": 1, "c.0": 10, "c.1.d": 2}


def test_parse_tolerance_forms():
    metric, tol = parse_tolerance("total_cost=5%")
    assert metric == "total_cost"
    assert tol.rel_tol == pytest.approx(0.05) and tol.abs_tol == 0.0
    assert tol.worse == INCREASE_BAD  # inherits the default direction

    _, tol = parse_tolerance("avg_clb_utilization=+0.01")
    assert tol.abs_tol == pytest.approx(0.01) and tol.worse == DECREASE_BAD

    metric, tol = parse_tolerance("quality.avg_cut=2%+0.5")
    assert metric == "quality.avg_cut"
    assert tol.rel_tol == pytest.approx(0.02)
    assert tol.abs_tol == pytest.approx(0.5)

    with pytest.raises(ValueError):
        parse_tolerance("no-equals-sign")


# ---------------------------------------------------------------------------
# verdict ladder
# ---------------------------------------------------------------------------


def test_identical_runs_diff_identical():
    a = _record({"total_cost": 100.0, "k": 2})
    b = _record({"total_cost": 100.0, "k": 2})
    diff = diff_records(a, b)
    assert diff.verdict == "identical"
    assert not diff.changed() and not diff.warnings
    assert gate_exit_code(diff) == 0
    assert gate_exit_code(diff, strict=True) == 0


def test_regression_in_bad_direction():
    diff = diff_records(
        _record({"total_cost": 100.0}), _record({"total_cost": 110.0})
    )
    assert diff.verdict == "regression"
    assert gate_exit_code(diff) == 1
    (delta,) = diff.regressions()
    assert delta.metric == "quality.total_cost"
    assert delta.delta == pytest.approx(10.0)
    assert delta.rel_delta == pytest.approx(0.10)


def test_improvement_in_good_direction():
    diff = diff_records(
        _record({"total_cost": 100.0}), _record({"total_cost": 90.0})
    )
    assert diff.verdict == "improved"
    assert gate_exit_code(diff) == 0
    # strict mode flags improvements too (golden refresh wanted)
    assert gate_exit_code(diff, strict=True) == 1


def test_within_tolerance_is_ok():
    diff = diff_records(
        _record({"total_cost": 100.0}),
        _record({"total_cost": 104.0}),
        tolerances={"total_cost": Tolerance(rel_tol=0.05, worse=INCREASE_BAD)},
    )
    assert diff.verdict == "ok"
    assert gate_exit_code(diff) == 0


def test_directionless_out_of_band_is_drift():
    diff = diff_records(
        _record({"custom_metric": 1.0}), _record({"custom_metric": 2.0})
    )
    assert diff.verdict == "drift"
    assert gate_exit_code(diff) == 1


def test_feasibility_flip_is_regression():
    diff = diff_records(
        _record({"feasible": True}), _record({"feasible": False})
    )
    assert diff.verdict == "regression"
    reverse = diff_records(
        _record({"feasible": False}), _record({"feasible": True})
    )
    assert reverse.verdict == "improved"


def test_removed_metric_is_regression_added_is_drift():
    diff = diff_records(
        _record({"total_cost": 1.0, "old": 5}), _record({"total_cost": 1.0})
    )
    assert diff.verdict == "regression"
    diff = diff_records(
        _record({"total_cost": 1.0}), _record({"total_cost": 1.0, "new": 5})
    )
    assert diff.verdict == "drift"


def test_worst_status_wins():
    diff = diff_records(
        _record({"total_cost": 100.0, "avg_clb_utilization": 0.8}),
        _record({"total_cost": 90.0, "avg_clb_utilization": 0.7}),
    )
    # improvement on cost, regression on utilization -> regression overall
    assert diff.verdict == "regression"


def test_decrease_bad_direction():
    diff = diff_records(
        _record({"avg_clb_utilization": 0.80}),
        _record({"avg_clb_utilization": 0.70}),
    )
    assert diff.verdict == "regression"


def test_identity_mismatches_become_warnings_not_failures():
    a = _record({"total_cost": 1.0}, seed=1)
    b = _record({"total_cost": 1.0}, seed=2)
    diff = diff_records(a, b)
    assert diff.verdict == "identical"
    assert any("seed differs" in w for w in diff.warnings)


def test_carve_convergence_is_compared():
    conv_a = {"carves": [{"level": 0, "cut": 30}], "pass_series": []}
    conv_b = {"carves": [{"level": 0, "cut": 40}], "pass_series": []}
    diff = diff_records(
        _record({"k": 2}, convergence=conv_a),
        _record({"k": 2}, convergence=conv_b),
    )
    assert diff.verdict == "regression"
    assert any("carves" in d.metric for d in diff.regressions())


def test_pass_series_is_not_compared():
    conv_a = {"carves": [], "pass_series": [{"gains": [5, 1]}]}
    conv_b = {"carves": [], "pass_series": [{"gains": [9, 9, 9]}]}
    diff = diff_records(
        _record({"k": 2}, convergence=conv_a),
        _record({"k": 2}, convergence=conv_b),
    )
    assert diff.verdict == "identical"


def test_as_dict_shape():
    diff = diff_records(
        _record({"total_cost": 100.0}), _record({"total_cost": 110.0})
    )
    payload = diff.as_dict()
    assert payload["verdict"] == "regression"
    assert payload["metrics_compared"] == len(diff.metrics)
    assert payload["changed"][0]["metric"] == "quality.total_cost"


# ---------------------------------------------------------------------------
# renderings
# ---------------------------------------------------------------------------


def test_render_text_mentions_verdict_and_metric():
    diff = diff_records(
        _record({"total_cost": 100.0}), _record({"total_cost": 110.0})
    )
    text = render_text(diff)
    assert "regression" in text and "quality.total_cost" in text
    assert "100" in text and "110" in text


def test_render_text_show_same_lists_everything():
    diff = diff_records(_record({"k": 2}), _record({"k": 2}))
    assert "quality.k" not in render_text(diff)
    assert "quality.k" in render_text(diff, show_same=True)


def test_render_html_is_self_contained():
    record = _record(
        {"total_cost": 100.0, "k": 2},
        convergence={
            "carves": [
                {"level": 0, "cut": 30, "terminals": 40},
                {"level": 1, "cut": 0, "terminals": None, "final": True},
            ],
            "pass_series": [{"engine": "fm", "seed": 1, "gains": [8, 2, 0]}],
        },
    )
    diff = diff_records(record, record)
    page = render_html([record], [diff], title="t <script>")
    assert page.startswith("<!DOCTYPE html>")
    assert "<script" not in page.split("t &lt;script&gt;")[1]  # escaped, no JS
    assert "<svg" in page and "polyline" in page
    assert "cut per carve level" in page and "fm pass gains" in page
    assert "verdict-identical" in page


def test_render_html_without_curves_degrades():
    record = _record({"total_cost": 1.0})
    page = render_html([record])
    assert "no curves" in page


def test_run_diff_verdict_empty_metrics():
    assert RunDiff("a", "b").verdict == "identical"
    assert RunDiff("a", "b", metrics=[
        MetricDelta("m", 1, 2, "within", 1.0, 1.0)
    ]).verdict == "ok"
