"""Tests for the multilevel clustering extension."""

import random

import pytest

from repro.hypergraph.metrics import cut_size, partition_clb_sizes
from repro.partition.clustering import (
    MultilevelConfig,
    coarsen_once,
    multilevel_bipartition,
)
from repro.partition.fm import FMConfig, fm_bipartition


class TestCoarsening:
    def test_reduces_cell_count(self, small_hg):
        coarse, mapping = coarsen_once(small_hg, random.Random(1))
        assert coarse.n_cells < small_hg.n_cells
        coarse.check()

    def test_mapping_partitions_fine_nodes(self, small_hg):
        coarse, mapping = coarsen_once(small_hg, random.Random(1))
        seen = [f for group in mapping for f in group]
        assert sorted(seen) == list(range(len(small_hg.nodes)))

    def test_weights_conserved(self, small_hg):
        coarse, mapping = coarsen_once(small_hg, random.Random(2))
        assert coarse.total_clb_weight() == small_hg.total_clb_weight()

    def test_terminals_not_clustered(self, small_hg_terms):
        coarse, mapping = coarsen_once(small_hg_terms, random.Random(1))
        assert coarse.n_terminals == small_hg_terms.n_terminals

    def test_groups_at_most_pairs(self, small_hg):
        _, mapping = coarsen_once(small_hg, random.Random(3))
        for group in mapping:
            assert 1 <= len(group) <= 2

    def test_internal_nets_vanish(self, small_hg):
        coarse, _ = coarsen_once(small_hg, random.Random(1))
        for net in coarse.nets:
            if net.name.startswith("__stub"):
                continue
            assert len(net.node_indices()) >= 2


class TestMultilevel:
    def test_assignment_valid(self, small_hg):
        result = multilevel_bipartition(small_hg, MultilevelConfig(seed=1))
        assert len(result.assignment) == len(small_hg.nodes)
        assert set(result.assignment) <= {0, 1}
        assert cut_size(small_hg, result.assignment) == result.cut_size

    def test_balance_respected(self, small_hg):
        config = MultilevelConfig(seed=1, balance_tolerance=0.05)
        result = multilevel_bipartition(small_hg, config)
        sizes = partition_clb_sizes(small_hg, result.assignment)
        total = small_hg.total_clb_weight()
        assert abs(sizes.get(0, 0) - total / 2) <= max(1, 0.05 * total) + 1

    def test_competitive_with_flat_fm_on_average(self, small_hg):
        # On tiny graphs flat FM is near-optimal already; multilevel must
        # stay in the same ballpark on average (it shines on large graphs,
        # exercised by benchmarks/bench_ablation_multilevel.py).
        flats = [fm_bipartition(small_hg, FMConfig(seed=s)).cut_size for s in range(4)]
        mls = [
            multilevel_bipartition(small_hg, MultilevelConfig(seed=s)).cut_size
            for s in range(4)
        ]
        assert sum(mls) / len(mls) <= 1.25 * sum(flats) / len(flats)

    def test_replication_refine(self, small_hg):
        result = multilevel_bipartition(
            small_hg, MultilevelConfig(seed=1, replication_refine=True)
        )
        assert result.replication is not None
        assert result.final_cut <= result.cut_size

    def test_deterministic(self, small_hg):
        a = multilevel_bipartition(small_hg, MultilevelConfig(seed=7))
        b = multilevel_bipartition(small_hg, MultilevelConfig(seed=7))
        assert a.assignment == b.assignment

    def test_tiny_graph_short_circuit(self):
        from tests.conftest import make_cell_hypergraph

        hg = make_cell_hypergraph(
            [
                {"name": "a", "inputs": [], "outputs": ["n1"], "supports": [()]},
                {"name": "b", "inputs": ["n1"], "outputs": ["n2"], "supports": [(0,)]},
            ]
        )
        result = multilevel_bipartition(hg, MultilevelConfig(seed=0, min_nodes=64))
        assert result.levels == 1  # no coarsening needed
