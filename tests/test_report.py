"""Tests for the report formatting helpers."""

import pytest

from repro.core.results import BipartitionReport
from repro.netlist.benchmarks import benchmark_circuit
from repro.partition.devices import Device, DeviceLibrary
from repro.partition.kway import KWayConfig, partition_heterogeneous
from repro.partition.report import bipartition_report, solution_report
from repro.techmap.mapped import technology_map

LIB = DeviceLibrary(
    [
        Device("T16", 16, 24, 10, util_upper=0.95),
        Device("T64", 64, 52, 30, util_upper=0.95),
    ]
)


@pytest.fixture(scope="module")
def solution():
    mapped = technology_map(benchmark_circuit("s5378", scale=0.1, seed=7))
    return partition_heterogeneous(
        mapped, KWayConfig(library=LIB, threshold=1, seed=3, seeds_per_carve=1)
    )


def test_solution_report_contains_blocks(solution):
    text = solution_report(solution)
    assert "total cost" in text
    for block in solution.blocks:
        assert block.device.name in text
    assert text.count("\n") >= solution.k + 3


def test_bipartition_report_format():
    reports = [
        BipartitionReport("x", "fm", 2, [10, 12], [0, 0], 0.5, 99),
        BipartitionReport("x", "fm+functional", 2, [7, 9], [3, 4], 1.0, 99),
    ]
    text = bipartition_report(reports)
    assert "fm+functional" in text
    assert "+27.3% avg" in text  # (11 - 8) / 11


def test_bipartition_report_empty():
    assert "(no runs)" in bipartition_report([])
