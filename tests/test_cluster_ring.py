"""Consistent-hash ring placement and Merkle digest trees."""

import pytest

from repro.cluster.merkle import (
    VOLATILE_ENTRY_FIELDS,
    diff_buckets,
    digest_tree,
    entry_digest,
    key_digests,
)
from repro.cluster.ring import HashRing


NODES = ["node-0", "node-1", "node-2"]


# ---------------------------------------------------------------------------
# HashRing
# ---------------------------------------------------------------------------


def test_ring_placement_is_deterministic_across_instances():
    a = HashRing(NODES)
    b = HashRing(list(NODES))
    for key in ("aa11", "bb22", "cc33", "deadbeef"):
        assert a.nodes_for(key, 3) == b.nodes_for(key, 3)


def test_preference_list_is_distinct_and_clamped():
    ring = HashRing(NODES)
    pref = ring.nodes_for("somekey", 3)
    assert sorted(pref) == sorted(NODES)  # all members, no repeats
    assert ring.nodes_for("somekey", 99) == pref  # clamped to member count
    assert ring.nodes_for("somekey", 1) == pref[:1]


def test_ring_balances_keys_across_nodes():
    ring = HashRing(NODES)
    owners = [ring.nodes_for(f"key-{i:04d}", 1)[0] for i in range(300)]
    counts = {name: owners.count(name) for name in NODES}
    assert all(count > 0 for count in counts.values())
    # vnodes keep the imbalance moderate: no node owns > 60% of keys.
    assert max(counts.values()) <= 180


def test_membership_change_moves_few_keys():
    small = HashRing(NODES)
    grown = HashRing(NODES + ["node-3"])
    keys = [f"key-{i:04d}" for i in range(200)]
    moved = sum(
        1
        for k in keys
        if small.nodes_for(k, 1) != grown.nodes_for(k, 1)
        and grown.nodes_for(k, 1)[0] != "node-3"
    )
    assert moved == 0  # keys only ever move TO the new node


def test_primary_for_skips_downed_nodes():
    ring = HashRing(NODES)
    key = "somekey"
    full = ring.nodes_for(key, 3)
    assert ring.primary_for(key) == full[0]
    up = lambda name: name != full[0]  # noqa: E731
    assert ring.primary_for(key, up=up) == full[1]
    assert ring.primary_for(key, up=lambda name: False) is None


def test_successor_skips_excluded_and_down():
    ring = HashRing(NODES)
    key = "somekey"
    full = ring.nodes_for(key, 3)
    assert ring.successor(key, exclude=[full[0]]) == full[1]
    assert (
        ring.successor(key, exclude=[full[0]], up=lambda n: n != full[1])
        == full[2]
    )
    assert ring.successor(key, exclude=full) is None


def test_ring_rejects_bad_membership():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(["a", "a"])
    with pytest.raises(ValueError):
        HashRing(["a"], vnodes=0)


# ---------------------------------------------------------------------------
# Merkle digests
# ---------------------------------------------------------------------------


class _FakeStore:
    """Just enough of SolutionCache for digesting: entries() + get()."""

    def __init__(self, entries):
        self._entries = {e["key"]: e for e in entries}

    def entries(self):
        return [(k, f"/x/{k}.json", 1, 0.0) for k in sorted(self._entries)]

    def get(self, key):
        return self._entries.get(key)


def _entry(key, seed=1, ts=100.0):
    return {"key": key, "seed": seed, "created_ts": ts, "solution": {"s": seed}}


def test_entry_digest_ignores_volatile_fields():
    assert "created_ts" in VOLATILE_ENTRY_FIELDS
    assert entry_digest(_entry("aa11", ts=1.0)) == entry_digest(
        _entry("aa11", ts=999.0)
    )
    assert entry_digest(_entry("aa11", seed=1)) != entry_digest(
        _entry("aa11", seed=2)
    )


def test_digest_tree_roots_agree_iff_content_agrees():
    a = _FakeStore([_entry("aa11"), _entry("bb22"), _entry("bb33")])
    b = _FakeStore([_entry("aa11", ts=5.0), _entry("bb22"), _entry("bb33")])
    ta, tb = digest_tree(a), digest_tree(b)
    assert ta["root"] == tb["root"]
    assert ta["entries"] == 3
    assert diff_buckets(ta, tb) == []

    c = _FakeStore([_entry("aa11", seed=9), _entry("bb22"), _entry("bb33")])
    tc = digest_tree(c)
    assert tc["root"] != ta["root"]
    assert diff_buckets(ta, tc) == ["aa"]  # only the divergent shard


def test_diff_buckets_covers_one_sided_shards():
    ta = digest_tree(_FakeStore([_entry("aa11")]))
    tb = digest_tree(_FakeStore([_entry("aa11"), _entry("cc44")]))
    assert diff_buckets(ta, tb) == ["cc"]


def test_key_digests_reads_through_store_get():
    store = _FakeStore([_entry("aa11"), _entry("bb22")])
    digs = key_digests(store)
    assert set(digs) == {"aa11", "bb22"}
    store._entries.pop("bb22")  # entry listed but unreadable -> skipped
    store._entries["bb22"] = None
    assert set(key_digests(store)) == {"aa11"}
