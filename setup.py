"""Legacy setup shim: lets ``pip install -e .`` work without the wheel package."""
from setuptools import setup

setup()
