"""Xilinx XC3000 technology mapping substrate.

Pipeline (see :func:`technology_map`):

1. :mod:`repro.techmap.decompose` -- break wide gates into <= 4-input nodes.
2. :mod:`repro.techmap.cover` -- cover the gate network with <= 5-input
   single-output LUT cones (duplication-free greedy cover).
3. :mod:`repro.techmap.pack` -- merge flip-flops into their driving cones and
   pair LUTs into two-output CLBs under the XC3000 sharing rule (each
   function <= 4 inputs, <= 5 distinct inputs per CLB).
4. :mod:`repro.techmap.mapped` -- the resulting :class:`MappedNetlist` of
   multi-output cells with per-output adjacency (support) vectors.
"""

from repro.techmap.decompose import decompose_netlist
from repro.techmap.cover import cover_netlist, Lut
from repro.techmap.pack import pack_cells
from repro.techmap.mapped import MappedCell, MappedNetlist, technology_map

__all__ = [
    "decompose_netlist",
    "cover_netlist",
    "Lut",
    "pack_cells",
    "MappedCell",
    "MappedNetlist",
    "technology_map",
]
