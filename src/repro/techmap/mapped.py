"""The mapped netlist: multi-output CLB cells with adjacency vectors.

This is the circuit representation the paper's algorithms actually operate
on (its hypergraph H = ({X; Y}, E) is built from it): a set of cells (one
XC3000 CLB each) with one or two outputs, per-output input support --- the
**adjacency vectors** of Section II --- plus IOB terminals for primary I/O.

The mapped netlist keeps full truth tables, so it is simulatable; tests use
this to prove the mapping pipeline preserves circuit functionality.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.netlist.netlist import Netlist
from repro.techmap.cover import cover_netlist
from repro.techmap.decompose import decompose_netlist
from repro.techmap.pack import pack_cells


@dataclass
class MappedCell:
    """One technology-mapped cell (one CLB).

    Attributes
    ----------
    name: unique cell name.
    inputs: ordered distinct input net names (the cell's input pins).
    outputs: output net names (1 or 2; the cell's output pins).
    supports: per-output list of input nets the output depends on.
    masks: per-output truth table over the output's own support.
    registered: per-output flag; True when the output is a flip-flop Q.
    """

    name: str
    inputs: List[str]
    outputs: List[str]
    supports: List[List[str]]
    masks: List[int]
    registered: List[bool]

    @property
    def n_outputs(self) -> int:
        return len(self.outputs)

    @property
    def n_pins(self) -> int:
        return len(self.inputs) + len(self.outputs)

    def adjacency_vector(self, output_index: int) -> Tuple[int, ...]:
        """The paper's adjacency vector A_Xi over the cell's input pins."""
        support = set(self.supports[output_index])
        return tuple(1 if net in support else 0 for net in self.inputs)

    def adjacency_vectors(self) -> List[Tuple[int, ...]]:
        return [self.adjacency_vector(i) for i in range(len(self.outputs))]

    def evaluate_output(self, output_index: int, values: Mapping[str, int]) -> int:
        """Evaluate one output's function on named input values."""
        index = 0
        for bit, net in enumerate(self.supports[output_index]):
            if values[net]:
                index |= 1 << bit
        return (self.masks[output_index] >> index) & 1


class MappedNetlist:
    """A technology-mapped circuit: cells + IOB terminals + nets."""

    def __init__(
        self,
        name: str,
        cells: Sequence[MappedCell],
        primary_inputs: Sequence[str],
        primary_outputs: Sequence[str],
    ) -> None:
        self.name = name
        self.cells: List[MappedCell] = list(cells)
        self.primary_inputs: List[str] = list(primary_inputs)
        self.primary_outputs: List[str] = list(primary_outputs)
        self._cell_of_output: Dict[str, Tuple[int, int]] = {}
        for ci, cell in enumerate(self.cells):
            for oi, net in enumerate(cell.outputs):
                if net in self._cell_of_output:
                    raise ValueError(f"net {net!r} has two drivers")
                self._cell_of_output[net] = (ci, oi)
        self._validate()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        pi_set = set(self.primary_inputs)
        for cell in self.cells:
            for net in cell.inputs:
                if net not in self._cell_of_output and net not in pi_set:
                    raise ValueError(
                        f"cell {cell.name!r} input {net!r} has no driver"
                    )
        for po in self.primary_outputs:
            if po not in self._cell_of_output and po not in pi_set:
                raise ValueError(f"primary output {po!r} has no driver")

    def driver(self, net: str) -> Optional[Tuple[int, int]]:
        """(cell index, output index) driving ``net``; None for PIs."""
        return self._cell_of_output.get(net)

    def net_sinks(self) -> Dict[str, List[Tuple[int, int]]]:
        """Map net -> list of (cell index, input pin index) readers."""
        sinks: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
        for ci, cell in enumerate(self.cells):
            for pi_idx, net in enumerate(cell.inputs):
                sinks[net].append((ci, pi_idx))
        return dict(sinks)

    def nets(self) -> Dict[str, Dict[str, object]]:
        """All live nets with their driver and sinks.

        A net is live when it has at least one reader (cell pin or PO).
        Returns ``{net: {"driver": ("pi", name) | ("cell", ci, oi),
        "sinks": [(ci, pin_idx), ...], "is_po": bool}}``.
        """
        sinks = self.net_sinks()
        po_set = set(self.primary_outputs)
        result: Dict[str, Dict[str, object]] = {}
        for net in set(sinks) | po_set:
            drv = self._cell_of_output.get(net)
            driver = ("cell", drv[0], drv[1]) if drv else ("pi", net)
            result[net] = {
                "driver": driver,
                "sinks": sinks.get(net, []),
                "is_po": net in po_set,
            }
        return result

    # ------------------------------------------------------------------
    # Table II quantities
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_iobs(self) -> int:
        return len(self.primary_inputs) + len(self.primary_outputs)

    @property
    def n_dff(self) -> int:
        return sum(sum(cell.registered) for cell in self.cells)

    @property
    def n_nets(self) -> int:
        return len(self.nets())

    @property
    def n_pins(self) -> int:
        return sum(cell.n_pins for cell in self.cells) + self.n_iobs

    @property
    def n_multi_output_cells(self) -> int:
        return sum(1 for cell in self.cells if cell.n_outputs > 1)

    # ------------------------------------------------------------------
    # Simulation (for mapping verification)
    # ------------------------------------------------------------------
    def _output_order(self) -> List[Tuple[int, int]]:
        """Topological order over combinational cell outputs."""
        indeg: Dict[Tuple[int, int], int] = {}
        dependents: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)
        for ci, cell in enumerate(self.cells):
            for oi in range(cell.n_outputs):
                if cell.registered[oi]:
                    continue
                node = (ci, oi)
                count = 0
                for net in cell.supports[oi]:
                    drv = self._cell_of_output.get(net)
                    if drv is not None and not self.cells[drv[0]].registered[drv[1]]:
                        count += 1
                        dependents[drv].append(node)
                indeg[node] = count
        order: List[Tuple[int, int]] = []
        queue = deque(node for node, d in indeg.items() if d == 0)
        while queue:
            node = queue.popleft()
            order.append(node)
            for dep in dependents.get(node, ()):
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    queue.append(dep)
        if len(order) != len(indeg):
            raise ValueError("combinational cycle in mapped netlist")
        return order

    def simulate(
        self,
        input_vectors: Sequence[Mapping[str, int]],
        initial_state: Optional[Mapping[str, int]] = None,
    ) -> List[Dict[str, int]]:
        """Cycle-accurate simulation mirroring :meth:`Netlist.simulate`."""
        state: Dict[str, int] = {}
        for cell in self.cells:
            for oi, reg in enumerate(cell.registered):
                if reg:
                    state[cell.outputs[oi]] = 0
        if initial_state:
            for key, val in initial_state.items():
                if key not in state:
                    raise KeyError(f"unknown state net {key!r}")
                state[key] = int(val)
        order = self._output_order()
        results: List[Dict[str, int]] = []
        for vec in input_vectors:
            values: Dict[str, int] = dict(state)
            for pi in self.primary_inputs:
                values[pi] = int(vec[pi])
            for ci, oi in order:
                cell = self.cells[ci]
                values[cell.outputs[oi]] = cell.evaluate_output(oi, values)
            results.append({po: values[po] for po in self.primary_outputs})
            next_state: Dict[str, int] = {}
            for cell in self.cells:
                for oi, reg in enumerate(cell.registered):
                    if reg:
                        next_state[cell.outputs[oi]] = cell.evaluate_output(oi, values)
            state = next_state
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappedNetlist({self.name!r}: {self.n_cells} CLBs, "
            f"{self.n_iobs} IOBs, {self.n_dff} DFF, {self.n_nets} nets)"
        )


def technology_map(
    netlist: Netlist,
    k: int = 5,
    max_function_inputs: int = 4,
    pair: bool = True,
    mapper: str = "area",
) -> MappedNetlist:
    """Map a gate-level netlist into XC3000-style CLB cells.

    Runs decomposition, LUT covering and CLB packing; returns the
    :class:`MappedNetlist`.  ``pair=False`` disables two-output cells
    (ablation switch; functional replication then degenerates to the
    traditional kind).  ``mapper`` selects the covering algorithm:
    ``"area"`` (duplication-free greedy, the default and the paper's
    setting) or ``"depth"`` (FlowMap, depth-optimal with duplication; see
    :mod:`repro.techmap.flowmap` -- quadratic, for small/medium circuits).
    """
    decomposed = decompose_netlist(netlist, max_fanin=min(4, k - 1))
    if mapper == "area":
        luts = cover_netlist(decomposed, k=k)
    elif mapper == "depth":
        from repro.techmap.flowmap import flowmap_cover

        luts, _ = flowmap_cover(decomposed, k=k)
    else:
        raise ValueError(f"unknown mapper {mapper!r} (use 'area' or 'depth')")
    specs = pack_cells(
        decomposed,
        luts,
        max_cell_inputs=k,
        max_function_inputs=max_function_inputs,
        pair=pair,
    )
    cells = [
        MappedCell(
            name=f"clb{idx}",
            inputs=spec.inputs,
            outputs=spec.outputs,
            supports=[list(fn.support) for fn in spec.functions],
            masks=[fn.mask for fn in spec.functions],
            registered=[fn.registered for fn in spec.functions],
        )
        for idx, spec in enumerate(specs)
    ]
    return MappedNetlist(
        name=netlist.name,
        cells=cells,
        primary_inputs=list(netlist.inputs),
        primary_outputs=list(netlist.outputs),
    )
