"""FlowMap: depth-optimal LUT covering (Cong & Ding, 1994).

An alternative to the area-greedy cover of :mod:`repro.techmap.cover`.
FlowMap computes, for every node of a K-bounded network, the minimum
possible LUT depth (its *label*) together with a K-feasible cut realizing
it, via max-flow on the node's fan-in cone:

* ``label(source) = 0`` for PIs, DFF outputs and constants;
* for a gate v with cone-maximum label p, ``label(v) = p`` iff the cone
  has a K-feasible node cut once v and every label-p node are collapsed
  into the sink (checked with unit-capacity node-split max-flow, aborted
  at K+1); otherwise ``label(v) = p + 1`` with the trivial cut fanin(v).

The mapping phase walks back from the outputs instantiating one LUT per
needed node from its stored cut; unlike the duplication-free greedy cover,
cones may overlap (logic is duplicated), the price FlowMap pays for depth
optimality.  The result plugs into the same packing/CLB pipeline, giving
the mapper ablation in ``benchmarks/bench_ablation_mapper.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.techmap.cover import Lut, _cone_mask


def _is_source(netlist: Netlist, name: str) -> bool:
    gate = netlist.gate(name)
    return not gate.is_combinational


def _cone_of(netlist: Netlist, root: str) -> Tuple[List[str], Set[str]]:
    """Internal (combinational) nodes and source nodes of root's fan-in cone."""
    internal: List[str] = []
    sources: Set[str] = set()
    seen: Set[str] = set()
    stack = [root]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        if name != root and _is_source(netlist, name):
            sources.add(name)
            continue
        internal.append(name)
        stack.extend(netlist.gate(name).fanin)
    return internal, sources


class _FlowNetwork:
    """Unit-capacity node-split flow network for the K-feasible-cut test."""

    def __init__(self) -> None:
        self.adj: List[List[int]] = []  # adjacency: edge indices
        self.to: List[int] = []
        self.cap: List[int] = []

    def add_node(self) -> int:
        self.adj.append([])
        return len(self.adj) - 1

    def add_edge(self, u: int, v: int, cap: int) -> None:
        self.adj[u].append(len(self.to))
        self.to.append(v)
        self.cap.append(cap)
        self.adj[v].append(len(self.to))
        self.to.append(u)
        self.cap.append(0)

    def max_flow(self, s: int, t: int, limit: int) -> int:
        """BFS augmenting paths, stopping once flow exceeds ``limit``."""
        flow = 0
        while flow <= limit:
            parent_edge = [-1] * len(self.adj)
            parent_edge[s] = -2
            queue = deque([s])
            while queue and parent_edge[t] == -1:
                u = queue.popleft()
                for eid in self.adj[u]:
                    v = self.to[eid]
                    if parent_edge[v] == -1 and self.cap[eid] > 0:
                        parent_edge[v] = eid
                        queue.append(v)
            if parent_edge[t] == -1:
                break
            v = t
            while v != s:
                eid = parent_edge[v]
                self.cap[eid] -= 1
                self.cap[eid ^ 1] += 1
                v = self.to[eid ^ 1]
            flow += 1
        return flow

    def reachable_from(self, s: int) -> Set[int]:
        seen = {s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for eid in self.adj[u]:
                v = self.to[eid]
                if v not in seen and self.cap[eid] > 0:
                    seen.add(v)
                    queue.append(v)
        return seen


def _k_feasible_cut(
    netlist: Netlist,
    root: str,
    internal: Sequence[str],
    sources: Set[str],
    labels: Dict[str, int],
    p: int,
    k: int,
) -> Optional[List[str]]:
    """The FlowMap cut test: a <= k node cut with v + label-p nodes collapsed.

    Returns the cut's node names (the LUT inputs) or None.
    """
    collapsed: Set[str] = {root}
    for name in internal:
        if name != root and labels[name] == p:
            collapsed.add(name)
    # Every node of the cone except the collapsed sink gets split in/out.
    members = [n for n in internal if n not in collapsed]
    members.extend(sources - collapsed)
    index: Dict[str, int] = {}
    net = _FlowNetwork()
    s = net.add_node()
    t = net.add_node()
    for name in members:
        n_in = net.add_node()
        n_out = net.add_node()
        index[name] = n_in
        net.add_edge(n_in, n_out, 1)
    big = len(members) + k + 2

    def out_of(name: str) -> int:
        return index[name] + 1

    cone_set = set(internal) | sources
    for name in internal:
        for src in netlist.gate(name).fanin:
            if src not in cone_set:
                continue
            dst = t if name in collapsed else index[name]
            if src in collapsed:
                # label-p node feeding a non-collapsed node cannot happen in
                # a legal cone (labels are monotone), but guard anyway.
                continue
            net.add_edge(out_of(src), dst, big)
    for name in sources:
        if name in collapsed:
            continue
        net.add_edge(s, index[name], big)

    flow = net.max_flow(s, t, k)
    if flow > k:
        return None
    reach = net.reachable_from(s)
    cut: List[str] = []
    for name in members:
        n_in = index[name]
        if n_in in reach and (n_in + 1) not in reach:
            cut.append(name)
    return cut


def flowmap_cover(netlist: Netlist, k: int = 5) -> Tuple[List[Lut], Dict[str, int]]:
    """Depth-optimal covering; returns (LUTs, labels of mapped roots).

    The netlist must be K-bounded (fan-ins <= k); run
    :func:`repro.techmap.decompose.decompose_netlist` first.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    order = netlist.topological_order()
    order_index = {name: i for i, name in enumerate(order)}
    labels: Dict[str, int] = {}
    cuts: Dict[str, List[str]] = {}
    const_luts: List[Lut] = []

    for name in order:
        gate = netlist.gate(name)
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            labels[name] = 0
            const_luts.append(
                Lut(
                    root=name,
                    support=[],
                    mask=1 if gate.gtype is GateType.CONST1 else 0,
                    gates={name},
                )
            )
            continue
        if not gate.is_combinational:
            labels[name] = 0
            continue
        if len(gate.fanin) > k:
            raise ValueError(
                f"gate {name!r} has fanin {len(gate.fanin)} > k={k}; "
                "run decompose_netlist first"
            )
        internal, sources = _cone_of(netlist, name)
        p = max(
            (labels[u] for u in internal if u != name),
            default=0,
        )
        cut = _k_feasible_cut(netlist, name, internal, sources, labels, p, k)
        if cut is not None:
            labels[name] = max(p, 1)
            cuts[name] = cut
        else:
            labels[name] = p + 1
            cuts[name] = list(dict.fromkeys(gate.fanin))

    # ---- mapping phase: instantiate LUTs for needed roots ----------------
    needed: Set[str] = set()
    queue: List[str] = []
    for po in netlist.outputs:
        if po in netlist and netlist.gate(po).is_combinational:
            queue.append(po)
    for ff in netlist.dffs:
        d_net = netlist.gate(ff).fanin[0]
        if d_net in netlist and netlist.gate(d_net).is_combinational:
            queue.append(d_net)
    luts: List[Lut] = list(const_luts)
    while queue:
        root = queue.pop()
        if root in needed:
            continue
        needed.add(root)
        gate = netlist.gate(root)
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            continue
        support = cuts[root]
        # Cone gates between the cut and the root.
        gates: Set[str] = set()
        stack = [root]
        support_set = set(support)
        while stack:
            u = stack.pop()
            if u in support_set or u in gates:
                continue
            if u != root and _is_source(netlist, u):
                continue
            gates.add(u)
            stack.extend(netlist.gate(u).fanin)
        mask = _cone_mask(netlist, root, list(support), gates, order_index)
        luts.append(Lut(root=root, support=list(support), mask=mask, gates=gates))
        for u in support:
            if u in netlist and netlist.gate(u).is_combinational:
                queue.append(u)
    return luts, labels


def lut_depth(luts: Sequence[Lut], netlist: Netlist) -> int:
    """LUT-level depth of a mapping (cells on the longest source-to-root path)."""
    by_root = {lut.root: lut for lut in luts}
    depth: Dict[str, int] = {}

    def depth_of(root: str) -> int:
        if root not in by_root:
            return 0
        if root in depth:
            return depth[root]
        depth[root] = 0  # cycle guard for registered feedback
        lut = by_root[root]
        value = 1 + max((depth_of(s) for s in lut.support), default=0)
        depth[root] = value
        return value

    return max((depth_of(lut.root) for lut in luts), default=0)
