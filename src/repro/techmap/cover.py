"""LUT covering: absorb single-fanout fan-in cones into <= K-input LUTs.

The cover is *duplication-free* (every gate belongs to exactly one LUT),
which matches the paper's setting: replication is a partitioning decision,
not a mapping one.  The algorithm is the classic greedy bottom-up cone
packing (Chortle-style): in topological order each gate starts as its own
cone and repeatedly absorbs the fan-in cone whose absorption yields the
smallest resulting support, while the support stays within ``k`` inputs and
the absorbed net has no other readers.

Each finished LUT records its exact truth table (computed by simulating the
covered gates over all support assignments), so mapped netlists remain
simulatable and mapping correctness is testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.netlist.gates import GateType, evaluate_gate
from repro.netlist.netlist import Netlist


@dataclass
class Lut:
    """One covered <= k-input, single-output cone.

    Attributes
    ----------
    root:
        Net name the LUT drives (the cone apex gate's name).
    support:
        Ordered list of input net names (PIs, DFF outputs, or other LUT
        roots).
    mask:
        Truth table as an integer bitmask: bit ``i`` is the output for the
        input assignment spelling ``i`` in binary, ``support[0]`` being the
        least significant bit.
    gates:
        Names of the netlist gates covered by this LUT.
    """

    root: str
    support: List[str]
    mask: int
    gates: Set[str] = field(default_factory=set)

    @property
    def k(self) -> int:
        return len(self.support)

    def evaluate(self, values: Sequence[int]) -> int:
        """Evaluate the LUT on concrete support values."""
        if len(values) != len(self.support):
            raise ValueError("value count does not match support size")
        index = 0
        for bit, value in enumerate(values):
            if value:
                index |= 1 << bit
        return (self.mask >> index) & 1


def _cone_mask(
    netlist: Netlist,
    root: str,
    support: List[str],
    gates: Set[str],
    order_index: Dict[str, int],
) -> int:
    """Truth table of the cone ``gates`` rooted at ``root`` over ``support``."""
    order = sorted(gates, key=order_index.__getitem__)
    mask = 0
    for row in range(1 << len(support)):
        values: Dict[str, int] = {
            net: (row >> bit) & 1 for bit, net in enumerate(support)
        }
        for name in order:
            gate = netlist.gate(name)
            if gate.gtype is GateType.CONST0:
                values[name] = 0
            elif gate.gtype is GateType.CONST1:
                values[name] = 1
            else:
                values[name] = evaluate_gate(
                    gate.gtype, [values[f] for f in gate.fanin]
                )
        if values[root]:
            mask |= 1 << row
    return mask


def cover_netlist(netlist: Netlist, k: int = 5) -> List[Lut]:
    """Cover all combinational gates of ``netlist`` with <= ``k``-input LUTs.

    The netlist must already be decomposed to fan-ins <= ``k`` (wide gates
    raise ``ValueError``).  Returns the LUT list; roots are exactly the nets
    that remain visible after covering (multi-fanout nets, PO nets, DFF data
    inputs).
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    fanout = netlist.fanout_map()
    outputs = set(netlist.outputs)

    # Nets that must survive as LUT roots: read by >1 gate, read by a DFF,
    # or primary outputs.
    def must_root(name: str) -> bool:
        readers = fanout.get(name, [])
        if name in outputs:
            return True
        if len(readers) != 1:
            return True
        reader = netlist.gate(readers[0])
        return reader.gtype is GateType.DFF

    cones: Dict[str, Tuple[List[str], Set[str]]] = {}
    absorbed: Set[str] = set()
    order = netlist.topological_order()
    order_index = {name: i for i, name in enumerate(order)}
    const_luts: List[Lut] = []
    for name in order:
        gate = netlist.gate(name)
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            # Constants become zero-input LUTs so every net keeps a driver.
            const_luts.append(
                Lut(
                    root=name,
                    support=[],
                    mask=1 if gate.gtype is GateType.CONST1 else 0,
                    gates={name},
                )
            )
            continue
        if not gate.is_combinational:
            continue
        if len(gate.fanin) > k:
            raise ValueError(
                f"gate {name!r} has fanin {len(gate.fanin)} > k={k}; "
                "run decompose_netlist first"
            )
        support = list(dict.fromkeys(gate.fanin))
        gates: Set[str] = {name}
        # Greedy absorption of single-fanout combinational fan-in cones.
        while True:
            best = None
            best_support: List[str] = []
            for src in support:
                src_gate = netlist.gate(src) if src in netlist else None
                if src_gate is None or not src_gate.is_combinational:
                    continue
                if must_root(src) or src in absorbed:
                    continue
                src_support, _ = cones[src]
                merged = list(dict.fromkeys(
                    [s for s in support if s != src] + src_support
                ))
                if len(merged) > k:
                    continue
                if best is None or len(merged) < len(best_support):
                    best = src
                    best_support = merged
            if best is None:
                break
            absorbed.add(best)
            _, src_gates = cones.pop(best)
            gates |= src_gates
            support = best_support
        cones[name] = (support, gates)

    luts: List[Lut] = list(const_luts)
    for root, (support, gates) in cones.items():
        if root in absorbed:
            continue
        mask = _cone_mask(netlist, root, support, gates, order_index)
        luts.append(Lut(root=root, support=support, mask=mask, gates=gates))
    return luts
