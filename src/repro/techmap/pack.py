"""CLB packing: flip-flop merging and LUT pairing (XC3000 rules).

An XC3000 CLB offers a 32-bit function generator usable as either one
function of up to 5 variables or two functions of up to 4 variables each
drawn from 5 distinct CLB inputs, plus two flip-flops driving the X/Y
outputs.  Packing therefore has two steps:

1. **FF merge** -- a D flip-flop absorbs the LUT computing its D input when
   that LUT has no other reader; otherwise the FF becomes a pass-through
   (identity) function so it can still share a CLB.
2. **LUT pairing** -- two functions may share one CLB when each has <= 4
   inputs and their combined distinct input count is <= 5.  Pairing is a
   greedy maximum-sharing matching, which maximizes input overlap between
   CLB outputs -- precisely the structure functional replication exploits.

The output is a list of :class:`CellSpec` (1 CLB each) consumed by
:mod:`repro.techmap.mapped`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.netlist.netlist import Netlist
from repro.techmap.cover import Lut


@dataclass
class FunctionSpec:
    """One single-output function destined for a CLB slot."""

    output: str
    support: List[str]
    mask: int
    registered: bool


@dataclass
class CellSpec:
    """One packed CLB: one or two functions."""

    functions: List[FunctionSpec]

    @property
    def inputs(self) -> List[str]:
        merged: List[str] = []
        for fn in self.functions:
            for net in fn.support:
                if net not in merged:
                    merged.append(net)
        return merged

    @property
    def outputs(self) -> List[str]:
        return [fn.output for fn in self.functions]


def _functions_from_mapping(netlist: Netlist, luts: Sequence[Lut]) -> List[FunctionSpec]:
    """Merge DFFs with their driving LUTs; emit one FunctionSpec per output net."""
    lut_by_root: Dict[str, Lut] = {lut.root: lut for lut in luts}

    # Readers of each net after covering: LUT supports, DFF data pins, POs.
    readers: Dict[str, int] = defaultdict(int)
    for lut in luts:
        for net in lut.support:
            readers[net] += 1
    dff_names = netlist.dffs
    for ff in dff_names:
        readers[netlist.gate(ff).fanin[0]] += 1
    for po in netlist.outputs:
        readers[po] += 1

    consumed: Set[str] = set()
    functions: List[FunctionSpec] = []
    for ff in dff_names:
        d_net = netlist.gate(ff).fanin[0]
        lut = lut_by_root.get(d_net)
        if lut is not None and readers[d_net] == 1 and d_net not in netlist.outputs:
            # The D-input cone is private to this FF: register the cone.
            consumed.add(d_net)
            functions.append(
                FunctionSpec(output=ff, support=list(lut.support), mask=lut.mask, registered=True)
            )
        else:
            # Shared D net (or PI/PO): pass-through register.
            functions.append(
                FunctionSpec(output=ff, support=[d_net], mask=0b10, registered=True)
            )
    for lut in luts:
        if lut.root in consumed:
            continue
        functions.append(
            FunctionSpec(
                output=lut.root, support=list(lut.support), mask=lut.mask, registered=False
            )
        )
    return functions


def pack_cells(
    netlist: Netlist,
    luts: Sequence[Lut],
    max_cell_inputs: int = 5,
    max_function_inputs: int = 4,
    pair: bool = True,
) -> List[CellSpec]:
    """Pack LUTs (+ FFs) of a covered netlist into CLB cells.

    Parameters
    ----------
    netlist:
        The decomposed gate netlist the LUTs cover (provides DFF and PO info).
    luts:
        Output of :func:`repro.techmap.cover.cover_netlist`.
    max_cell_inputs:
        Distinct inputs allowed per CLB (5 on XC3000).
    max_function_inputs:
        Inputs allowed per function when two functions share a CLB (4 on
        XC3000).
    pair:
        Disable to get one cell per function (useful for ablations: disables
        multi-output cells and hence functional replication's advantage).
    """
    functions = _functions_from_mapping(netlist, luts)
    if not pair:
        return [CellSpec([fn]) for fn in functions]

    # Index candidate partners by support net for fast sharing lookups.
    by_net: Dict[str, List[int]] = defaultdict(list)
    for idx, fn in enumerate(functions):
        for net in fn.support:
            by_net[net].append(idx)

    paired: List[Optional[int]] = [None] * len(functions)
    done: List[bool] = [False] * len(functions)
    # Visit large-support functions first: they are the hardest to place.
    visit_order = sorted(
        range(len(functions)), key=lambda i: -len(functions[i].support)
    )
    for idx in visit_order:
        if done[idx]:
            continue
        fn = functions[idx]
        if len(fn.support) > max_function_inputs:
            done[idx] = True  # must occupy a CLB alone (5-input function)
            continue
        support = set(fn.support)
        best_j = -1
        best_key: Tuple[int, int] = (-1, max_cell_inputs + 1)
        candidates: Set[int] = set()
        for net in fn.support:
            candidates.update(by_net[net])
        for j in candidates:
            if j == idx or done[j]:
                continue
            other = functions[j]
            if len(other.support) > max_function_inputs:
                continue
            union = support | set(other.support)
            if len(union) > max_cell_inputs:
                continue
            shared = len(support) + len(other.support) - len(union)
            key = (shared, -len(union))
            if key > best_key:
                best_key = key
                best_j = j
        if best_j >= 0:
            paired[idx] = best_j
            paired[best_j] = idx
            done[idx] = done[best_j] = True
        else:
            done[idx] = True

    # Second chance for loners: pair zero-sharing small functions (the CLB
    # allows it as long as the union fits), which mirrors area-driven packing.
    loners = [
        i
        for i in range(len(functions))
        if paired[i] is None and len(functions[i].support) <= max_function_inputs
    ]
    loners.sort(key=lambda i: len(functions[i].support))
    used: Set[int] = set()
    for a_pos in range(len(loners)):
        i = loners[a_pos]
        if i in used:
            continue
        # Bounded scan keeps this pass linear; distant loners in the
        # size-sorted order almost never fit together anyway.
        for b_pos in range(a_pos + 1, min(a_pos + 400, len(loners))):
            j = loners[b_pos]
            if j in used:
                continue
            union = set(functions[i].support) | set(functions[j].support)
            if len(union) <= max_cell_inputs:
                paired[i] = j
                paired[j] = i
                used.add(i)
                used.add(j)
                break

    cells: List[CellSpec] = []
    emitted: Set[int] = set()
    for idx, fn in enumerate(functions):
        if idx in emitted:
            continue
        partner = paired[idx]
        if partner is None or partner in emitted:
            cells.append(CellSpec([fn]))
            emitted.add(idx)
        else:
            cells.append(CellSpec([fn, functions[partner]]))
            emitted.add(idx)
            emitted.add(partner)
    return cells
