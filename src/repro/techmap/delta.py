"""ECO deltas over mapped netlists: the incremental-repartitioning front door.

A :class:`NetlistDelta` (schema ``repro-netlist-delta/1``) is a frozen,
serializable edit script over a :class:`~repro.techmap.mapped.MappedNetlist`:
add / remove / replace (resize + rewire) cells and rewire individual input
pins.  Net-level edits fall out of the cell ops in a driver-based netlist:
a net is *added* when an op introduces its driving output, *removed* when
the driver goes away, and *rewired* when sink pins move
(``rewire_pin`` / ``replace_cell``).

Applying a delta yields the post-edit netlist **plus a dirty region**: the
edited cells and their one-hop halo (every surviving cell sharing a net
with an edit).  The warm-start solver
(:mod:`repro.partition.incremental`) confines repair work to that region.

Primary I/O is *fixed*: IOB pads cannot move between devices after an ECO,
so any op that would remove or re-drive a primary input or primary output
net raises :class:`~repro.robust.errors.DeltaError` -- cleanly, before any
netlist surgery happens.  Structural damage a delta would cause elsewhere
(dangling readers, double drivers) is caught by the
:class:`~repro.techmap.mapped.MappedNetlist` constructor and re-raised as
a :class:`DeltaError` too.

Deltas are hashable (all-tuple storage), so a
:class:`~repro.request.PartitionRequest` carrying one stays usable as a
dict key exactly like a delta-free request.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.robust.errors import DeltaError
from repro.techmap.mapped import MappedCell, MappedNetlist

#: Version stamped into every delta document as ``v``.
DELTA_SCHEMA_VERSION = 1

#: Document identifier written in every delta's ``schema`` field.
DELTA_SCHEMA_NAME = "repro-netlist-delta/1"

#: Operations a conforming delta may contain.
DELTA_OPS = ("add_cell", "remove_cell", "replace_cell", "rewire_pin")


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise DeltaError(message)


@dataclass(frozen=True)
class CellSpec:
    """One mapped cell as immutable data (the ``add/replace_cell`` payload)."""

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    supports: Tuple[Tuple[str, ...], ...]
    masks: Tuple[int, ...]
    registered: Tuple[bool, ...]

    @classmethod
    def from_cell(cls, cell: MappedCell) -> "CellSpec":
        return cls(
            name=cell.name,
            inputs=tuple(cell.inputs),
            outputs=tuple(cell.outputs),
            supports=tuple(tuple(s) for s in cell.supports),
            masks=tuple(cell.masks),
            registered=tuple(bool(r) for r in cell.registered),
        )

    @classmethod
    def from_dict(cls, doc: Any) -> "CellSpec":
        _require(isinstance(doc, dict), f"cell spec is {type(doc).__name__}")
        try:
            spec = cls(
                name=str(doc["name"]),
                inputs=tuple(str(n) for n in doc["inputs"]),
                outputs=tuple(str(n) for n in doc["outputs"]),
                supports=tuple(
                    tuple(str(n) for n in sup) for sup in doc["supports"]
                ),
                masks=tuple(int(m) for m in doc["masks"]),
                registered=tuple(bool(r) for r in doc["registered"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DeltaError(f"bad cell spec: {exc!r}") from exc
        _require(
            len(spec.outputs) == len(spec.supports) == len(spec.masks)
            == len(spec.registered) and len(spec.outputs) >= 1,
            f"cell spec {spec.name!r}: ragged per-output arrays",
        )
        for sup in spec.supports:
            _require(
                set(sup) <= set(spec.inputs),
                f"cell spec {spec.name!r}: support outside input pins",
            )
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "supports": [list(s) for s in self.supports],
            "masks": list(self.masks),
            "registered": list(self.registered),
        }

    def to_cell(self) -> MappedCell:
        return MappedCell(
            name=self.name,
            inputs=list(self.inputs),
            outputs=list(self.outputs),
            supports=[list(s) for s in self.supports],
            masks=list(self.masks),
            registered=list(self.registered),
        )

    @property
    def nets(self) -> FrozenSet[str]:
        return frozenset(self.inputs) | frozenset(self.outputs)


@dataclass(frozen=True)
class DeltaOp:
    """One edit: ``op`` selects the shape, unused fields stay ``None``."""

    op: str
    cell: Optional[str] = None  # remove_cell / rewire_pin target
    spec: Optional[CellSpec] = None  # add_cell / replace_cell payload
    pin: Optional[int] = None  # rewire_pin input index
    net: Optional[str] = None  # rewire_pin replacement net

    def to_dict(self) -> Dict[str, Any]:
        if self.op in ("add_cell", "replace_cell"):
            assert self.spec is not None
            return {"op": self.op, "cell": self.spec.to_dict()}
        if self.op == "remove_cell":
            return {"op": self.op, "cell": self.cell}
        return {"op": self.op, "cell": self.cell, "pin": self.pin, "net": self.net}

    @classmethod
    def from_dict(cls, doc: Any) -> "DeltaOp":
        _require(isinstance(doc, dict), f"delta op is {type(doc).__name__}")
        op = doc.get("op")
        _require(op in DELTA_OPS, f"unknown delta op {op!r}; expected {DELTA_OPS}")
        if op in ("add_cell", "replace_cell"):
            return cls(op=op, spec=CellSpec.from_dict(doc.get("cell")))
        if op == "remove_cell":
            cell = doc.get("cell")
            _require(isinstance(cell, str) and bool(cell),
                     "remove_cell needs a cell name")
            return cls(op=op, cell=cell)
        cell, pin, net = doc.get("cell"), doc.get("pin"), doc.get("net")
        _require(isinstance(cell, str) and bool(cell),
                 "rewire_pin needs a cell name")
        _require(isinstance(pin, int) and not isinstance(pin, bool) and pin >= 0,
                 f"rewire_pin pin {pin!r} is not a non-negative int")
        _require(isinstance(net, str) and bool(net),
                 "rewire_pin needs a target net")
        return cls(op=op, cell=cell, pin=pin, net=net)

    @property
    def touched_cell(self) -> str:
        """The name of the cell this op edits."""
        if self.spec is not None:
            return self.spec.name
        assert self.cell is not None
        return self.cell


@dataclass(frozen=True)
class DirtyRegion:
    """The perturbed neighbourhood of a delta application.

    ``cells`` are post-delta cell names: every edited cell plus the
    one-hop halo of cells sharing a net with an edit.  ``touched_nets``
    are the nets an op created, removed or moved a pin on.
    """

    cells: FrozenSet[str]
    touched_nets: FrozenSet[str]
    n_cells: int  # post-delta netlist size

    @property
    def fraction(self) -> float:
        """Dirty share of the post-delta netlist, in [0, 1]."""
        if not self.n_cells:
            return 0.0
        return len(self.cells) / self.n_cells

    def mask(self, names: Sequence[str]) -> List[bool]:
        """Boolean dirty mask over an ordered node-name sequence -- the
        CSR-side view (pass the hypergraph's cell-node name order to mask
        a :class:`~repro.hypergraph.compact.CompactHypergraph`)."""
        return [name in self.cells for name in names]


@dataclass(frozen=True)
class NetlistDelta:
    """A frozen, serializable ECO edit script (``repro-netlist-delta/1``).

    ``base`` optionally pins the netlist fingerprint the delta was
    computed against; callers that know the live netlist's hash should
    check it before applying (:func:`repro.api.run_request` does).
    """

    ops: Tuple[DeltaOp, ...] = ()
    base: Optional[str] = None

    @property
    def empty(self) -> bool:
        return not self.ops

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "schema": DELTA_SCHEMA_NAME,
            "v": DELTA_SCHEMA_VERSION,
            "ops": [op.to_dict() for op in self.ops],
        }
        if self.base is not None:
            doc["base"] = self.base
        return doc

    @classmethod
    def from_dict(cls, doc: Any) -> "NetlistDelta":
        if isinstance(doc, NetlistDelta):
            return doc
        _require(isinstance(doc, dict),
                 f"delta is {type(doc).__name__}, expected object")
        schema = doc.get("schema", DELTA_SCHEMA_NAME)
        _require(schema == DELTA_SCHEMA_NAME,
                 f"delta schema {schema!r}, expected {DELTA_SCHEMA_NAME!r}")
        version = doc.get("v", DELTA_SCHEMA_VERSION)
        _require(version == DELTA_SCHEMA_VERSION,
                 f"delta v={version!r}, expected {DELTA_SCHEMA_VERSION}")
        unknown = sorted(set(doc) - {"schema", "v", "ops", "base"})
        _require(not unknown, f"unknown delta field(s): {unknown}")
        base = doc.get("base")
        _require(base is None or (isinstance(base, str) and bool(base)),
                 f"delta base {base!r} must be a non-empty string or null")
        ops_doc = doc.get("ops", [])
        _require(isinstance(ops_doc, list), "delta ops must be a list")
        return cls(
            ops=tuple(DeltaOp.from_dict(op) for op in ops_doc), base=base
        )

    # -- application ----------------------------------------------------
    def apply(self, mapped: MappedNetlist) -> Tuple[MappedNetlist, DirtyRegion]:
        """Apply every op to ``mapped``; returns the post-edit netlist and
        its dirty region.

        The input netlist is never mutated.  Ops validate individually
        (unknown cells, fixed-terminal touches) and the finished edit
        validates structurally as a whole (dangling readers, double
        drivers), so an op may remove a cell whose readers a *later* op in
        the same delta rewires.  Raises :class:`DeltaError` on any
        violation.
        """
        cells: Dict[str, MappedCell] = {c.name: c for c in mapped.cells}
        order: List[str] = [c.name for c in mapped.cells]
        po_set = set(mapped.primary_outputs)
        pi_set = set(mapped.primary_inputs)
        touched_cells: set = set()
        touched_nets: set = set()
        removed: set = set()

        def guard_outputs(outputs: Sequence[str], what: str) -> None:
            for net in outputs:
                if net in po_set:
                    raise DeltaError(
                        f"{what} would disturb primary output {net!r}; "
                        "primary I/O pads are fixed terminals"
                    )
                if net in pi_set:
                    raise DeltaError(
                        f"{what} would re-drive primary input {net!r}; "
                        "primary I/O pads are fixed terminals"
                    )

        for op in self.ops:
            if op.op == "remove_cell":
                cell = cells.get(op.cell or "")
                _require(cell is not None,
                         f"remove_cell: unknown cell {op.cell!r}")
                assert cell is not None
                guard_outputs(cell.outputs, f"remove_cell {cell.name!r}")
                touched_nets.update(cell.inputs)
                touched_nets.update(cell.outputs)
                del cells[cell.name]
                order.remove(cell.name)
                removed.add(cell.name)
            elif op.op == "add_cell":
                assert op.spec is not None
                spec = op.spec
                _require(spec.name not in cells,
                         f"add_cell: cell {spec.name!r} already exists")
                guard_outputs(spec.outputs, f"add_cell {spec.name!r}")
                cells[spec.name] = spec.to_cell()
                if spec.name in removed:
                    removed.discard(spec.name)
                order.append(spec.name)
                touched_cells.add(spec.name)
                touched_nets.update(spec.nets)
            elif op.op == "replace_cell":
                assert op.spec is not None
                spec = op.spec
                old = cells.get(spec.name)
                _require(old is not None,
                         f"replace_cell: unknown cell {spec.name!r}")
                assert old is not None
                dropped = set(old.outputs) - set(spec.outputs)
                guard_outputs(dropped, f"replace_cell {spec.name!r}")
                guard_outputs(set(spec.outputs) - set(old.outputs),
                              f"replace_cell {spec.name!r}")
                touched_nets.update(old.inputs)
                touched_nets.update(old.outputs)
                touched_nets.update(spec.nets)
                cells[spec.name] = spec.to_cell()
                touched_cells.add(spec.name)
            else:  # rewire_pin
                cell = cells.get(op.cell or "")
                _require(cell is not None,
                         f"rewire_pin: unknown cell {op.cell!r}")
                assert cell is not None and op.pin is not None
                _require(op.pin < len(cell.inputs),
                         f"rewire_pin: {cell.name!r} has no pin {op.pin}")
                old_net = cell.inputs[op.pin]
                new_net = op.net or ""
                _require(new_net not in cell.inputs or new_net == old_net,
                         f"rewire_pin: {cell.name!r} already reads {new_net!r}")
                new_inputs = list(cell.inputs)
                new_inputs[op.pin] = new_net
                new_supports = [
                    [new_net if s == old_net else s for s in sup]
                    for sup in cell.supports
                ]
                cells[cell.name] = MappedCell(
                    name=cell.name,
                    inputs=new_inputs,
                    outputs=list(cell.outputs),
                    supports=new_supports,
                    masks=list(cell.masks),
                    registered=list(cell.registered),
                )
                touched_cells.add(cell.name)
                touched_nets.update((old_net, new_net))

        try:
            new_mapped = MappedNetlist(
                name=mapped.name,
                cells=[cells[name] for name in order],
                primary_inputs=mapped.primary_inputs,
                primary_outputs=mapped.primary_outputs,
            )
        except ValueError as exc:
            raise DeltaError(f"delta leaves netlist inconsistent: {exc}") from exc

        # One-hop halo: any surviving cell pinned to a touched net.
        dirty = set(touched_cells)
        if touched_nets:
            for cell in new_mapped.cells:
                if dirty.issuperset((cell.name,)):
                    continue
                if touched_nets.intersection(cell.inputs) or (
                    touched_nets.intersection(cell.outputs)
                ):
                    dirty.add(cell.name)
        region = DirtyRegion(
            cells=frozenset(dirty),
            touched_nets=frozenset(touched_nets),
            n_cells=new_mapped.n_cells,
        )
        return new_mapped, region


def diff_mapped(old: MappedNetlist, new: MappedNetlist,
                base: Optional[str] = None) -> NetlistDelta:
    """The :class:`NetlistDelta` turning ``old`` into ``new``.

    Cells are matched by name (removed / added / replaced); primary I/O
    must be identical -- pads are fixed terminals, so two netlists with
    different I/O are different designs, not an ECO.  The result is
    deterministic (ops sorted by kind then cell name) and round-trips:
    ``old`` + ``diff_mapped(old, new)`` is structurally equal to ``new``.
    """
    if list(old.primary_inputs) != list(new.primary_inputs) or (
        list(old.primary_outputs) != list(new.primary_outputs)
    ):
        raise DeltaError(
            "primary I/O differs between netlists; pads are fixed terminals "
            "and cannot be changed by an ECO delta"
        )
    old_cells = {c.name: CellSpec.from_cell(c) for c in old.cells}
    new_cells = {c.name: CellSpec.from_cell(c) for c in new.cells}
    ops: List[DeltaOp] = []
    for name in sorted(set(old_cells) - set(new_cells)):
        ops.append(DeltaOp(op="remove_cell", cell=name))
    for name in sorted(set(old_cells) & set(new_cells)):
        if old_cells[name] != new_cells[name]:
            ops.append(DeltaOp(op="replace_cell", spec=new_cells[name]))
    for name in sorted(set(new_cells) - set(old_cells)):
        ops.append(DeltaOp(op="add_cell", spec=new_cells[name]))
    return NetlistDelta(ops=tuple(ops), base=base)


def seeded_delta(
    mapped: MappedNetlist,
    fraction: float = 0.01,
    seed: int = 0,
    base: Optional[str] = None,
) -> NetlistDelta:
    """A deterministic synthetic ECO editing ``fraction`` of the cells.

    Models the "engineer touches a handful of cells" workload of the
    incremental drills: each selected cell gets one input pin rewired to
    a primary input it does not already read (always structurally legal:
    reading a PI can neither dangle a net nor create a cycle).  Cells
    with no rewirable pin are skipped, so the edit count can fall
    slightly short of the request on tiny netlists.
    """
    if not 0.0 <= fraction <= 1.0:
        raise DeltaError(f"fraction {fraction!r} must be in [0, 1]")
    rng = random.Random(seed)
    pis = sorted(mapped.primary_inputs)
    if not pis or not mapped.cells:
        return NetlistDelta(base=base)
    want = max(1, int(round(fraction * mapped.n_cells)))
    names = [c.name for c in mapped.cells]
    rng.shuffle(names)
    by_name = {c.name: c for c in mapped.cells}
    ops: List[DeltaOp] = []
    for name in names:
        if len(ops) >= want:
            break
        cell = by_name[name]
        if not cell.inputs:
            continue
        pin = rng.randrange(len(cell.inputs))
        choices = [p for p in pis if p not in cell.inputs]
        if not choices:
            continue
        ops.append(
            DeltaOp(
                op="rewire_pin", cell=name, pin=pin,
                net=choices[rng.randrange(len(choices))],
            )
        )
    return NetlistDelta(ops=tuple(ops), base=base)


__all__ = [
    "DELTA_OPS",
    "DELTA_SCHEMA_NAME",
    "DELTA_SCHEMA_VERSION",
    "CellSpec",
    "DeltaOp",
    "DirtyRegion",
    "NetlistDelta",
    "diff_mapped",
    "seeded_delta",
]
