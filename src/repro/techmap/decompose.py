"""Fan-in decomposition: rewrite wide gates as trees of <= k-input gates.

LUT covering works on bounded-fan-in networks.  Wide symmetric gates
(AND/OR/XOR and their complements) decompose into balanced trees of the
non-inverting base operation with the inversion applied only at the tree
root, which preserves functionality exactly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

#: For each decomposable type: (base associative op for internal nodes,
#: root op that realises the original function over the subtree results).
_DECOMPOSE_RULES: Dict[GateType, tuple] = {
    GateType.AND: (GateType.AND, GateType.AND),
    GateType.OR: (GateType.OR, GateType.OR),
    GateType.XOR: (GateType.XOR, GateType.XOR),
    GateType.NAND: (GateType.AND, GateType.NAND),
    GateType.NOR: (GateType.OR, GateType.NOR),
    GateType.XNOR: (GateType.XOR, GateType.XNOR),
}


def decompose_netlist(netlist: Netlist, max_fanin: int = 4) -> Netlist:
    """Return a functionally equivalent netlist with all gate fan-ins <= ``max_fanin``.

    Gate and net names of the original netlist are preserved; helper nodes
    get ``<name>__dcN`` names.  Raises ``ValueError`` for wide gates of a
    type without a decomposition rule (there are none among the primitives).
    """
    if max_fanin < 2:
        raise ValueError("max_fanin must be >= 2")
    result = Netlist(netlist.name)
    for gate in netlist.gates():
        if gate.gtype is GateType.INPUT:
            result.add_input(gate.name)
            continue
        if len(gate.fanin) <= max_fanin:
            result.add_gate(gate.name, gate.gtype, list(gate.fanin))
            continue
        rule = _DECOMPOSE_RULES.get(gate.gtype)
        if rule is None:
            raise ValueError(
                f"gate {gate.name!r} of type {gate.gtype.value} has fanin "
                f"{len(gate.fanin)} and no decomposition rule"
            )
        base_op, root_op = rule
        counter = 0

        def reduce_level(sources: List[str]) -> List[str]:
            """One tree level: group sources into max_fanin-ary base nodes."""
            nonlocal counter
            grouped: List[str] = []
            for i in range(0, len(sources), max_fanin):
                chunk = sources[i : i + max_fanin]
                if len(chunk) == 1:
                    grouped.append(chunk[0])
                    continue
                node = f"{gate.name}__dc{counter}"
                counter += 1
                result.add_gate(node, base_op, chunk)
                grouped.append(node)
            return grouped

        sources = list(gate.fanin)
        while len(sources) > max_fanin:
            sources = reduce_level(sources)
        result.add_gate(gate.name, root_op, sources)
    for po in netlist.outputs:
        result.add_output(po)
    result.check()
    return result
