"""Content-addressed memoization of solver results.

``repro.cache`` is the persistence counterpart of the run ledger: where
the ledger records *that* a run happened and what quality it reached,
the cache stores the full solution so an identical request never has to
recompute it.  Entries are keyed by the ledger's reproducibility tuple
(netlist hash x config fingerprint x seed) and live in a sharded
on-disk store (``results/cache/<2-hex-shard>/<key>.json``) with atomic
tmp+rename writes and an LRU size cap.

See :mod:`repro.cache.store` for the store and enablement helpers and
:mod:`repro.cache.codec` for the solution (de)serialization; the
``repro.api`` verbs consume both via their ``cache=`` parameter
(``docs/CACHING.md`` documents key derivation and invalidation).
"""

from repro.cache.codec import (
    CODEC_VERSION,
    decode_solution,
    encode_solution,
)
from repro.cache.store import (
    CACHE_ENV_VAR,
    CACHE_SCHEMA_NAME,
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    DEFAULT_MAX_BYTES,
    SolutionCache,
    build_entry,
    cache_key,
    get_cache,
    resolve_cache,
    set_cache,
    use_cache,
    validate_entry,
)

__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_SCHEMA_NAME",
    "CACHE_SCHEMA_VERSION",
    "CODEC_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_BYTES",
    "SolutionCache",
    "build_entry",
    "cache_key",
    "decode_solution",
    "encode_solution",
    "get_cache",
    "resolve_cache",
    "set_cache",
    "use_cache",
    "validate_entry",
]
