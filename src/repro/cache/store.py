"""The content-addressed, sharded on-disk solution store.

Layout (modelled on write-ahead / sharded-key stores)::

    <root>/
      <2-hex-shard>/          # first two hex chars of the entry key
        <key>.json            # one schema-versioned entry per key

* **Keys** are the run ledger's reproducibility tuple hashed by
  :func:`repro.obs.ledger.run_key`: netlist hash x canonical config
  fingerprint x seed.  Anything that changes solver output changes the
  key, so invalidation is automatic (see ``docs/CACHING.md``).
* **Writes** are atomic: the entry is serialized to a per-writer
  (pid x thread) ``.tmp`` sibling and ``os.replace``d into place, so
  concurrent writers (e.g. two batch pool workers solving the same key)
  race benignly -- last complete write wins, readers never observe a
  torn file.
* **Reads** are defensive: unparseable / schema-mismatched / truncated
  entries are treated as misses and deleted, never raised.
* **Size cap**: the store is LRU-bounded by file mtime.  Hits bump the
  entry's mtime (:meth:`SolutionCache.touch`); :meth:`SolutionCache.evict`
  is an explicit pass deleting oldest entries until the store fits
  ``max_bytes`` (``put`` runs it automatically after every insert).

Enablement mirrors :mod:`repro.obs.ledger`: an explicit store can be
installed process-wide (:func:`set_cache` / :func:`use_cache`), the
``REPRO_CACHE`` environment variable supplies a default path, and
:func:`resolve_cache` falls back to ``results/cache``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.ledger import (
    _jsonable,
    config_fingerprint,
    netlist_fingerprint,
    run_key,
)
from repro.obs.metrics import get_registry
from repro.robust.faults import maybe_fire

#: Version stamped into every cache entry as ``v``.
CACHE_SCHEMA_VERSION = 1

#: Store identifier written in every entry's ``schema`` field.
CACHE_SCHEMA_NAME = "repro-solution-cache/1"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = os.path.join("results", "cache")

#: Environment variable supplying a process-wide default cache path.
CACHE_ENV_VAR = "REPRO_CACHE"

#: Default LRU size cap (bytes) -- generous for JSON solutions.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Entry kinds a conforming store may contain (the cacheable verbs).
ENTRY_KINDS = ("partition", "bipartition")

#: The cache policies the ``repro.api`` verbs accept.
CACHE_POLICIES = ("use", "refresh", "off")


def cache_key(mapped: Any, config: Dict[str, Any], seed: int) -> str:
    """The entry key for a (mapped netlist, config, seed) request.

    Exactly the ledger's ``run_key`` over the same canonicalized inputs,
    so a cache entry and its ledger record share identity.
    """
    return run_key(
        netlist_fingerprint(mapped),
        config_fingerprint(_jsonable(config)),
        seed,
    )


def key_for_request(mapped: Any, request: Any) -> str:
    """The entry key a :class:`~repro.request.PartitionRequest` resolves
    to on ``mapped`` -- delegates to :meth:`PartitionRequest.cache_key`,
    which builds the multilevel-resolved config and calls
    :func:`cache_key` above.  One identity, whichever side computes it.
    """
    return request.cache_key(mapped)


def build_entry(
    kind: str,
    key: str,
    circuit: str,
    netlist_hash: str,
    config: Dict[str, Any],
    seed: int,
    solution: Dict[str, Any],
    elapsed_seconds: float,
) -> Dict[str, Any]:
    """Assemble one schema-conforming cache entry.

    ``solution`` is the already-encoded payload from
    :mod:`repro.cache.codec`; ``elapsed_seconds`` records the original
    solve wall-clock, which hits report back as the time *saved* and
    which keeps cached experiment tables (CPU-seconds columns included)
    bit-identical across re-runs.
    """
    if kind not in ENTRY_KINDS:
        raise ValueError(f"unknown cache entry kind {kind!r}; expected {ENTRY_KINDS}")
    return {
        "v": CACHE_SCHEMA_VERSION,
        "schema": CACHE_SCHEMA_NAME,
        "key": key,
        "kind": kind,
        "circuit": circuit,
        "netlist_hash": netlist_hash,
        "config": _jsonable(config),
        "config_fingerprint": config_fingerprint(_jsonable(config)),
        "seed": seed,
        "created_ts": time.time(),
        "elapsed_seconds": elapsed_seconds,
        "solution": solution,
    }


def validate_entry(entry: Any) -> List[str]:
    """Schema-check one cache entry; returns problems (empty = ok)."""
    problems: List[str] = []
    if not isinstance(entry, dict):
        return [f"entry is {type(entry).__name__}, expected object"]

    def check(cond: bool, message: str) -> None:
        if not cond:
            problems.append(message)

    check(entry.get("v") == CACHE_SCHEMA_VERSION,
          f"v={entry.get('v')!r}, expected {CACHE_SCHEMA_VERSION}")
    check(entry.get("schema") == CACHE_SCHEMA_NAME,
          f"schema={entry.get('schema')!r}, expected {CACHE_SCHEMA_NAME}")
    check(entry.get("kind") in ENTRY_KINDS, f"unknown kind {entry.get('kind')!r}")
    for field in ("key", "circuit", "netlist_hash", "config_fingerprint"):
        check(isinstance(entry.get(field), str) and bool(entry.get(field)),
              f"{field} must be a non-empty string")
    check(isinstance(entry.get("seed"), int), "seed must be an int")
    check(isinstance(entry.get("config"), dict), "config must be an object")
    check(isinstance(entry.get("solution"), dict), "solution must be an object")
    check(isinstance(entry.get("elapsed_seconds"), (int, float)),
          "elapsed_seconds must be a number")
    return problems


class SolutionCache:
    """Sharded, LRU-capped, content-addressed entry store."""

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.root = root
        self.max_bytes = max_bytes

    # -- paths ----------------------------------------------------------
    def path_for(self, key: str) -> str:
        """``<root>/<2-hex-shard>/<key>.json`` for an entry key."""
        if len(key) < 3:
            raise ValueError(f"cache key {key!r} too short to shard")
        return os.path.join(self.root, key[:2], f"{key}.json")

    # -- reads ----------------------------------------------------------
    def _self_heal(self, key: str, reason: str) -> None:
        """Discard a corrupt entry, announcing it to observability.

        The ``cache.corrupt`` counter/event is what fault drills assert
        on -- a silently healed torn write would otherwise be
        indistinguishable from a plain miss.
        """
        self.delete(key)
        reg = get_registry()
        reg.counter("cache.corrupt").inc()
        reg.emit_event("cache.corrupt", key=key, reason=reason)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry for ``key``, or ``None`` on miss.

        Corruption (unparseable JSON, schema mismatch, key mismatch) is
        a miss: the bad file is deleted so the slot heals on the next
        store, and a ``cache.corrupt`` event/counter records the repair.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            self._self_heal(key, f"unreadable: {type(exc).__name__}")
            return None
        if validate_entry(entry) or entry.get("key") != key:
            self._self_heal(key, "schema mismatch")
            return None
        return entry

    def touch(self, key: str) -> None:
        """Bump an entry's recency (mtime) after a hit."""
        try:
            os.utime(self.path_for(key), None)
        except OSError:
            pass

    # -- writes ---------------------------------------------------------
    def put(self, entry: Dict[str, Any]) -> str:
        """Validate and store one entry atomically; returns its path.

        The entry is written to a per-writer (pid x thread) ``.tmp``
        sibling and renamed into place (``os.replace``), so a concurrent
        writer of the same key cannot produce a torn file -- whichever
        rename lands last wins, and both writers stored equivalent
        content (the solvers are deterministic per key).  The LRU
        eviction pass runs after the insert.
        """
        problems = validate_entry(entry)
        if problems:
            raise ValueError(f"refusing to store malformed cache entry: {problems}")
        path = self.path_for(entry["key"])
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(_jsonable(entry), fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
        # Fault site: an injected error here models a writer dying between
        # the tmp write and the atomic rename -- the stray .tmp stays, the
        # entry never becomes visible.
        maybe_fire("store.partial_write", key=entry["key"])
        os.replace(tmp, path)
        self.evict()
        return path

    def delete(self, key: str) -> bool:
        """Remove an entry; True when a file was actually deleted."""
        try:
            os.remove(self.path_for(key))
            return True
        except OSError:
            return False

    # -- maintenance ----------------------------------------------------
    def entries(self) -> List[Tuple[str, str, int, float]]:
        """Every stored entry as ``(key, path, size_bytes, mtime)``."""
        out: List[Tuple[str, str, int, float]] = []
        if not os.path.isdir(self.root):
            return out
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue  # skip tmp files and strays
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue  # raced with a delete
                out.append((name[:-len(".json")], path, st.st_size, st.st_mtime))
        return out

    def stats(self) -> Dict[str, Any]:
        """Occupancy summary: entry count, bytes, shard count, cap."""
        rows = self.entries()
        return {
            "root": self.root,
            "entries": len(rows),
            "bytes": sum(size for _, _, size, _ in rows),
            "shards": len({key[:2] for key, _, _, _ in rows}),
            "max_bytes": self.max_bytes,
        }

    def evict(self, max_bytes: Optional[int] = None) -> List[str]:
        """Delete least-recently-used entries until the store fits.

        Returns the evicted keys (oldest first).  ``max_bytes=None``
        uses the store's configured cap; pass ``0`` to empty the store.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        rows = self.entries()
        total = sum(size for _, _, size, _ in rows)
        if total <= cap:
            return []
        evicted: List[str] = []
        for key, path, size, _ in sorted(rows, key=lambda r: (r[3], r[0])):
            if total <= cap:
                break
            try:
                os.remove(path)
            except OSError:
                continue  # concurrent eviction; treat as already gone
            total -= size
            evicted.append(key)
        return evicted


def nearest_ancestor(
    store: "SolutionCache",
    netlist_hash: str,
    config_fp: Optional[str] = None,
    seed: Optional[int] = None,
    kind: str = "partition",
) -> Optional[Dict[str, Any]]:
    """Best prior entry to warm-start from for a netlist with this hash.

    Exact-key lookup answers "have I solved *this* request"; this scan
    answers "have I solved this *netlist* before, under any config" --
    the index the incremental solver consults to find the pre-ECO
    solution when the caller did not pass an explicit warm-start key.

    Candidates are ranked by how closely their identity matches:
    same (hash, config fingerprint, seed) beats same (hash, config
    fingerprint) beats same hash alone; ties break on recency (mtime).
    Returns the winning entry document, or ``None`` when no entry of
    ``kind`` with that netlist hash exists.  Reads are as defensive as
    :meth:`SolutionCache.get` -- unreadable entries are skipped, never
    raised (but also not deleted: this is a scan, not a lookup).
    """
    best: Optional[Tuple[Tuple[int, float], Dict[str, Any]]] = None
    for _, path, _, mtime in store.entries():
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError, ValueError):
            continue
        if validate_entry(entry):
            continue
        if entry.get("kind") != kind or entry.get("netlist_hash") != netlist_hash:
            continue
        tier = 0
        if config_fp is not None and entry.get("config_fingerprint") == config_fp:
            tier += 2
            if seed is not None and entry.get("seed") == seed:
                tier += 1
        rank = (tier, mtime)
        if best is None or rank > best[0]:
            best = (rank, entry)
    return best[1] if best is not None else None


# ---------------------------------------------------------------------------
# Process-local enablement (mirrors repro.obs.ledger)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[SolutionCache] = None


def get_cache() -> Optional[SolutionCache]:
    """The explicitly installed process-local store, or ``None``."""
    return _ACTIVE


def set_cache(cache: Optional[SolutionCache]) -> Optional[SolutionCache]:
    """Install ``cache`` process-wide (``None`` removes it again)."""
    global _ACTIVE
    _ACTIVE = cache
    return _ACTIVE


@contextmanager
def use_cache(cache: SolutionCache) -> Iterator[SolutionCache]:
    """Scoped :func:`set_cache`: restores the previous store on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous


def resolve_cache(explicit: Optional[str] = None) -> SolutionCache:
    """The store in effect: ``explicit`` path > installed > environment
    > the default ``results/cache`` directory.

    Unlike the ledger (whose absence disables logging), a resolved store
    always exists -- whether it is *consulted* is the ``cache=`` policy
    of the calling verb.
    """
    if explicit:
        return SolutionCache(explicit)
    if _ACTIVE is not None:
        return _ACTIVE
    env = os.environ.get(CACHE_ENV_VAR)
    if env and env.lower() not in ("1", "true"):
        return SolutionCache(env)
    return SolutionCache(DEFAULT_CACHE_DIR)


__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_POLICIES",
    "CACHE_SCHEMA_NAME",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_BYTES",
    "ENTRY_KINDS",
    "SolutionCache",
    "build_entry",
    "cache_key",
    "get_cache",
    "key_for_request",
    "nearest_ancestor",
    "resolve_cache",
    "set_cache",
    "use_cache",
    "validate_entry",
]
