"""JSON (de)serialization of solver results for the solution cache.

The cache stores *full* solutions, not just quality vectors, so a hit
can reconstruct the same :class:`~repro.api.RunResult` payload a fresh
solve would return.  Two solution shapes round-trip:

* :class:`~repro.partition.kway.KWaySolution` (``repro.api.partition``),
  including every block's instance pin lists -- the independent checker
  :func:`repro.partition.verify.verify_solution` re-derives all
  solution-level quantities from them, which is what lets a cache hit be
  *verified before it is trusted*;
* :class:`~repro.core.results.BipartitionReport`
  (``repro.api.bipartition``).

Decoding is strict: unknown payload types, missing fields or
wrong-shaped data raise :class:`CacheDecodeError`, which the store maps
to a miss (recompute) rather than an error -- a corrupted or truncated
entry must never poison a run.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.results import BipartitionReport
from repro.partition.cost import solution_cost
from repro.partition.devices import Device
from repro.partition.kway import BlockResult, KWaySolution

#: Version of the solution payload shape.  Bumped on any change to the
#: encoded fields; the store treats entries with a different codec
#: version as misses (stale-schema invalidation).
CODEC_VERSION = 1


class CacheDecodeError(ValueError):
    """A cache entry payload that cannot be reconstructed."""


def _encode_device(device: Device) -> Dict[str, Any]:
    return {
        "name": device.name,
        "clbs": device.clbs,
        "terminals": device.terminals,
        "price": device.price,
        "util_lower": device.util_lower,
        "util_upper": device.util_upper,
    }


def _decode_device(data: Dict[str, Any]) -> Device:
    try:
        return Device(
            name=data["name"],
            clbs=data["clbs"],
            terminals=data["terminals"],
            price=data["price"],
            util_lower=data["util_lower"],
            util_upper=data["util_upper"],
        )
    except (KeyError, TypeError) as exc:
        raise CacheDecodeError(f"bad device payload: {exc}") from exc


def _encode_block(block: BlockResult) -> Dict[str, Any]:
    return {
        "index": block.index,
        "device": _encode_device(block.device),
        "cells": list(block.cells),
        "originals": list(block.originals),
        "pads": list(block.pads),
        "nets": sorted(block.nets),
        "pad_nets": sorted(block.pad_nets),
        "cell_inputs": [list(pins) for pins in block.cell_inputs],
        "cell_outputs": [list(pins) for pins in block.cell_outputs],
        "terminals": block.terminals,
    }


def _decode_block(data: Dict[str, Any]) -> BlockResult:
    try:
        return BlockResult(
            index=data["index"],
            device=_decode_device(data["device"]),
            cells=list(data["cells"]),
            originals=list(data["originals"]),
            pads=list(data["pads"]),
            nets=set(data["nets"]),
            pad_nets=set(data["pad_nets"]),
            cell_inputs=[list(pins) for pins in data["cell_inputs"]],
            cell_outputs=[list(pins) for pins in data["cell_outputs"]],
            terminals=data["terminals"],
        )
    except (KeyError, TypeError) as exc:
        raise CacheDecodeError(f"bad block payload: {exc}") from exc


def encode_kway(solution: KWaySolution) -> Dict[str, Any]:
    """Encode a k-way solution as strict-JSON-safe data."""
    return {
        "type": "kway",
        "codec": CODEC_VERSION,
        "name": solution.name,
        "blocks": [_encode_block(b) for b in solution.blocks],
        "n_original_cells": solution.n_original_cells,
        "replicated_cells": sorted(solution.replicated_cells),
        "feasible": solution.feasible,
        "truncated": solution.truncated,
    }


def decode_kway(data: Dict[str, Any]) -> KWaySolution:
    """Rebuild a :class:`KWaySolution`; the cost report is re-derived
    from the decoded blocks (never trusted from disk)."""
    try:
        blocks = [_decode_block(b) for b in data["blocks"]]
        cost = solution_cost([(b.device, b.n_clbs, b.terminals) for b in blocks])
        return KWaySolution(
            name=data["name"],
            blocks=blocks,
            cost=cost,
            n_original_cells=data["n_original_cells"],
            replicated_cells=set(data["replicated_cells"]),
            feasible=bool(data["feasible"]),
            truncated=bool(data.get("truncated", False)),
        )
    except (KeyError, TypeError) as exc:
        raise CacheDecodeError(f"bad kway payload: {exc}") from exc


def encode_bipartition(report: BipartitionReport) -> Dict[str, Any]:
    """Encode a bipartition experiment report."""
    return {
        "type": "bipartition",
        "codec": CODEC_VERSION,
        "circuit": report.circuit,
        "algorithm": report.algorithm,
        "runs": report.runs,
        "cuts": list(report.cuts),
        "replicated_counts": list(report.replicated_counts),
        "elapsed_seconds": report.elapsed_seconds,
        "n_cells": report.n_cells,
    }


def decode_bipartition(data: Dict[str, Any]) -> BipartitionReport:
    try:
        cuts = [int(c) for c in data["cuts"]]
        replicated = [int(c) for c in data["replicated_counts"]]
        if not cuts or len(cuts) != len(replicated):
            raise CacheDecodeError("bipartition payload has ragged run arrays")
        return BipartitionReport(
            circuit=data["circuit"],
            algorithm=data["algorithm"],
            runs=int(data["runs"]),
            cuts=cuts,
            replicated_counts=replicated,
            elapsed_seconds=float(data["elapsed_seconds"]),
            n_cells=int(data["n_cells"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, CacheDecodeError):
            raise
        raise CacheDecodeError(f"bad bipartition payload: {exc}") from exc


def encode_solution(solution: Any) -> Dict[str, Any]:
    """Dispatch on the solution type; raises ``TypeError`` for shapes the
    cache does not memoize (run logs, netlists, analyze verdicts)."""
    if isinstance(solution, KWaySolution):
        return encode_kway(solution)
    if isinstance(solution, BipartitionReport):
        return encode_bipartition(solution)
    raise TypeError(f"cannot cache a {type(solution).__name__}")


def decode_solution(payload: Any) -> Any:
    """Inverse of :func:`encode_solution`; raises :class:`CacheDecodeError`
    on anything malformed, stale-codec or unknown."""
    if not isinstance(payload, dict):
        raise CacheDecodeError(
            f"solution payload is {type(payload).__name__}, expected object"
        )
    if payload.get("codec") != CODEC_VERSION:
        raise CacheDecodeError(
            f"codec version {payload.get('codec')!r}, expected {CODEC_VERSION}"
        )
    kind = payload.get("type")
    if kind == "kway":
        return decode_kway(payload)
    if kind == "bipartition":
        return decode_bipartition(payload)
    raise CacheDecodeError(f"unknown solution payload type {kind!r}")


__all__ = [
    "CODEC_VERSION",
    "CacheDecodeError",
    "decode_bipartition",
    "decode_kway",
    "decode_solution",
    "encode_bipartition",
    "encode_kway",
    "encode_solution",
]
