"""The unified, versioned request artifact every entry point parses.

Before this module, each front door parsed its own ad-hoc shape: the
``repro.api`` verbs took loose keyword arguments, the CLI re-validated
argparse strings, batch manifests merged JSON param tables, and a
network service would have needed a fourth copy.  A
:class:`PartitionRequest` (schema ``repro-partition-request/1``) is the
single parse point instead: a *frozen*, schema-versioned dataclass that

* round-trips losslessly through JSON (:meth:`PartitionRequest.to_json`
  / :meth:`PartitionRequest.from_json`, stable field order, the paper's
  ``T = inf`` baseline spelled ``"inf"`` exactly like batch manifests);
* reproduces the exact solver configuration dict the run ledger and the
  solution cache fingerprint (:meth:`PartitionRequest.config`), so
  ``request.cache_key(mapped)`` equals the ledger's ``run_key`` for the
  run the request describes;
* normalizes the historically stringly/tri-state knobs into enums:
  :class:`Algorithm`, :class:`CachePolicy` and :class:`MultilevelMode`
  (the old ``multilevel=True/False/None`` spellings coerce through a
  ``DeprecationWarning`` shim).

Identity vs. execution fields
-----------------------------
``verb``/``circuit``/``scale``/``seed``/``algorithm``/``threshold`` and
the verb tunables determine solver *output* and therefore feed
:meth:`~PartitionRequest.config` and the cache key.  ``cache``,
``jobs`` and ``trace_id`` only say *how* to execute (memoization
policy, worker count, observability correlation); they travel in the
JSON document but never into the fingerprint -- ``jobs=8`` must hit the
entry ``jobs=1`` stored, and a traced request must hit the entry an
untraced one cached.
"""

from __future__ import annotations

import json
import math
import warnings
from dataclasses import dataclass, field, fields, replace
from enum import Enum
from typing import Any, Dict, Optional, Union

#: Version stamped into every request document as ``v``.
REQUEST_SCHEMA_VERSION = 1

#: Document identifier written in every request's ``schema`` field.
REQUEST_SCHEMA_NAME = "repro-partition-request/1"

#: Verbs a request may carry (the cacheable solver verbs).
REQUEST_VERBS = ("bipartition", "partition")


class RequestError(ValueError):
    """A request document or value that cannot be normalized."""


class Algorithm(str, Enum):
    """The bipartitioning engine family (paper section 4).

    ``str``-valued so existing comparisons (``algorithm == "fm"``) and
    JSON serialization keep working; the member value *is* the wire
    spelling.
    """

    FM_FUNCTIONAL = "fm+functional"
    FM_TRADITIONAL = "fm+traditional"
    FM = "fm"

    @classmethod
    def coerce(cls, value: Union["Algorithm", str]) -> "Algorithm":
        """Normalize an algorithm spelling; raises :class:`RequestError`."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value)
            except ValueError:
                pass
        raise RequestError(
            f"algorithm={value!r} is not an algorithm; "
            f"expected one of {[m.value for m in cls]}"
        )


class CachePolicy(str, Enum):
    """Solution-cache interaction of one run.

    ``USE`` consults the store and memoizes misses, ``REFRESH``
    recomputes and overwrites, ``OFF`` bypasses the store entirely.
    """

    USE = "use"
    REFRESH = "refresh"
    OFF = "off"

    @classmethod
    def coerce(cls, value: Union["CachePolicy", str]) -> "CachePolicy":
        """Normalize a cache-policy spelling.

        Raises ``ValueError`` with the historical ``repro.api`` message
        so existing callers keep seeing the same error.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value)
            except ValueError:
                pass
        raise ValueError(
            f"cache={value!r} is not a cache policy; "
            f"expected one of {tuple(m.value for m in cls)}"
        )


class MultilevelMode(str, Enum):
    """The tri-state V-cycle knob, as an explicit enum.

    ``ON`` forces the coarsen-solve-uncoarsen engine, ``OFF`` keeps the
    flat engines, ``AUTO`` (default) enables it once the netlist reaches
    :data:`repro.partition.multilevel.MULTILEVEL_AUTO_MIN_CELLS` cells.
    The historical ``True`` / ``False`` / ``None`` spellings coerce with
    a ``DeprecationWarning`` (``None`` silently: it is the signature
    default everywhere).
    """

    ON = "on"
    OFF = "off"
    AUTO = "auto"

    @classmethod
    def coerce(
        cls,
        value: Union["MultilevelMode", str, bool, None],
        warn: bool = False,
    ) -> "MultilevelMode":
        """Normalize a multilevel spelling.

        ``warn=True`` (the ``repro.api`` keyword shim) emits a
        ``DeprecationWarning`` for the legacy bool spellings; JSON /
        manifest decoding coerces silently -- bools are the documented
        wire format there.
        """
        if isinstance(value, cls):
            return value
        if value is None:
            return cls.AUTO
        if isinstance(value, bool):
            if warn:
                warnings.warn(
                    "multilevel=True/False is deprecated; pass "
                    "MultilevelMode.ON / MultilevelMode.OFF (or 'on'/'off')",
                    DeprecationWarning,
                    stacklevel=3,
                )
            return cls.ON if value else cls.OFF
        if isinstance(value, str):
            try:
                return cls(value)
            except ValueError:
                pass
        raise RequestError(
            f"multilevel={value!r} is not a multilevel mode; "
            f"expected one of {[m.value for m in cls]} or True/False/None"
        )

    @property
    def tri(self) -> Optional[bool]:
        """The legacy tri-state bool the solver flows still consume."""
        if self is MultilevelMode.ON:
            return True
        if self is MultilevelMode.OFF:
            return False
        return None


def parse_threshold(value: Any) -> Union[int, float]:
    """A replication threshold: a number, or ``"inf"``/``"infinity"``
    for the no-replication baseline (strict JSON has no infinity
    literal).  The numeric type is preserved -- an ``int`` threshold
    stays an ``int`` so config fingerprints never move."""
    if isinstance(value, str):
        if value.lower() in ("inf", "infinity"):
            return float("inf")
        raise RequestError(f"threshold {value!r} is not a number or 'inf'")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"threshold {value!r} is not a number or 'inf'")
    return value


def threshold_json(threshold: Union[int, float]) -> Union[int, float, str]:
    """The JSON spelling of a threshold (inverse of :func:`parse_threshold`)."""
    if isinstance(threshold, float) and math.isinf(threshold):
        return "inf"
    return threshold


#: Per-verb tunables with the ``repro.api`` defaults -- the one table
#: the api shims, batch manifests and the service all resolve against.
PARTITION_PARAMS: Dict[str, Any] = {
    "threshold": 1,
    "library": "XC3000",
    "n_solutions": 2,
    "seeds_per_carve": 3,
    "devices_per_carve": 3,
}
BIPARTITION_PARAMS: Dict[str, Any] = {
    "runs": 20,
    "threshold": 0,
    "balance_tolerance": 0.02,
    "max_passes": 16,
    "max_growth": None,
}
COMMON_PARAMS: Dict[str, Any] = {
    "scale": 1.0,
    "algorithm": "fm+functional",
    "deadline": None,
    "max_retries": None,
    "fallback": None,
    "multilevel": None,
}


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise RequestError(message)


@dataclass(frozen=True)
class PartitionRequest:
    """One solver invocation as a frozen, serializable artifact.

    Construct directly, from keyword shims (:func:`build_request`), from
    a JSON document (:meth:`from_json`) or from a batch-manifest job
    (:meth:`repro.batch.manifest.BatchJob.to_request`); every path yields
    the same normalized object, and equal requests are ``==`` and hash
    alike (usable as memo keys).
    """

    verb: str
    circuit: str
    scale: float = 1.0
    seed: int = 0
    algorithm: Algorithm = Algorithm.FM_FUNCTIONAL
    threshold: Union[int, float] = 1
    multilevel: MultilevelMode = MultilevelMode.AUTO
    # -- partition tunables (ignored by bipartition) --------------------
    library: str = "XC3000"
    n_solutions: int = 2
    seeds_per_carve: int = 3
    devices_per_carve: int = 3
    # -- bipartition tunables (ignored by partition) --------------------
    runs: int = 20
    balance_tolerance: float = 0.02
    max_passes: int = 16
    max_growth: Optional[float] = None
    # -- resilience (part of the cache/ledger identity) -----------------
    deadline: Optional[float] = None
    max_retries: Optional[int] = None
    fallback: Optional[bool] = None
    # -- incremental repartitioning (see docs/INCREMENTAL.md) -----------
    #: Optional ECO delta (``repro-netlist-delta/1``) applied to the
    #: mapped netlist *before* anything else.  The delta itself is never
    #: fingerprinted: it enters cache identity only through the
    #: post-delta netlist hash, so an empty delta is a pure cache hit on
    #: the base entry and two different deltas producing the same
    #: netlist share one entry.
    delta: Optional[Any] = None
    #: Warm-start policy: ``None``/``"auto"`` warm-start from the
    #: nearest cached ancestor whenever a delta is present, ``"off"``
    #: forces a cold solve, any other string is an explicit prior cache
    #: key to seed from.  Execution-only for identity purposes: the
    #: warm result is stored as *the* solution for its key, so replays
    #: are bit-identical regardless of how the entry was first produced.
    warm_start: Optional[str] = None
    # -- execution-only fields (never fingerprinted) --------------------
    cache: CachePolicy = CachePolicy.OFF
    jobs: int = 1
    #: Observability correlation id (``X-Repro-Trace-Id`` on the wire).
    #: Excluded from equality like ``schema_version``: a traced request
    #: must memoize and deduplicate exactly like its untraced twin.
    trace_id: Optional[str] = field(default=None, compare=False)
    schema_version: int = field(default=REQUEST_SCHEMA_VERSION, compare=False)

    def __post_init__(self) -> None:
        _require(self.verb in REQUEST_VERBS,
                 f"verb {self.verb!r} not in {REQUEST_VERBS}")
        _require(isinstance(self.circuit, str) and bool(self.circuit),
                 "circuit must be a non-empty string")
        _require(isinstance(self.seed, int) and not isinstance(self.seed, bool),
                 f"seed {self.seed!r} is not an int")
        # Normalize enum spellings so direct construction is as forgiving
        # as the shims (frozen dataclass: go through __setattr__ escape).
        object.__setattr__(self, "algorithm", Algorithm.coerce(self.algorithm))
        object.__setattr__(self, "cache", CachePolicy.coerce(self.cache))
        object.__setattr__(
            self, "multilevel", MultilevelMode.coerce(self.multilevel)
        )
        object.__setattr__(self, "threshold", parse_threshold(self.threshold))
        _require(
            self.trace_id is None
            or (isinstance(self.trace_id, str) and bool(self.trace_id)),
            f"trace_id {self.trace_id!r} must be a non-empty string or null",
        )
        if self.delta is not None:
            from repro.techmap.delta import NetlistDelta

            if not isinstance(self.delta, NetlistDelta):
                try:
                    object.__setattr__(
                        self, "delta", NetlistDelta.from_dict(self.delta)
                    )
                except ValueError as exc:
                    raise RequestError(f"bad delta: {exc}") from exc
            _require(self.verb == "partition",
                     "delta is only supported for the partition verb")
        _require(
            self.warm_start is None
            or (isinstance(self.warm_start, str) and bool(self.warm_start)),
            f"warm_start {self.warm_start!r} must be a non-empty string or null",
        )

    # -- identity -------------------------------------------------------
    def config(self, multilevel_active: bool = False) -> Dict[str, Any]:
        """The ledger/cache configuration dict of this request.

        Byte-compatible with what the pre-request ``repro.api`` verbs
        built inline: same keys, same value types, and the
        ``"multilevel"`` marker present only when the V-cycle actually
        resolved on for the target netlist (``multilevel_active``), so
        every fingerprint, golden record and cache entry minted before
        this refactor stays valid.
        """
        common = {
            "verb": self.verb,
            "algorithm": self.algorithm.value,
            "threshold": self.threshold,
            "scale": self.scale,
            "deadline": self.deadline,
            "max_retries": self.max_retries,
            "fallback": self.fallback,
        }
        if self.verb == "bipartition":
            config = {
                "verb": common["verb"],
                "algorithm": common["algorithm"],
                "runs": self.runs,
                "threshold": common["threshold"],
                "balance_tolerance": self.balance_tolerance,
                "max_passes": self.max_passes,
                "max_growth": self.max_growth,
                "scale": common["scale"],
                "deadline": common["deadline"],
                "max_retries": common["max_retries"],
                "fallback": common["fallback"],
            }
        else:
            config = {
                "verb": common["verb"],
                "algorithm": common["algorithm"],
                "threshold": common["threshold"],
                "library": self.library,
                "n_solutions": self.n_solutions,
                "seeds_per_carve": self.seeds_per_carve,
                "devices_per_carve": self.devices_per_carve,
                "scale": common["scale"],
                "deadline": common["deadline"],
                "max_retries": common["max_retries"],
                "fallback": common["fallback"],
            }
        if multilevel_active:
            config["multilevel"] = True
        return config

    def resolve_multilevel(self, n_cells: int) -> bool:
        """Whether the V-cycle is active for a netlist of ``n_cells``."""
        from repro.partition.multilevel import resolve_multilevel

        return resolve_multilevel(self.multilevel.tri, n_cells)

    def apply_delta(self, mapped: Any) -> tuple:
        """``(post-delta netlist, dirty region)`` for this request.

        No-op for delta-free (and empty-delta) requests: the base
        netlist is returned unchanged with a ``None`` region, which is
        what makes an empty delta a pure cache hit on the base entry.
        Raises :class:`~repro.robust.errors.DeltaError` when the delta
        cannot be applied; ``base``-hash validation is the caller's job
        (:func:`repro.api.run_request` checks it against the live
        netlist fingerprint).
        """
        if self.delta is None or self.delta.empty:
            return mapped, None
        return self.delta.apply(mapped)

    def cache_key(self, mapped: Any) -> str:
        """The solution-cache / ledger ``run_key`` of this request.

        ``mapped`` is the technology-mapped *base* netlist the request
        resolves to (mapping depends on circuit x scale x seed, so it
        cannot be derived from the request alone without rebuilding it).
        A carried delta is applied first -- identity is always the
        post-delta netlist, never the (delta, base) pair -- so every
        caller computes the same key whether or not it applied the
        delta itself.
        """
        from repro.cache.store import cache_key as store_key

        mapped, _ = self.apply_delta(mapped)
        active = self.resolve_multilevel(mapped.n_cells)
        return store_key(mapped, self.config(active), self.seed)

    @property
    def mapping_seed(self) -> int:
        """The seed the technology mapping actually uses (``seed or 1994``,
        the historical ``repro.api`` behavior)."""
        return self.seed or 1994

    @property
    def netlist_id(self) -> tuple:
        """(circuit, scale, mapping seed): the mapped-netlist identity."""
        return (self.circuit, float(self.scale), self.mapping_seed)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The JSON document form, in stable field order."""
        doc: Dict[str, Any] = {
            "schema": REQUEST_SCHEMA_NAME,
            "v": self.schema_version,
            "verb": self.verb,
            "circuit": self.circuit,
            "scale": self.scale,
            "seed": self.seed,
            "algorithm": self.algorithm.value,
            "threshold": threshold_json(self.threshold),
            "multilevel": self.multilevel.value,
            "library": self.library,
            "n_solutions": self.n_solutions,
            "seeds_per_carve": self.seeds_per_carve,
            "devices_per_carve": self.devices_per_carve,
            "runs": self.runs,
            "balance_tolerance": self.balance_tolerance,
            "max_passes": self.max_passes,
            "max_growth": self.max_growth,
            "deadline": self.deadline,
            "max_retries": self.max_retries,
            "fallback": self.fallback,
            "cache": self.cache.value,
            "jobs": self.jobs,
        }
        # Only when set: delta-free documents stay byte-identical to
        # every document minted before incremental requests existed.
        if self.delta is not None:
            doc["delta"] = self.delta.to_dict()
        if self.warm_start is not None:
            doc["warm_start"] = self.warm_start
        if self.trace_id is not None:
            # Only when set: untraced documents stay byte-identical to
            # every document minted before trace propagation existed.
            doc["trace_id"] = self.trace_id
        return doc

    def to_json(self) -> str:
        """One-line JSON with stable field order (wire/ledger format)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, doc: Any) -> "PartitionRequest":
        """Rebuild a request from its document form.

        Strict about shape: unknown fields and a wrong ``schema`` are
        errors (a service must reject, not guess), absent optional
        fields take the documented defaults.
        """
        _require(isinstance(doc, dict),
                 f"request is {type(doc).__name__}, expected object")
        schema = doc.get("schema", REQUEST_SCHEMA_NAME)
        _require(schema == REQUEST_SCHEMA_NAME,
                 f"request schema {schema!r}, expected {REQUEST_SCHEMA_NAME!r}")
        version = doc.get("v", REQUEST_SCHEMA_VERSION)
        _require(version == REQUEST_SCHEMA_VERSION,
                 f"request v={version!r}, expected {REQUEST_SCHEMA_VERSION}")
        known = {f.name for f in fields(cls)} | {"schema", "v"}
        unknown = sorted(set(doc) - known)
        _require(not unknown, f"unknown request field(s): {unknown}")
        _require("verb" in doc, "request is missing 'verb'")
        _require("circuit" in doc, "request is missing 'circuit'")
        kwargs: Dict[str, Any] = {
            k: v for k, v in doc.items() if k not in ("schema", "v")
        }
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise RequestError(f"bad request document: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "PartitionRequest":
        """Parse a JSON request document; raises :class:`RequestError`."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RequestError(f"request is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)

    # -- derived views --------------------------------------------------
    def params(self) -> Dict[str, Any]:
        """The batch-manifest ``params`` dict of this request (verb
        tunables + common fields, threshold in its numeric form)."""
        out = {
            "scale": self.scale,
            "algorithm": self.algorithm.value,
            "deadline": self.deadline,
            "max_retries": self.max_retries,
            "fallback": self.fallback,
            "multilevel": self.multilevel.tri,
        }
        if self.verb == "partition":
            out.update(
                threshold=self.threshold,
                library=self.library,
                n_solutions=self.n_solutions,
                seeds_per_carve=self.seeds_per_carve,
                devices_per_carve=self.devices_per_carve,
            )
        else:
            out.update(
                runs=self.runs,
                threshold=self.threshold,
                balance_tolerance=self.balance_tolerance,
                max_passes=self.max_passes,
                max_growth=self.max_growth,
            )
        # Only when set, so pre-incremental manifests stay byte-identical.
        if self.delta is not None:
            out["delta"] = self.delta.to_dict()
        if self.warm_start is not None:
            out["warm_start"] = self.warm_start
        return out

    def with_trace(self, trace_id: Optional[str]) -> "PartitionRequest":
        """This request carrying ``trace_id`` (self when already equal)."""
        if trace_id == self.trace_id:
            return self
        return replace(self, trace_id=trace_id)


def build_request(
    verb: str,
    circuit: str,
    *,
    warn_legacy: bool = False,
    **kwargs: Any,
) -> PartitionRequest:
    """The keyword-argument shim: loose kwargs into a normalized request.

    Used by the ``repro.api`` verbs to keep every historical call shape
    working; ``warn_legacy`` turns the deprecated spellings (bool
    ``multilevel``) into ``DeprecationWarning``s.  Unknown keywords
    raise :class:`RequestError` (mirroring ``TypeError`` semantics).
    """
    if "multilevel" in kwargs:
        kwargs["multilevel"] = MultilevelMode.coerce(
            kwargs["multilevel"], warn=warn_legacy
        )
    allowed = {f.name for f in fields(PartitionRequest)} - {"verb", "circuit"}
    unknown = sorted(set(kwargs) - allowed)
    _require(not unknown, f"unknown request field(s): {unknown}")
    return PartitionRequest(verb=verb, circuit=circuit, **kwargs)


__all__ = [
    "Algorithm",
    "BIPARTITION_PARAMS",
    "COMMON_PARAMS",
    "CachePolicy",
    "MultilevelMode",
    "PARTITION_PARAMS",
    "PartitionRequest",
    "REQUEST_SCHEMA_NAME",
    "REQUEST_SCHEMA_VERSION",
    "REQUEST_VERBS",
    "RequestError",
    "build_request",
    "parse_threshold",
    "threshold_json",
]
