"""Command-line interface: ``repro-fpga`` / ``python -m repro``.

Subcommands
-----------
stats        Table II characteristics for a benchmark or .bench file.
map          Technology-map a circuit and report CLB/IOB/net counts.
bipartition  Min-cut bipartitioning with or without functional replication.
partition    Heterogeneous k-way partitioning (cost + interconnect).
experiment   Regenerate a paper table/figure (table1..table7, figure3).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Iterator, List, Optional

from repro.core.flow import bipartition_experiment, kway_experiment
from repro.netlist.bench_io import load_bench
from repro.netlist.benchmarks import BENCHMARK_NAMES, benchmark_circuit
from repro.netlist.netlist import Netlist
from repro.netlist.stats import mapped_stats, netlist_stats
from repro.techmap.mapped import technology_map


def _resolve_circuit(spec: str, scale: float, seed: int) -> Netlist:
    """A circuit spec is either a benchmark name or a .bench file path."""
    if spec in BENCHMARK_NAMES:
        return benchmark_circuit(spec, scale=scale, seed=seed)
    if spec.endswith(".bench"):
        from repro.robust.errors import ParseError

        try:
            return load_bench(spec)
        except ParseError as exc:
            raise SystemExit(str(exc)) from exc
        except OSError as exc:
            raise SystemExit(f"cannot read {spec!r}: {exc}") from exc
    raise SystemExit(
        f"unknown circuit {spec!r}: expected one of {', '.join(BENCHMARK_NAMES)} "
        "or a path ending in .bench"
    )


def _add_circuit_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("circuit", help="benchmark name or .bench file")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument("--json", action="store_true", help="machine-readable output")


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the multi-start/candidate scans "
        "(1 = sequential, 0 = all cores; results are identical per seed)",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="overall wall-clock budget; routes through the resilient runner "
        "and returns the best solution found in time",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="extra attempts per engine before degrading (resilient runner)",
    )
    parser.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable the fm+functional -> fm+traditional -> fm cascade",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record metrics/spans/events for this run as JSONL "
        "(see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="JSONL trace destination (implies --trace; default trace.jsonl)",
    )


@contextlib.contextmanager
def _observability(args: argparse.Namespace) -> Iterator[Optional[str]]:
    """Install an enabled registry writing JSONL when tracing was requested.

    Yields the trace path (``None`` when tracing is off) and guarantees the
    final metric values are flushed and the file closed on the way out.
    """
    if not getattr(args, "trace", False) and getattr(args, "metrics_out", None) is None:
        yield None
        return
    from repro.obs.events import JsonlEmitter
    from repro.obs.metrics import MetricsRegistry, use_registry

    path = args.metrics_out or "trace.jsonl"
    registry = MetricsRegistry(enabled=True, emitter=JsonlEmitter(path))
    registry.emit_meta()
    try:
        with use_registry(registry):
            yield path
    finally:
        registry.close()


def _resilient_runner(args: argparse.Namespace):
    """Build a ResilientRunner when any resilience flag was given, else None."""
    if args.deadline is None and args.max_retries is None and not args.no_fallback:
        return None
    from repro.robust.errors import ConfigError
    from repro.robust.runner import ResilientRunner

    if args.deadline is not None and args.deadline < 0:
        raise SystemExit("--deadline must be non-negative")
    try:
        return ResilientRunner(
            deadline=args.deadline,
            max_retries=2 if args.max_retries is None else args.max_retries,
            fallback=not args.no_fallback,
        )
    except ConfigError as exc:
        raise SystemExit(f"bad resilience flags: {exc}") from exc


def _cmd_stats(args: argparse.Namespace) -> int:
    netlist = _resolve_circuit(args.circuit, args.scale, args.seed)
    stats = netlist_stats(netlist)
    if args.json:
        print(json.dumps(stats.as_dict(), indent=2))
    else:
        for key, value in stats.as_dict().items():
            print(f"{key:>12}: {value}")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    netlist = _resolve_circuit(args.circuit, args.scale, args.seed)
    mapped = technology_map(netlist)
    stats = mapped_stats(mapped)
    payload = stats.as_dict()
    payload["multi_output_cells"] = mapped.n_multi_output_cells
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>20}: {value}")
    return 0


def _cmd_bipartition(args: argparse.Namespace) -> int:
    with _observability(args) as trace_path:
        code = _run_bipartition(args)
    if trace_path is not None:
        print(f"trace written to {trace_path}", file=sys.stderr)
    return code


def _run_bipartition(args: argparse.Namespace) -> int:
    netlist = _resolve_circuit(args.circuit, args.scale, args.seed)
    mapped = technology_map(netlist)
    runner = _resilient_runner(args)
    if runner is not None:
        result = runner.bipartition(
            mapped,
            algorithm=args.algorithm,
            runs=args.runs,
            threshold=args.threshold,
            seed=args.seed,
            jobs=args.jobs,
        )
        report = result.report
        if args.json:
            payload = report.as_dict()
            payload["engine"] = result.engine
            payload["run_log"] = result.log.as_dicts()
            print(json.dumps(payload, indent=2))
        else:
            print(
                f"{report.circuit}: {result.engine}, {report.runs} runs -> "
                f"best cut {report.best_cut}, avg cut {report.avg_cut:.1f} "
                f"({result.elapsed:.2f}s, "
                f"{len(result.log.attempts())} attempt(s))"
            )
        return 0
    report = bipartition_experiment(
        mapped,
        algorithm=args.algorithm,
        runs=args.runs,
        threshold=args.threshold,
        seed=args.seed,
        jobs=args.jobs,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"{report.circuit}: {report.algorithm}, {report.runs} runs -> "
            f"best cut {report.best_cut}, avg cut {report.avg_cut:.1f}, "
            f"avg replicated {report.avg_replicated:.1f} "
            f"({report.elapsed_seconds:.2f}s)"
        )
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    with _observability(args) as trace_path:
        code = _run_partition(args)
    if trace_path is not None:
        print(f"trace written to {trace_path}", file=sys.stderr)
    return code


def _run_partition(args: argparse.Namespace) -> int:
    netlist = _resolve_circuit(args.circuit, args.scale, args.seed)
    mapped = technology_map(netlist)
    threshold = float("inf") if args.threshold == "inf" else float(args.threshold)
    runner = _resilient_runner(args)
    if runner is not None:
        result = runner.kway(
            mapped, threshold=threshold, seed=args.seed, jobs=args.jobs
        )
        solution = result.solution
        payload = solution.summary()
        payload["engine"] = result.engine
        payload["run_log_summary"] = result.log.summary()
        if args.json:
            payload["run_log"] = result.log.as_dicts()
            print(json.dumps(payload, indent=2, default=str))
        else:
            for key, value in payload.items():
                print(f"{key:>16}: {value}")
        return 0
    if args.verify:
        from repro.core.flow import kway_solution
        from repro.partition.verify import verify_solution

        solution = kway_solution(
            mapped,
            threshold=threshold,
            n_solutions=args.solutions,
            seed=args.seed,
            jobs=args.jobs,
        )
        problems = verify_solution(mapped, solution)
        payload = solution.summary()
        payload["violations"] = problems
        if args.json:
            print(json.dumps(payload, indent=2, default=str))
        else:
            for key, value in payload.items():
                print(f"{key:>14}: {value}")
        return 0 if not problems else 1
    report = kway_experiment(
        mapped,
        threshold=threshold,
        n_solutions=args.solutions,
        seed=args.seed,
        jobs=args.jobs,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"{report.circuit}: k={report.k} cost={report.total_cost:.0f} "
            f"devices={report.device_counts} "
            f"CLB util {100 * report.avg_clb_utilization:.1f}% "
            f"IOB util {100 * report.avg_iob_utilization:.1f}% "
            f"replicated {100 * report.replicated_fraction:.1f}% "
            f"feasible={report.feasible} ({report.elapsed_seconds:.1f}s)"
        )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.metrics is not None:
        return _analyze_metrics(args)
    if args.circuit is None:
        raise SystemExit("analyze: provide a circuit or --metrics PATH")
    from repro.hypergraph.build import build_hypergraph
    from repro.netlist.rent import fit_rent, rent_points
    from repro.replication.potential import cell_distribution

    netlist = _resolve_circuit(args.circuit, args.scale, args.seed)
    mapped = technology_map(netlist)
    hg = build_hypergraph(mapped, include_terminals=False)
    dist = cell_distribution(hg, name=mapped.name)
    fit = fit_rent(rent_points(hg, seed=args.seed))
    payload = {
        "circuit": mapped.name,
        "clbs": mapped.n_cells,
        "multi_output_cells": mapped.n_multi_output_cells,
        "psi_distribution": {label: count for label, count, _ in dist.rows()},
        "rent_exponent": round(fit.exponent, 3) if fit else None,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        from repro.experiments.figure3 import ascii_histogram

        print(ascii_histogram(dist))
        if fit:
            print(f"Rent exponent: {fit.exponent:.3f} "
                  f"(coefficient {fit.coefficient:.2f}, "
                  f"{len(fit.points)} sample blocks)")
    return 0


def _analyze_metrics(args: argparse.Namespace) -> int:
    """Validate a JSONL observability trace and print a summary."""
    from repro.obs.events import validate_jsonl_file
    from repro.obs.summary import summarize_events

    try:
        events, problems = validate_jsonl_file(args.metrics)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.metrics!r}: {exc}") from exc
    if args.json:
        print(
            json.dumps(
                {"path": args.metrics, "events": len(events), "problems": problems},
                indent=2,
            )
        )
    else:
        print(summarize_events(events) if events else "(empty trace)")
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
    return 0 if not problems else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import table1, table2, table3, figure3, tables4to7

    name = args.name
    if name == "table1":
        print(table1.run().text())
    elif name == "table2":
        print(table2.run(args.circuits, args.scale, args.seed).text())
    elif name == "figure3":
        print(figure3.run(args.circuits, args.scale, args.seed).text())
    elif name == "table3":
        print(
            table3.run(args.circuits, args.scale, args.seed, runs=args.runs).text()
        )
    elif name in ("table4", "table5", "table6", "table7"):
        data = tables4to7.sweep(args.circuits, args.scale, args.seed)
        table_fn = {
            "table4": tables4to7.table4,
            "table5": tables4to7.table5,
            "table6": tables4to7.table6,
            "table7": tables4to7.table7,
        }[name]
        print(table_fn(data, args.scale).text())
    else:
        raise SystemExit(f"unknown experiment {name!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fpga",
        description="Heterogeneous-FPGA netlist partitioning (DAC'94 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="gate-level circuit statistics")
    _add_circuit_args(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_map = sub.add_parser("map", help="technology-map into XC3000 CLBs")
    _add_circuit_args(p_map)
    p_map.set_defaults(func=_cmd_map)

    p_bi = sub.add_parser("bipartition", help="equal-size min-cut bipartitioning")
    _add_circuit_args(p_bi)
    p_bi.add_argument(
        "--algorithm",
        choices=["fm", "fm+functional", "fm+traditional"],
        default="fm+functional",
    )
    p_bi.add_argument("--runs", type=int, default=5)
    p_bi.add_argument("--threshold", type=int, default=0)
    _add_jobs_arg(p_bi)
    _add_resilience_args(p_bi)
    _add_obs_args(p_bi)
    p_bi.set_defaults(func=_cmd_bipartition)

    p_kw = sub.add_parser("partition", help="heterogeneous k-way partitioning")
    _add_circuit_args(p_kw)
    p_kw.add_argument("--threshold", default="1", help="T (int or 'inf')")
    p_kw.add_argument("--solutions", type=int, default=2)
    p_kw.add_argument(
        "--verify",
        action="store_true",
        help="run the independent solution checker; non-zero exit on violations",
    )
    _add_jobs_arg(p_kw)
    _add_resilience_args(p_kw)
    _add_obs_args(p_kw)
    p_kw.set_defaults(func=_cmd_partition)

    p_an = sub.add_parser(
        "analyze",
        help="replication-potential distribution + Rent exponent, "
        "or validate an observability trace (--metrics)",
    )
    p_an.add_argument(
        "circuit", nargs="?", default=None, help="benchmark name or .bench file"
    )
    p_an.add_argument("--scale", type=float, default=1.0)
    p_an.add_argument("--seed", type=int, default=1994)
    p_an.add_argument("--json", action="store_true", help="machine-readable output")
    p_an.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="validate and summarize a JSONL trace instead of a circuit",
    )
    p_an.set_defaults(func=_cmd_analyze)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument(
        "name",
        choices=[
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "figure3",
        ],
    )
    p_exp.add_argument("--scale", type=float, default=0.5)
    p_exp.add_argument("--circuits", nargs="*", default=None)
    p_exp.add_argument("--seed", type=int, default=1994)
    p_exp.add_argument("--runs", type=int, default=20)
    p_exp.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
