"""Command-line interface: ``repro-fpga`` / ``python -m repro``.

Subcommands
-----------
stats        Table II characteristics for a benchmark or .bench file.
map          Technology-map a circuit and report CLB/IOB/net counts.
bipartition  Min-cut bipartitioning with or without functional replication.
partition    Heterogeneous k-way partitioning (cost + interconnect).
experiment   Regenerate a paper table/figure (table1..table7, figure3).
runs         Inspect the persistent run ledger (list/show/diff/report).
batch        Run job manifests against the solution cache (run/manifest/check);
             ``run --nodes N`` dispatches across the simulated solve farm.
cache        Inspect or trim the on-disk solution cache (stats/evict).
cluster      The fault-tolerant solve farm (start/status/drill).
serve        Partitioning-as-a-service: the async HTTP job server
             (see docs/SERVICE.md).
obs          Observability utilities: validate JSONL event streams,
             export merged Perfetto/Chrome timelines, render or scrape
             Prometheus metrics.

``bipartition`` and ``partition`` flags are normalized through one
parse point -- a :class:`repro.request.PartitionRequest` -- so the CLI,
``repro.api``, batch manifests and the service all speak the same
schema-versioned request language.

``bipartition`` and ``partition`` accept ``--ledger [PATH]`` to append
the run's quality record to the ledger (``results/ledger`` by default);
``repro-fpga runs diff`` then gates quality drift between any two
records with per-metric tolerances.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import Any, Iterator, List, Optional, Tuple

from repro.core.flow import bipartition_experiment, kway_experiment
from repro.netlist.bench_io import load_bench
from repro.netlist.benchmarks import BENCHMARK_NAMES, benchmark_circuit
from repro.netlist.netlist import Netlist
from repro.netlist.stats import mapped_stats, netlist_stats
from repro.techmap.mapped import technology_map


def _resolve_circuit(spec: str, scale: float, seed: int) -> Netlist:
    """A circuit spec is either a benchmark name or a .bench file path."""
    if spec in BENCHMARK_NAMES:
        return benchmark_circuit(spec, scale=scale, seed=seed)
    if spec.endswith(".bench"):
        from repro.robust.errors import ParseError

        try:
            return load_bench(spec)
        except ParseError as exc:
            raise SystemExit(str(exc)) from exc
        except OSError as exc:
            raise SystemExit(f"cannot read {spec!r}: {exc}") from exc
    raise SystemExit(
        f"unknown circuit {spec!r}: expected one of {', '.join(BENCHMARK_NAMES)} "
        "or a path ending in .bench"
    )


def _add_circuit_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("circuit", help="benchmark name or .bench file")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1994)
    parser.add_argument("--json", action="store_true", help="machine-readable output")


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the multi-start/candidate scans "
        "(1 = sequential, 0 = all cores; results are identical per seed)",
    )


def _add_multilevel_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--multilevel",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="coarsen-solve-uncoarsen V-cycle engine; default: auto-on for "
        "netlists with >= 20k cells (--no-multilevel forces the flat engines)",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="overall wall-clock budget; routes through the resilient runner "
        "and returns the best solution found in time",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="extra attempts per engine before degrading (resilient runner)",
    )
    parser.add_argument(
        "--no-fallback",
        action="store_true",
        help="disable the fm+functional -> fm+traditional -> fm cascade",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record metrics/spans/events for this run as JSONL "
        "(see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="JSONL trace destination (implies --trace; default trace.jsonl)",
    )
    parser.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="directory for per-process JSONL streams (implies --trace): "
        "the parent writes main.jsonl, pool workers append "
        "worker-<pid>.jsonl; merge with 'repro-fpga obs export'",
    )
    from repro.obs.ledger import DEFAULT_LEDGER_DIR

    parser.add_argument(
        "--ledger",
        nargs="?",
        const=DEFAULT_LEDGER_DIR,
        default=None,
        metavar="PATH",
        help="append this run's quality record to the run ledger "
        f"(directory or .jsonl file; bare flag = {DEFAULT_LEDGER_DIR}; "
        "REPRO_LEDGER env var also enables it)",
    )


def _cli_ledger(args: argparse.Namespace):
    """The Ledger in effect for this invocation, or ``None``."""
    from repro.obs.ledger import resolve_ledger

    return resolve_ledger(getattr(args, "ledger", None))


@contextlib.contextmanager
def _observability(
    args: argparse.Namespace, capture: bool = False
) -> Iterator[Tuple[Optional[str], List[dict]]]:
    """Install an enabled registry when tracing or ledger capture is on.

    Yields ``(trace_path, events)``: the JSONL destination (``None`` when
    tracing is off) and the live in-memory event list feeding the ledger's
    convergence distillation (empty and inert when ``capture`` is off).
    With both active, a :class:`~repro.obs.events.TeeEmitter` fans the
    stream out to the file and the list.  Final metric values are flushed
    and the file closed on the way out.
    """
    trace_dir = getattr(args, "trace_dir", None)
    trace = bool(
        getattr(args, "trace", False)
        or getattr(args, "metrics_out", None)
        or trace_dir
    )
    if not trace and not capture:
        yield None, []
        return
    from repro.obs.events import JsonlEmitter, ListEmitter, TeeEmitter
    from repro.obs.metrics import MetricsRegistry, use_registry

    path = None
    if trace:
        if trace_dir:
            os.makedirs(trace_dir, exist_ok=True)
            trace_dir = os.path.abspath(trace_dir)
        path = args.metrics_out or (
            os.path.join(trace_dir, "main.jsonl") if trace_dir else "trace.jsonl"
        )
    collector = ListEmitter() if capture else None
    if trace and capture:
        emitter = TeeEmitter(JsonlEmitter(path), collector)
    elif trace:
        emitter = JsonlEmitter(path)
    else:
        emitter = collector
    registry = MetricsRegistry(enabled=True, emitter=emitter, trace_dir=trace_dir)
    registry.emit_meta()
    try:
        with use_registry(registry):
            yield path, (collector.events if collector is not None else [])
    finally:
        registry.close()


def _ledger_log(
    ledger,
    events: List[dict],
    kind: str,
    mapped,
    config: dict,
    seed: int,
    quality: dict,
    elapsed_seconds: Optional[float] = None,
    runner_summary: Optional[dict] = None,
) -> None:
    """Append one record to ``ledger`` and announce it on stderr."""
    from repro.obs import ledger as obs_ledger

    record = ledger.append(
        obs_ledger.build_record(
            kind=kind,
            circuit=mapped.name,
            mapped=mapped,
            config=config,
            seed=seed,
            quality=quality,
            convergence=obs_ledger.distill_convergence(events),
            elapsed_seconds=elapsed_seconds,
            runner_summary=runner_summary,
        )
    )
    print(f"logged run {record['run_id']} to {ledger.path}", file=sys.stderr)


def _resilient_runner(args: argparse.Namespace):
    """Build a ResilientRunner when any resilience flag was given, else None."""
    if args.deadline is None and args.max_retries is None and not args.no_fallback:
        return None
    from repro.robust.errors import ConfigError
    from repro.robust.runner import ResilientRunner

    if args.deadline is not None and args.deadline < 0:
        raise SystemExit("--deadline must be non-negative")
    try:
        return ResilientRunner(
            deadline=args.deadline,
            max_retries=2 if args.max_retries is None else args.max_retries,
            fallback=not args.no_fallback,
        )
    except ConfigError as exc:
        raise SystemExit(f"bad resilience flags: {exc}") from exc


def _cmd_stats(args: argparse.Namespace) -> int:
    netlist = _resolve_circuit(args.circuit, args.scale, args.seed)
    stats = netlist_stats(netlist)
    if args.json:
        print(json.dumps(stats.as_dict(), indent=2))
    else:
        for key, value in stats.as_dict().items():
            print(f"{key:>12}: {value}")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    netlist = _resolve_circuit(args.circuit, args.scale, args.seed)
    mapped = technology_map(netlist)
    stats = mapped_stats(mapped)
    payload = stats.as_dict()
    payload["multi_output_cells"] = mapped.n_multi_output_cells
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:>20}: {value}")
    return 0


def _cmd_bipartition(args: argparse.Namespace) -> int:
    ledger = _cli_ledger(args)
    with _observability(args, capture=ledger is not None) as (trace_path, events):
        code = _run_bipartition(args, ledger, events)
    if trace_path is not None:
        print(f"trace written to {trace_path}", file=sys.stderr)
    return code


def _run_bipartition(args: argparse.Namespace, ledger=None, events=()) -> int:
    from repro.obs.ledger import quality_from_bipartition
    from repro.request import RequestError, build_request

    # The single parse point: flags normalize into a PartitionRequest
    # (enum spellings, threshold, tri-state multilevel).  Execution and
    # the ledger config dict below stay byte-identical to the historical
    # CLI behaviour -- the request only vouches for the inputs.
    try:
        request = build_request(
            "bipartition",
            args.circuit,
            scale=args.scale,
            seed=args.seed,
            algorithm=args.algorithm,
            runs=args.runs,
            threshold=args.threshold,
            multilevel=args.multilevel,
            jobs=args.jobs,
        )
    except RequestError as exc:
        raise SystemExit(str(exc)) from exc
    netlist = _resolve_circuit(request.circuit, request.scale, request.seed)
    mapped = technology_map(netlist)
    config = {
        "verb": "bipartition",
        "algorithm": request.algorithm.value,
        "runs": request.runs,
        "threshold": request.threshold,
        "scale": request.scale,
    }
    if request.resolve_multilevel(mapped.n_cells):
        # Fingerprint marker, present only when the V-cycle is active.
        config["multilevel"] = True
    runner = _resilient_runner(args)
    if runner is not None:
        result = runner.bipartition(
            mapped,
            algorithm=request.algorithm.value,
            runs=request.runs,
            threshold=request.threshold,
            seed=request.seed,
            jobs=request.jobs,
            multilevel=request.multilevel.tri,
        )
        report = result.report
        if ledger is not None:
            _ledger_log(
                ledger,
                list(events),
                kind="bipartition",
                mapped=mapped,
                config=config,
                seed=request.seed,
                quality=quality_from_bipartition(report),
                elapsed_seconds=result.elapsed,
                runner_summary=result.log.as_record(),
            )
        if args.json:
            payload = report.as_dict()
            payload["engine"] = result.engine
            payload["run_log"] = result.log.as_dicts()
            print(json.dumps(payload, indent=2))
        else:
            print(
                f"{report.circuit}: {result.engine}, {report.runs} runs -> "
                f"best cut {report.best_cut}, avg cut {report.avg_cut:.1f} "
                f"({result.elapsed:.2f}s, "
                f"{len(result.log.attempts())} attempt(s))"
            )
        return 0
    report = bipartition_experiment(
        mapped,
        algorithm=request.algorithm.value,
        runs=request.runs,
        threshold=request.threshold,
        seed=request.seed,
        jobs=request.jobs,
        multilevel=request.multilevel.tri,
    )
    if ledger is not None:
        _ledger_log(
            ledger,
            list(events),
            kind="bipartition",
            mapped=mapped,
            config=config,
            seed=request.seed,
            quality=quality_from_bipartition(report),
            elapsed_seconds=report.elapsed_seconds,
        )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"{report.circuit}: {report.algorithm}, {report.runs} runs -> "
            f"best cut {report.best_cut}, avg cut {report.avg_cut:.1f}, "
            f"avg replicated {report.avg_replicated:.1f} "
            f"({report.elapsed_seconds:.2f}s)"
        )
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    ledger = _cli_ledger(args)
    with _observability(args, capture=ledger is not None) as (trace_path, events):
        code = _run_partition(args, ledger, events)
    if trace_path is not None:
        print(f"trace written to {trace_path}", file=sys.stderr)
    return code


def _run_partition(args: argparse.Namespace, ledger=None, events=()) -> int:
    from repro.obs.ledger import quality_from_kway, quality_from_kway_report
    from repro.request import RequestError, build_request

    # Single parse point (see _run_bipartition).  The CLI historically
    # floats numeric thresholds ("1" -> 1.0); keep that spelling so the
    # committed golden ledger fingerprints never move.
    try:
        threshold = (
            args.threshold if args.threshold == "inf" else float(args.threshold)
        )
    except ValueError as exc:
        raise SystemExit(
            f"threshold {args.threshold!r} is not a number or 'inf'"
        ) from exc
    delta_doc = None
    if getattr(args, "delta", None):
        try:
            with open(args.delta, "r", encoding="utf-8") as handle:
                delta_doc = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read delta {args.delta!r}: {exc}") from exc
    try:
        request = build_request(
            "partition",
            args.circuit,
            scale=args.scale,
            seed=args.seed,
            threshold=threshold,
            n_solutions=args.solutions,
            multilevel=args.multilevel,
            jobs=args.jobs,
            delta=delta_doc,
            warm_start=getattr(args, "warm_start", None),
        )
    except RequestError as exc:
        raise SystemExit(str(exc)) from exc
    if (
        delta_doc is not None
        or request.warm_start is not None
        or getattr(args, "cache", "off") != "off"
    ):
        # ECO / cached runs route through the one canonical execution
        # path (api.run_request): delta application, warm-start repair
        # and verify-before-trust cache hits all live there, and the
        # result document is bit-identical to a service or batch run of
        # the same request.
        return _run_partition_request(args, request)
    netlist = _resolve_circuit(request.circuit, request.scale, request.seed)
    mapped = technology_map(netlist)
    threshold = request.threshold
    config = {
        "verb": "partition",
        "threshold": threshold,
        "solutions": request.n_solutions,
        "scale": request.scale,
    }
    if request.resolve_multilevel(mapped.n_cells):
        # Fingerprint marker, present only when multilevel carving is active.
        config["multilevel"] = True
    runner = _resilient_runner(args)
    if runner is not None:
        result = runner.kway(
            mapped,
            threshold=threshold,
            seed=request.seed,
            jobs=request.jobs,
            multilevel=request.multilevel.tri,
        )
        solution = result.solution
        if ledger is not None:
            _ledger_log(
                ledger,
                list(events),
                kind="partition",
                mapped=mapped,
                config=config,
                seed=request.seed,
                quality=quality_from_kway(solution),
                elapsed_seconds=result.elapsed,
                runner_summary=result.log.as_record(),
            )
        payload = solution.summary()
        payload["engine"] = result.engine
        payload["run_log_summary"] = result.log.summary()
        if args.json:
            payload["run_log"] = result.log.as_dicts()
            print(json.dumps(payload, indent=2, default=str))
        else:
            for key, value in payload.items():
                print(f"{key:>16}: {value}")
        return 0
    if args.verify:
        from repro.core.flow import kway_solution
        from repro.partition.verify import verify_solution

        solution = kway_solution(
            mapped,
            threshold=threshold,
            n_solutions=request.n_solutions,
            seed=request.seed,
            jobs=request.jobs,
            multilevel=request.multilevel.tri,
        )
        problems = verify_solution(mapped, solution)
        if ledger is not None:
            _ledger_log(
                ledger,
                list(events),
                kind="partition",
                mapped=mapped,
                config=config,
                seed=request.seed,
                quality=quality_from_kway(solution),
            )
        payload = solution.summary()
        payload["violations"] = problems
        if args.json:
            print(json.dumps(payload, indent=2, default=str))
        else:
            for key, value in payload.items():
                print(f"{key:>14}: {value}")
        return 0 if not problems else 1
    report = kway_experiment(
        mapped,
        threshold=threshold,
        n_solutions=request.n_solutions,
        seed=request.seed,
        jobs=request.jobs,
        multilevel=request.multilevel.tri,
    )
    if ledger is not None:
        _ledger_log(
            ledger,
            list(events),
            kind="partition",
            mapped=mapped,
            config=config,
            seed=request.seed,
            quality=quality_from_kway_report(report),
            elapsed_seconds=report.elapsed_seconds,
        )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"{report.circuit}: k={report.k} cost={report.total_cost:.0f} "
            f"devices={report.device_counts} "
            f"CLB util {100 * report.avg_clb_utilization:.1f}% "
            f"IOB util {100 * report.avg_iob_utilization:.1f}% "
            f"replicated {100 * report.replicated_fraction:.1f}% "
            f"feasible={report.feasible} ({report.elapsed_seconds:.1f}s)"
        )
    return 0


def _run_partition_request(args: argparse.Namespace, request) -> int:
    """Execute a partition request through :func:`repro.api.run_request`.

    Used whenever the invocation carries ECO state (``--delta`` /
    ``--warm-start``) or a cache policy: those paths need the canonical
    execution flow, not the CLI's direct solver calls.
    """
    from repro import api
    from repro.robust.errors import ReproError

    cache = getattr(args, "cache", "off") or "off"

    def _go() -> Any:
        return api.run_request(request, cache=cache)

    try:
        if getattr(args, "cache_dir", None):
            from repro.cache.store import SolutionCache, use_cache

            with use_cache(SolutionCache(args.cache_dir)):
                result = _go()
        else:
            result = _go()
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True, default=str))
        return 0 if result.ok else 1
    solution = result.solution
    cache_info = result.cache_info or {}
    warm = cache_info.get("warm") or {}
    line = (
        f"{request.circuit}: k={len(solution.blocks)} "
        f"cost={solution.cost.total_cost:.0f} feasible={solution.feasible} "
        f"({result.elapsed_seconds:.2f}s)"
    )
    if cache_info:
        line += f" cache={cache_info.get('status')}"
    if warm.get("mode") == "warm":
        line += (
            f" warm-start: {warm.get('dirty_cells')} dirty cells, "
            f"{warm.get('speedup', 0.0):.1f}x vs ancestor"
        )
    elif warm:
        line += f" warm-start declined: {warm.get('reason')}"
    print(line)
    return 0 if result.ok else 1


def _cmd_delta(args: argparse.Namespace) -> int:
    from repro.obs.ledger import netlist_fingerprint
    from repro.robust.errors import DeltaError
    from repro.techmap.delta import NetlistDelta, diff_mapped, seeded_delta

    if args.delta_cmd == "diff":
        old = technology_map(_resolve_circuit(args.old, args.scale, args.seed))
        new = technology_map(_resolve_circuit(args.new, args.scale, args.seed))
        try:
            delta = diff_mapped(old, new, base=netlist_fingerprint(old))
        except DeltaError as exc:
            raise SystemExit(str(exc)) from exc
        source = old
    else:  # gen
        source = technology_map(
            _resolve_circuit(args.circuit, args.scale, args.seed)
        )
        delta = seeded_delta(
            source,
            fraction=args.fraction,
            seed=args.delta_seed,
            base=netlist_fingerprint(source),
        )
    try:
        _, dirty = delta.apply(source)
    except DeltaError as exc:
        raise SystemExit(f"delta does not apply: {exc}") from exc
    doc = delta.to_dict()
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    print(
        f"{len(delta.ops)} ops -> {len(dirty.cells)} dirty cells "
        f"({100 * dirty.fraction:.1f}% of {dirty.n_cells} post-delta cells), "
        f"{len(dirty.touched_nets)} touched nets"
        + (f"; written to {args.out}" if args.out else ""),
        file=sys.stderr,
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.metrics is not None:
        return _analyze_metrics(args)
    if args.circuit is None:
        raise SystemExit("analyze: provide a circuit or --metrics PATH")
    from repro.hypergraph.build import build_hypergraph
    from repro.netlist.rent import fit_rent, rent_points
    from repro.replication.potential import cell_distribution

    netlist = _resolve_circuit(args.circuit, args.scale, args.seed)
    mapped = technology_map(netlist)
    hg = build_hypergraph(mapped, include_terminals=False)
    dist = cell_distribution(hg, name=mapped.name)
    fit = fit_rent(rent_points(hg, seed=args.seed))
    payload = {
        "circuit": mapped.name,
        "clbs": mapped.n_cells,
        "multi_output_cells": mapped.n_multi_output_cells,
        "psi_distribution": {label: count for label, count, _ in dist.rows()},
        "rent_exponent": round(fit.exponent, 3) if fit else None,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        from repro.experiments.figure3 import ascii_histogram

        print(ascii_histogram(dist))
        if fit:
            print(f"Rent exponent: {fit.exponent:.3f} "
                  f"(coefficient {fit.coefficient:.2f}, "
                  f"{len(fit.points)} sample blocks)")
    return 0


def _analyze_metrics(args: argparse.Namespace) -> int:
    """Validate a JSONL observability trace and print a summary."""
    from repro.obs.events import validate_jsonl_file
    from repro.obs.summary import summarize_events

    try:
        events, problems = validate_jsonl_file(args.metrics)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.metrics!r}: {exc}") from exc
    if args.json:
        print(
            json.dumps(
                {"path": args.metrics, "events": len(events), "problems": problems},
                indent=2,
            )
        )
    else:
        print(summarize_events(events) if events else "(empty trace)")
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
    return 0 if not problems else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import table1, table2, table3, figure3, tables4to7

    name = args.name
    if name == "table1":
        print(table1.run().text())
    elif name == "table2":
        print(table2.run(args.circuits, args.scale, args.seed).text())
    elif name == "figure3":
        print(figure3.run(args.circuits, args.scale, args.seed).text())
    elif name == "table3":
        print(
            table3.run(args.circuits, args.scale, args.seed, runs=args.runs).text()
        )
    elif name in ("table4", "table5", "table6", "table7"):
        data = tables4to7.sweep(args.circuits, args.scale, args.seed)
        table_fn = {
            "table4": tables4to7.table4,
            "table5": tables4to7.table5,
            "table6": tables4to7.table6,
            "table7": tables4to7.table7,
        }[name]
        print(table_fn(data, args.scale).text())
    else:
        raise SystemExit(f"unknown experiment {name!r}")
    return 0


# ---------------------------------------------------------------------------
# runs: the persistent ledger
# ---------------------------------------------------------------------------


def _runs_ledger(args: argparse.Namespace):
    """Ledger for the ``runs`` subcommands (always resolves to one)."""
    from repro.obs.ledger import Ledger, resolve_ledger

    return resolve_ledger(getattr(args, "ledger", None)) or Ledger()


def _quality_brief(record: dict) -> str:
    """One-line quality summary keyed by record kind."""
    quality = record.get("quality") or {}
    if record.get("kind") == "bipartition":
        return (
            f"best_cut={quality.get('best_cut')} "
            f"avg_cut={quality.get('avg_cut')}"
        )
    if "table" in quality:
        return f"table={quality.get('table')}"
    return (
        f"k={quality.get('k')} cost={quality.get('total_cost')} "
        f"feasible={quality.get('feasible')}"
    )


def _cmd_runs_list(args: argparse.Namespace) -> int:
    ledger = _runs_ledger(args)
    rows = ledger.records()
    if args.kind:
        rows = [r for r in rows if r.get("kind") == args.kind]
    if args.circuit:
        rows = [r for r in rows if r.get("circuit") == args.circuit]
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "run_id": r.get("run_id"),
                        "run_key": r.get("run_key"),
                        "kind": r.get("kind"),
                        "circuit": r.get("circuit"),
                        "seed": r.get("seed"),
                        "iso_ts": r.get("iso_ts"),
                        "git_rev": r.get("git_rev"),
                        "quality": r.get("quality"),
                    }
                    for r in rows
                ],
                indent=2,
            )
        )
        return 0
    if not rows:
        print(f"(no records in {ledger.path})")
        return 0
    for i, record in enumerate(rows):
        print(
            f"{i:>3}  {record.get('run_id')}  {record.get('iso_ts')}  "
            f"{record.get('kind'):<11} {str(record.get('circuit')):<10} "
            f"seed={record.get('seed')}  {_quality_brief(record)}"
        )
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    from repro.obs.compare import flatten

    ledger = _runs_ledger(args)
    try:
        record = ledger.find(args.token)
    except (LookupError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    for key in ("run_id", "run_key", "kind", "circuit", "seed", "iso_ts",
                "git_rev", "netlist_hash", "config_fingerprint"):
        print(f"{key:>18}: {record.get(key)}")
    print(f"{'config':>18}: {json.dumps(record.get('config'), sort_keys=True)}")
    for metric, value in sorted(flatten(record.get("quality") or {}).items()):
        print(f"{'quality.' + metric:>40}: {value}")
    convergence = record.get("convergence") or {}
    carves = convergence.get("carves") or []
    for carve in carves:
        print(
            f"{'carve':>18}: level={carve.get('level')} "
            f"device={carve.get('device')} clbs={carve.get('clbs')} "
            f"cut={carve.get('cut')} terminals={carve.get('terminals')}"
        )
    ml_levels = convergence.get("multilevel") or []
    for entry in ml_levels:
        print(
            f"{'vcycle':>18}: level={entry.get('level')} "
            f"cells={entry.get('cells')} nets={entry.get('nets')} "
            f"cut={entry.get('cut')} match_rate={entry.get('match_rate')}"
        )
    if convergence.get("multilevel_dropped"):
        print(
            f"{'vcycle':>18}: "
            f"(+{convergence['multilevel_dropped']} more levels dropped)"
        )
    return 0


def _parse_tolerances(specs: List[str]) -> dict:
    from repro.obs.compare import parse_tolerance

    tolerances = {}
    for spec in specs:
        try:
            metric, tol = parse_tolerance(spec)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
        tolerances[metric] = tol
    return tolerances


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.obs.compare import diff_records, gate_exit_code, render_text

    ledger = _runs_ledger(args)
    try:
        baseline = ledger.find(args.baseline)
        current = ledger.find(args.current)
    except (LookupError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    diff = diff_records(baseline, current, _parse_tolerances(args.tolerance))
    if args.json:
        print(json.dumps(diff.as_dict(), indent=2))
    else:
        print(render_text(diff, show_same=args.show_same))
    return gate_exit_code(diff, strict=args.strict)


def _cmd_runs_report(args: argparse.Namespace) -> int:
    from repro.obs.compare import diff_records, render_html

    ledger = _runs_ledger(args)
    try:
        if args.tokens:
            records = [ledger.find(token) for token in args.tokens]
        else:
            records = ledger.records()[-args.last:]
        baseline = ledger.find(args.baseline) if args.baseline else None
    except (LookupError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    if not records:
        raise SystemExit(f"no records to report on in {ledger.path}")
    diffs = [
        diff_records(baseline, record, _parse_tolerances(args.tolerance))
        for record in records
    ] if baseline is not None else []
    page = render_html(records, diffs, title=f"Run ledger report: {ledger.path}")
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(page)
    print(f"report written to {args.out} "
          f"({len(records)} run(s), {len(diffs)} diff(s))")
    return 0


# ---------------------------------------------------------------------------
# batch & cache: manifest-driven sweeps against the solution cache
# ---------------------------------------------------------------------------


def _cmd_batch_run(args: argparse.Namespace) -> int:
    from repro.batch.manifest import ManifestError, load_manifest
    from repro.batch.scheduler import run_batch

    try:
        manifest = load_manifest(args.manifest)
    except ManifestError as exc:
        raise SystemExit(str(exc)) from exc

    from repro.obs.events import LineWriter

    done = [0]
    # One writer, one write() per line: progress callbacks fire from
    # collector threads when --jobs > 1, and bare print() (two writes:
    # text then newline) interleaves mid-line under that concurrency.
    writer = LineWriter(sys.stderr)

    def progress(payload: dict) -> None:
        if args.quiet:
            return
        event = payload.get("event")
        if event in ("job.done", "job.skipped"):
            done[0] += 1
            status = payload.get("status", "skipped")
            cache_status = payload.get("cache_status", "-")
            wall = payload.get("wall_seconds", 0.0)
            writer.write_line(
                f"  [{done[0]}] {payload.get('job_id')}: {status} "
                f"(cache {cache_status}, {wall:.2f}s)"
            )

    with _observability(args) as (trace_path, _events):
        if args.nodes:
            from repro.cluster.scheduler import run_cluster_batch
            from repro.cluster.store import ClusterError

            try:
                report = run_cluster_batch(
                    manifest,
                    nodes=args.nodes,
                    cluster_dir=args.cluster_dir,
                    cache=args.cache,
                    deadline=args.deadline,
                    on_event=progress,
                )
            except ClusterError as exc:
                raise SystemExit(str(exc)) from exc
        else:
            report = run_batch(
                manifest,
                jobs=args.jobs,
                cache=args.cache,
                cache_dir=args.cache_dir,
                deadline=args.deadline,
                on_event=progress,
            )
    if args.report:
        report.write(args.report)
        print(f"report written to {args.report}", file=sys.stderr)
    if trace_path is not None:
        print(f"trace written to {trace_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    verdicts = report.counts("status")
    clean = not verdicts.get("failed") and not verdicts.get("skipped")
    return 0 if clean or args.keep_going else 1


def _cmd_batch_manifest(args: argparse.Namespace) -> int:
    from repro.batch.manifest import ManifestError, expand_manifest
    from repro.experiments import tables4to7

    thresholds = []
    for spec in args.thresholds:
        thresholds.append(float("inf") if spec == "inf" else float(spec))
    manifest = tables4to7.sweep_manifest(
        circuits=args.circuits,
        scale=args.scale,
        seed=args.seed,
        thresholds=thresholds,
        n_solutions=args.solutions,
        seeds_per_carve=args.seeds_per_carve,
        devices_per_carve=args.devices_per_carve,
    )
    try:
        n_jobs = len(expand_manifest(manifest))
    except ManifestError as exc:
        raise SystemExit(str(exc)) from exc
    text = json.dumps(manifest, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"manifest with {n_jobs} job(s) written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_batch_check(args: argparse.Namespace) -> int:
    from repro.batch.scheduler import check_reports

    reports = []
    for path in (args.first, args.second):
        try:
            with open(path, encoding="utf-8") as fh:
                reports.append(json.load(fh))
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read report {path}: {exc}") from exc
    problems = check_reports(reports[0], reports[1], args.min_hit_rate)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    rate = reports[1].get("cache", {}).get("hit_rate", 0.0)
    print(
        f"OK: runs are bit-identical, warm hit rate {rate:.0%} "
        f">= {args.min_hit_rate:.0%}"
    )
    return 0


def _cli_cache(args: argparse.Namespace):
    from repro.cache.store import SolutionCache, resolve_cache

    if args.cache_dir:
        return SolutionCache(args.cache_dir)
    return resolve_cache()


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    stats = _cli_cache(args).stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        for key, value in stats.items():
            print(f"{key:>12}: {value}")
    return 0


# ---------------------------------------------------------------------------
# cluster: the simulated multi-node solve farm
# ---------------------------------------------------------------------------


def _cmd_cluster_start(args: argparse.Namespace) -> int:
    from repro.cluster.admin import ensure_cluster
    from repro.cluster.store import ClusterError

    try:
        cluster = ensure_cluster(
            args.cluster_dir,
            nodes=args.nodes,
            replication=args.replication,
            write_quorum=args.write_quorum,
            read_quorum=args.read_quorum,
        )
    except ClusterError as exc:
        raise SystemExit(str(exc)) from exc
    status = cluster.status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(
            f"cluster at {status['root']}: {len(status['nodes'])} node(s), "
            f"replication {status['replication']}, "
            f"W={status['write_quorum']} R={status['read_quorum']}"
        )
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    from repro.cluster.admin import load_cluster
    from repro.cluster.store import ClusterError

    try:
        cluster = load_cluster(args.cluster_dir)
        if args.kill:
            cluster.kill(args.kill)
        if args.restart:
            cluster.restart(args.restart)
            delivered = cluster.deliver_hints(args.restart)
            repaired = cluster.anti_entropy()
            print(
                f"{args.restart} rejoined: {delivered} hint(s) delivered, "
                f"{repaired} entrie(s) repaired",
                file=sys.stderr,
            )
        status = cluster.status()
    except ClusterError as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0 if status["in_sync"] else 1
    print(f"cluster at {status['root']} "
          f"(replication {status['replication']}, "
          f"W={status['write_quorum']} R={status['read_quorum']}):")
    for row in status["nodes"]:
        state = "up" if row["up"] else "DOWN"
        hints = sum(row["pending_hints"].values())
        print(
            f"  {row['name']:<8} {state:<5} {row['entries']:>5} entrie(s) "
            f"{row['bytes']:>9} bytes  digest {row['digest_root'][:12]}  "
            f"{hints} pending hint(s)"
        )
    print(f"  in sync: {'yes' if status['in_sync'] else 'NO'} "
          f"({status['live']}/{len(status['nodes'])} live)")
    return 0 if status["in_sync"] else 1


def _cmd_cluster_drill(args: argparse.Namespace) -> int:
    from repro.batch.manifest import ManifestError, load_manifest
    from repro.cluster.drill import run_drill
    from repro.cluster.store import ClusterError

    try:
        manifest = load_manifest(args.manifest)
    except ManifestError as exc:
        raise SystemExit(str(exc)) from exc

    def progress(payload: dict) -> None:
        if args.quiet:
            return
        event = payload.get("event")
        if event in ("node.crash", "node.dead", "job.redispatch", "job.steal"):
            detail = {
                k: v for k, v in payload.items() if k not in ("event",)
            }
            print(f"  [{event}] {detail}", file=sys.stderr)

    with _observability(args) as (trace_path, _events):
        try:
            report = run_drill(
                manifest,
                cluster_dir=args.cluster_dir,
                nodes=args.nodes,
                kill=args.kill,
                after=(
                    args.after
                    if args.after is not None
                    else (0 if args.kill else 1)
                ),
                min_hit_rate=args.min_hit_rate,
                on_event=progress,
            )
        except ClusterError as exc:
            raise SystemExit(str(exc)) from exc
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"drill report written to {args.report}", file=sys.stderr)
    if trace_path is not None:
        print(f"trace written to {trace_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
        for problem in report.problems:
            print(f"FAIL: {problem}", file=sys.stderr)
    return 0 if report.passed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import run_service

    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    try:
        with _observability(args):
            run_service(
                host=args.host,
                port=args.port,
                workers=args.workers,
                cache=args.cache,
                cache_dir=args.cache_dir,
                cluster_dir=args.cluster_dir,
                rate=args.rate,
                burst=args.burst,
                max_inflight=args.max_inflight,
            )
    except OSError as exc:
        raise SystemExit(f"cannot bind {args.host}:{args.port}: {exc}") from exc
    return 0


def _expand_stream_paths(paths: List[str]) -> List[str]:
    """Flatten trace directories into their ``*.jsonl`` streams."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            out.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".jsonl")
            )
        else:
            out.append(path)
    return out


def _cmd_obs_validate(args: argparse.Namespace) -> int:
    from repro.obs.events import validate_jsonl_file

    failed = False
    for path in _expand_stream_paths(args.paths):
        events, problems = validate_jsonl_file(path)
        if problems:
            failed = True
            print(f"{path}: INVALID ({len(problems)} problem(s)): {problems[0]}")
            if args.verbose:
                for problem in problems[1:]:
                    print(f"  {problem}")
        else:
            print(f"{path}: ok ({len(events)} event(s))")
    return 1 if failed else 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs.export import export_chrome_trace

    paths = _expand_stream_paths(args.paths)
    if not paths:
        raise SystemExit("obs export: no JSONL event streams found")
    try:
        summary = export_chrome_trace(paths, args.out, trace_id=args.trace_id)
    except OSError as exc:
        raise SystemExit(f"obs export: {exc}") from exc
    print(
        f"wrote {summary['events']} event(s) ({summary['spans']} span(s)) "
        f"from {summary['streams']} stream(s) to {summary['out']}"
    )
    return 0


def _snapshot_from_stream(path: str) -> dict:
    """Rebuild a metrics snapshot from a stream's flushed final values."""
    from repro.obs.events import read_jsonl

    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    for record in read_jsonl(path, skip_invalid=True):
        kind = record.get("kind")
        name = record.get("name")
        if not isinstance(name, str):
            continue
        if kind == "counter":
            counters[name] = record.get("value", 0)
        elif kind == "gauge":
            gauges[name] = record.get("value", 0)
        elif kind == "histogram":
            pairs = record.get("buckets") or []
            histograms[name] = {
                "bounds": [p[0] for p in pairs if p[0] is not None],
                "counts": [p[1] for p in pairs],
                "count": record.get("count", 0),
                "sum": record.get("sum", 0.0),
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _cmd_obs_metrics(args: argparse.Namespace) -> int:
    if (args.url is None) == (args.path is None):
        raise SystemExit("obs metrics: give a JSONL PATH or --url, not both")
    if args.url is not None:
        from urllib.error import URLError
        from urllib.request import urlopen

        url = args.url
        if not url.rstrip("/").endswith("/v1/metrics"):
            url = url.rstrip("/") + "/v1/metrics"
        try:
            with urlopen(url, timeout=30) as response:
                sys.stdout.write(response.read().decode("utf-8"))
        except (OSError, URLError) as exc:
            raise SystemExit(f"obs metrics: cannot scrape {url}: {exc}") from exc
        return 0
    from repro.obs.telemetry import prometheus_exposition

    try:
        snapshot = _snapshot_from_stream(args.path)
    except OSError as exc:
        raise SystemExit(f"obs metrics: {exc}") from exc
    sys.stdout.write(prometheus_exposition(snapshot))
    return 0


def _cmd_cache_evict(args: argparse.Namespace) -> int:
    store = _cli_cache(args)
    evicted = store.evict(0 if args.all else args.max_bytes)
    stats = store.stats()
    print(
        f"evicted {len(evicted)} entrie(s); "
        f"{stats['entries']} left ({stats['bytes']} bytes) in {store.root}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fpga",
        description="Heterogeneous-FPGA netlist partitioning (DAC'94 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="gate-level circuit statistics")
    _add_circuit_args(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_map = sub.add_parser("map", help="technology-map into XC3000 CLBs")
    _add_circuit_args(p_map)
    p_map.set_defaults(func=_cmd_map)

    p_bi = sub.add_parser("bipartition", help="equal-size min-cut bipartitioning")
    _add_circuit_args(p_bi)
    p_bi.add_argument(
        "--algorithm",
        choices=["fm", "fm+functional", "fm+traditional"],
        default="fm+functional",
    )
    p_bi.add_argument("--runs", type=int, default=5)
    p_bi.add_argument("--threshold", type=int, default=0)
    _add_multilevel_arg(p_bi)
    _add_jobs_arg(p_bi)
    _add_resilience_args(p_bi)
    _add_obs_args(p_bi)
    p_bi.set_defaults(func=_cmd_bipartition)

    p_kw = sub.add_parser("partition", help="heterogeneous k-way partitioning")
    _add_circuit_args(p_kw)
    p_kw.add_argument("--threshold", default="1", help="T (int or 'inf')")
    p_kw.add_argument("--solutions", type=int, default=2)
    p_kw.add_argument(
        "--verify",
        action="store_true",
        help="run the independent solution checker; non-zero exit on violations",
    )
    p_kw.add_argument(
        "--delta",
        metavar="PATH",
        default=None,
        help="apply an ECO delta document (repro-netlist-delta/1) to the "
        "mapped netlist before solving; enables warm-start repair from a "
        "cached ancestor solve",
    )
    p_kw.add_argument(
        "--warm-start",
        dest="warm_start",
        metavar="KEY",
        default=None,
        help="warm-start policy for delta solves: a cache key to seed from, "
        "'auto' (nearest cached ancestor, the default), or 'off'",
    )
    p_kw.add_argument(
        "--cache",
        choices=("off", "use", "refresh"),
        default="off",
        help="solution cache policy (default off; 'use' is required for "
        "warm-start repair)",
    )
    p_kw.add_argument(
        "--cache-dir",
        dest="cache_dir",
        metavar="DIR",
        default=None,
        help="cache directory (default: REPRO_CACHE or the user cache dir)",
    )
    _add_multilevel_arg(p_kw)
    _add_jobs_arg(p_kw)
    _add_resilience_args(p_kw)
    _add_obs_args(p_kw)
    p_kw.set_defaults(func=_cmd_partition)

    p_delta = sub.add_parser(
        "delta",
        help="ECO netlist deltas: diff two circuits or generate a drill edit",
    )
    delta_sub = p_delta.add_subparsers(dest="delta_cmd", required=True)
    p_dd = delta_sub.add_parser(
        "diff",
        help="diff OLD into NEW as a repro-netlist-delta/1 document",
    )
    p_dd.add_argument("old", help="benchmark name or .bench file (pre-ECO)")
    p_dd.add_argument("new", help="benchmark name or .bench file (post-ECO)")
    p_dd.add_argument("--scale", type=float, default=1.0)
    p_dd.add_argument("--seed", type=int, default=1994, help="mapping seed")
    p_dd.add_argument("--out", metavar="PATH", default=None)
    p_dd.set_defaults(func=_cmd_delta)
    p_dg = delta_sub.add_parser(
        "gen",
        help="generate a deterministic seeded ECO edit (CI / bench drills)",
    )
    p_dg.add_argument("circuit", help="benchmark name or .bench file")
    p_dg.add_argument("--scale", type=float, default=1.0)
    p_dg.add_argument("--seed", type=int, default=1994, help="mapping seed")
    p_dg.add_argument(
        "--fraction",
        type=float,
        default=0.01,
        help="fraction of cells to edit (default 0.01)",
    )
    p_dg.add_argument(
        "--delta-seed",
        dest="delta_seed",
        type=int,
        default=0,
        help="seed for the edit generator itself",
    )
    p_dg.add_argument("--out", metavar="PATH", default=None)
    p_dg.set_defaults(func=_cmd_delta)

    p_an = sub.add_parser(
        "analyze",
        help="replication-potential distribution + Rent exponent, "
        "or validate an observability trace (--metrics)",
    )
    p_an.add_argument(
        "circuit", nargs="?", default=None, help="benchmark name or .bench file"
    )
    p_an.add_argument("--scale", type=float, default=1.0)
    p_an.add_argument("--seed", type=int, default=1994)
    p_an.add_argument("--json", action="store_true", help="machine-readable output")
    p_an.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="validate and summarize a JSONL trace instead of a circuit",
    )
    p_an.set_defaults(func=_cmd_analyze)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument(
        "name",
        choices=[
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "figure3",
        ],
    )
    p_exp.add_argument("--scale", type=float, default=0.5)
    p_exp.add_argument("--circuits", nargs="*", default=None)
    p_exp.add_argument("--seed", type=int, default=1994)
    p_exp.add_argument("--runs", type=int, default=20)
    p_exp.set_defaults(func=_cmd_experiment)

    p_runs = sub.add_parser(
        "runs", help="inspect the persistent run ledger (quality drift)"
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    def _ledger_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ledger",
            metavar="PATH",
            default=None,
            help="ledger directory or .jsonl file (default results/ledger, "
            "or the REPRO_LEDGER env var)",
        )

    p_rl = runs_sub.add_parser("list", help="list ledger records")
    _ledger_arg(p_rl)
    p_rl.add_argument("--kind", default=None, help="filter by record kind")
    p_rl.add_argument("--circuit", default=None, help="filter by circuit")
    p_rl.add_argument("--json", action="store_true")
    p_rl.set_defaults(func=_cmd_runs_list)

    p_rs = runs_sub.add_parser("show", help="show one record in full")
    p_rs.add_argument(
        "token",
        help="record selector: index, run_id prefix, 'latest', or a JSONL path",
    )
    _ledger_arg(p_rs)
    p_rs.add_argument("--json", action="store_true")
    p_rs.set_defaults(func=_cmd_runs_show)

    p_rd = runs_sub.add_parser(
        "diff",
        help="diff two records; non-zero exit on drift/regression",
    )
    p_rd.add_argument("baseline", help="baseline record selector")
    p_rd.add_argument(
        "current", nargs="?", default="latest", help="current record selector"
    )
    _ledger_arg(p_rd)
    p_rd.add_argument(
        "--tolerance",
        action="append",
        default=[],
        metavar="METRIC=BAND",
        help="per-metric band, e.g. total_cost=5%% or avg_cut=2%%+0.5 "
        "(repeatable)",
    )
    p_rd.add_argument(
        "--strict",
        action="store_true",
        help="also fail on improvements (golden-determinism gating)",
    )
    p_rd.add_argument(
        "--show-same", action="store_true", help="print unchanged metrics too"
    )
    p_rd.add_argument("--json", action="store_true")
    p_rd.set_defaults(func=_cmd_runs_diff)

    p_rr = runs_sub.add_parser(
        "report", help="self-contained HTML report with convergence curves"
    )
    p_rr.add_argument(
        "tokens", nargs="*", help="record selectors (default: the last --last)"
    )
    _ledger_arg(p_rr)
    p_rr.add_argument(
        "--baseline",
        default=None,
        help="also diff every reported run against this record",
    )
    p_rr.add_argument(
        "--tolerance",
        action="append",
        default=[],
        metavar="METRIC=BAND",
        help="per-metric band for --baseline diffs (repeatable)",
    )
    p_rr.add_argument("--last", type=int, default=5, metavar="N")
    p_rr.add_argument("--out", default="runs_report.html", metavar="PATH")
    p_rr.set_defaults(func=_cmd_runs_report)

    p_batch = sub.add_parser(
        "batch", help="run job manifests against the solution cache"
    )
    batch_sub = p_batch.add_subparsers(dest="batch_command", required=True)

    def _cache_dir_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            metavar="PATH",
            default=None,
            help="solution-cache directory (default results/cache, "
            "or the REPRO_CACHE env var)",
        )

    p_br = batch_sub.add_parser(
        "run", help="execute every job of a manifest; exit 1 on failures"
    )
    p_br.add_argument("manifest", help="batch manifest JSON file")
    p_br.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (1 = sequential, 0 = all cores)",
    )
    p_br.add_argument(
        "--cache",
        choices=["use", "refresh", "off"],
        default="use",
        help="solution-cache policy for every job (default use)",
    )
    _cache_dir_arg(p_br)
    p_br.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="global wall-clock budget; jobs that cannot start in time "
        "are reported skipped",
    )
    p_br.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the full batch report JSON here",
    )
    p_br.add_argument(
        "--nodes",
        type=int,
        default=0,
        metavar="N",
        help="dispatch across an N-node simulated solve farm instead of a "
        "process pool (replicated cache, failure detection, re-dispatch; "
        "see docs/ROBUSTNESS.md)",
    )
    p_br.add_argument(
        "--cluster-dir",
        metavar="PATH",
        default=None,
        help="cluster layout directory for --nodes (default results/cluster)",
    )
    p_br.add_argument(
        "--keep-going",
        action="store_true",
        help="exit 0 even when jobs failed or were skipped (the report "
        "still carries the per-job verdicts)",
    )
    p_br.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    p_br.add_argument("--json", action="store_true")
    p_br.add_argument(
        "--trace",
        action="store_true",
        help="record batch/cache events as JSONL (see docs/OBSERVABILITY.md)",
    )
    p_br.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="JSONL trace destination (implies --trace; default trace.jsonl)",
    )
    p_br.set_defaults(func=_cmd_batch_run)

    p_bm = batch_sub.add_parser(
        "manifest", help="emit a Tables IV-VII sweep manifest"
    )
    p_bm.add_argument(
        "generator",
        choices=["tables4to7"],
        help="which manifest to generate",
    )
    p_bm.add_argument("--circuits", nargs="*", default=None)
    p_bm.add_argument("--scale", type=float, default=1.0)
    p_bm.add_argument("--seed", type=int, default=1994)
    p_bm.add_argument(
        "--thresholds",
        nargs="+",
        default=["inf", "0", "1", "2", "3"],
        metavar="T",
        help="replication thresholds ('inf' or numbers; "
        "default: inf 0 1 2 3)",
    )
    p_bm.add_argument("--solutions", type=int, default=2)
    p_bm.add_argument("--seeds-per-carve", type=int, default=3)
    p_bm.add_argument("--devices-per-carve", type=int, default=3)
    p_bm.add_argument(
        "--out", metavar="PATH", default=None, help="write here (default stdout)"
    )
    p_bm.set_defaults(func=_cmd_batch_manifest)

    p_bc = batch_sub.add_parser(
        "check",
        help="gate two batch reports: warm hit rate + bit-identical results",
    )
    p_bc.add_argument("first", help="cold-run report JSON")
    p_bc.add_argument("second", help="warm-run report JSON")
    p_bc.add_argument(
        "--min-hit-rate",
        type=float,
        default=0.9,
        metavar="FRAC",
        help="required cache hit rate in the second run (default 0.9)",
    )
    p_bc.set_defaults(func=_cmd_batch_check)

    p_cache = sub.add_parser(
        "cache", help="inspect or trim the on-disk solution cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    p_cs = cache_sub.add_parser("stats", help="entry/byte counts and location")
    _cache_dir_arg(p_cs)
    p_cs.add_argument("--json", action="store_true")
    p_cs.set_defaults(func=_cmd_cache_stats)

    p_ce = cache_sub.add_parser(
        "evict", help="LRU-evict entries down to the size cap"
    )
    _cache_dir_arg(p_ce)
    p_ce.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="evict down to N bytes (default: the configured cap)",
    )
    p_ce.add_argument(
        "--all", action="store_true", help="evict everything (same as 0 bytes)"
    )
    p_ce.set_defaults(func=_cmd_cache_evict)

    p_cluster = sub.add_parser(
        "cluster", help="the simulated multi-node solve farm (start/status/drill)"
    )
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    def _cluster_dir_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cluster-dir",
            metavar="PATH",
            default="results/cluster",
            help="cluster layout directory (default results/cluster)",
        )

    p_cl_start = cluster_sub.add_parser(
        "start", help="create (or re-open) a cluster layout on disk"
    )
    _cluster_dir_arg(p_cl_start)
    p_cl_start.add_argument(
        "--nodes", type=int, default=3, metavar="N", help="member count (default 3)"
    )
    p_cl_start.add_argument(
        "--replication",
        type=int,
        default=None,
        metavar="RF",
        help="replicas per entry (default: all nodes -- full replication)",
    )
    p_cl_start.add_argument("--write-quorum", type=int, default=1, metavar="W")
    p_cl_start.add_argument("--read-quorum", type=int, default=1, metavar="R")
    p_cl_start.add_argument("--json", action="store_true")
    p_cl_start.set_defaults(func=_cmd_cluster_start)

    p_cl_status = cluster_sub.add_parser(
        "status",
        help="per-node liveness, entries, digests and pending hints; "
        "exit 1 when replicas diverge",
    )
    _cluster_dir_arg(p_cl_status)
    p_cl_status.add_argument(
        "--kill", metavar="NODE", default=None, help="take a node down first"
    )
    p_cl_status.add_argument(
        "--restart",
        metavar="NODE",
        default=None,
        help="bring a node back first (delivers hints + runs anti-entropy)",
    )
    p_cl_status.add_argument("--json", action="store_true")
    p_cl_status.set_defaults(func=_cmd_cluster_status)

    p_cl_drill = cluster_sub.add_parser(
        "drill",
        help="kill/recover/replay determinism drill over a batch manifest; "
        "exit 1 on any violated expectation",
    )
    p_cl_drill.add_argument("manifest", help="batch manifest JSON file")
    _cluster_dir_arg(p_cl_drill)
    p_cl_drill.add_argument(
        "--nodes", type=int, default=3, metavar="N", help="member count (default 3)"
    )
    p_cl_drill.add_argument(
        "--kill",
        metavar="NODE",
        default=None,
        help="crash this specific node (default: whichever runs job --after)",
    )
    p_cl_drill.add_argument(
        "--after",
        type=int,
        default=None,
        metavar="N",
        help=(
            "crash fires on the (N+1)-th matching job execution "
            "(default 1: mid-wave; with --kill, 0: the named node's "
            "first job, since it may only ever get one)"
        ),
    )
    p_cl_drill.add_argument(
        "--min-hit-rate",
        type=float,
        default=0.9,
        metavar="FRAC",
        help="required cache hit rate in the replay run (default 0.9)",
    )
    p_cl_drill.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the full drill report JSON here",
    )
    p_cl_drill.add_argument(
        "--quiet", action="store_true", help="suppress drill progress lines"
    )
    p_cl_drill.add_argument("--json", action="store_true")
    p_cl_drill.add_argument(
        "--trace",
        action="store_true",
        help="record cluster events as JSONL (see docs/OBSERVABILITY.md)",
    )
    p_cl_drill.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="JSONL trace destination (implies --trace; default trace.jsonl)",
    )
    p_cl_drill.set_defaults(func=_cmd_cluster_drill)

    p_serve = sub.add_parser(
        "serve",
        help="partitioning-as-a-service: async HTTP job server "
        "(submit/status/cancel/stream; see docs/SERVICE.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8377,
        help="listen port (0 = pick a free port and print it; default 8377)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="solver worker processes (default 2)",
    )
    p_serve.add_argument(
        "--cache",
        choices=["use", "refresh", "off"],
        default="use",
        help="solution-cache policy for served jobs (default use)",
    )
    p_serve.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="solution-cache directory (default results/cache, "
        "or the REPRO_CACHE env var)",
    )
    p_serve.add_argument(
        "--cluster-dir",
        metavar="PATH",
        default=None,
        help="serve from a replicated cluster cache instead of a local store",
    )
    p_serve.add_argument(
        "--rate",
        type=float,
        default=20.0,
        metavar="R",
        help="per-client submissions/second (token-bucket refill; default 20)",
    )
    p_serve.add_argument(
        "--burst",
        type=float,
        default=40.0,
        metavar="B",
        help="per-client burst capacity (default 40)",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        metavar="N",
        help="per-client queued+running job quota (default 16)",
    )
    p_serve.add_argument(
        "--trace",
        action="store_true",
        help="serve under an enabled metrics registry: GET /v1/metrics "
        "then exposes every registry series (trace-labeled counters "
        "included), and job events are mirrored to the trace stream",
    )
    p_serve.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="JSONL trace destination (implies --trace; default trace.jsonl)",
    )
    p_serve.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="directory for per-process JSONL streams (implies --trace): "
        "the server writes main.jsonl, solver workers append "
        "worker-<pid>.jsonl; merge with 'repro-fpga obs export'",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_obs = sub.add_parser(
        "obs",
        help="observability utilities: validate JSONL event streams, "
        "export Perfetto timelines, render Prometheus metrics",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_ov = obs_sub.add_parser(
        "validate",
        help="validate repro-obs-events/1 JSONL stream(s); exit 1 and "
        "report the first offending line on schema problems",
    )
    p_ov.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="JSONL stream files or trace directories",
    )
    p_ov.add_argument(
        "--verbose", action="store_true",
        help="list every problem, not just the first",
    )
    p_ov.set_defaults(func=_cmd_obs_validate)

    p_oe = obs_sub.add_parser(
        "export",
        help="merge JSONL stream(s) into one Chrome trace-event timeline "
        "(open in Perfetto or chrome://tracing)",
    )
    p_oe.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="JSONL stream files or trace directories (multi-worker "
        "streams merge into per-pid lanes)",
    )
    p_oe.add_argument(
        "--chrome", action="store_true",
        help="write Chrome trace-event JSON (the default and currently "
        "only format)",
    )
    p_oe.add_argument(
        "--out", default="trace.chrome.json", metavar="FILE",
        help="output file (default trace.chrome.json)",
    )
    p_oe.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="keep only records stamped with this trace id",
    )
    p_oe.set_defaults(func=_cmd_obs_export)

    p_om = obs_sub.add_parser(
        "metrics",
        help="Prometheus text exposition: scrape a live service (--url) "
        "or render a JSONL trace's final metric values",
    )
    p_om.add_argument(
        "path", nargs="?", default=None, metavar="PATH",
        help="JSONL trace whose flushed metrics should be rendered",
    )
    p_om.add_argument(
        "--url", default=None, metavar="URL",
        help="service base URL (or full /v1/metrics URL) to scrape",
    )
    p_om.set_defaults(func=_cmd_obs_metrics)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
