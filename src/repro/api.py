"""The stable, versioned entry point to the partitioning stack.

``repro.api`` is the recommended way to drive the reproduction
programmatically.  It wraps the end-to-end flows of :mod:`repro.core.flow`
and the resilient orchestration of :mod:`repro.robust.runner` behind five
verbs with one consistent parameter vocabulary::

    from repro import api

    result = api.partition("s5378", scale=0.5, threshold=1, seed=7)
    result.solution.cost.total_cost      # the paper's eq. (1) objective
    result.metrics                       # observability snapshot (if tracing)
    result.run_log                       # orchestration log (if resilient)

* :func:`load` -- resolve a benchmark name / ``.bench`` path / netlist;
* :func:`map` -- technology-map a circuit into XC3000 CLBs;
* :func:`bipartition` -- the paper's experiment 1 (Table III);
* :func:`partition` -- the k-way heterogeneous flow (Tables IV-VII);
* :func:`analyze` -- validate and summarize an observability trace.

The solver verbs are thin shims over :func:`run_request`, which executes
a frozen, schema-versioned :class:`~repro.request.PartitionRequest` --
the canonical serializable form of a run that the CLI, batch manifests
and the job service (:mod:`repro.service`) all normalize into.  Build
one directly (or pass one as the first argument to either verb) when the
call needs to travel::

    req = api.PartitionRequest(verb="partition", circuit="s5378",
                               scale=0.5, threshold=1, seed=7)
    result = api.run_request(req)
    req.cache_key(mapped)                # ledger/cache identity
    api.RunResult.from_json(result.to_json())   # round-trippable results

Every verb returns a :class:`RunResult` stamped with
``schema_version`` so downstream consumers can detect shape changes.
Passing any of ``deadline`` / ``max_retries`` / ``fallback`` to
:func:`bipartition` or :func:`partition` routes the run through
:class:`~repro.robust.runner.ResilientRunner` (deadline splitting, retry
with seed perturbation, engine degradation, checkpointing) and attaches
the :class:`~repro.robust.runner.RunLog` to the result.

Parameter vocabulary, shared by every verb that accepts them:
``circuit`` (name, path or object), ``scale``, ``seed``, ``algorithm``
(``"fm+functional"`` | ``"fm+traditional"`` | ``"fm"``), ``jobs``,
``deadline`` (seconds).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Optional, Union

from repro.cache import codec as cache_codec
from repro.cache import store as cache_store
from repro.core.flow import (
    bipartition_experiment,
    kway_solution,
    map_circuit,
)
from repro.netlist.benchmarks import benchmark_circuit
from repro.netlist.bench_io import load_bench
from repro.netlist.netlist import Netlist
from repro.obs import ledger as obs_ledger
from repro.obs.events import validate_jsonl_file
from repro.obs.metrics import get_registry
from repro.obs.summary import summarize_events
from repro.obs.telemetry import new_trace_id, series
from repro.partition.devices import (
    XC3000_LIBRARY,
    XC4000_LIBRARY,
    DeviceLibrary,
)
from repro.partition.verify import verify_solution
from repro.robust.budget import ambient_budget
from repro.robust.budget import cancelled as _job_cancelled
from repro.robust.errors import DeltaError
from repro.request import (
    Algorithm,
    CachePolicy,
    MultilevelMode,
    PartitionRequest,
    build_request,
)
from repro.robust.runner import ResilientRunner, RunLog
from repro.techmap.mapped import MappedNetlist

#: Version of the :class:`RunResult` shape.  Bumped on any breaking
#: change to the dataclass fields or their meaning.
SCHEMA_VERSION = 1

#: Document identifier written in every serialized :class:`RunResult`.
RESULT_SCHEMA_NAME = "repro-run-result/1"


@dataclass
class RunResult:
    """Uniform envelope returned by every ``repro.api`` verb.

    ``solution`` holds the verb's primary artifact (a
    :class:`~repro.netlist.netlist.Netlist`, a
    :class:`~repro.techmap.mapped.MappedNetlist`, a
    :class:`~repro.core.results.BipartitionReport`, a
    :class:`~repro.partition.kway.KWaySolution`, or the analyze verdict
    dict).  ``run_log`` is populated only when the run went through the
    resilient runner; ``metrics`` is the active observability registry's
    snapshot (empty when tracing is disabled).
    """

    kind: str  # "load" | "map" | "bipartition" | "partition" | "analyze"
    solution: Any
    run_log: Optional[RunLog] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    schema_version: int = SCHEMA_VERSION
    #: The quality record appended to the run ledger, when one was
    #: enabled (``repro.obs.ledger``); ``None`` otherwise.  Additive
    #: field -- existing consumers of the version-1 shape are unaffected.
    run_record: Optional[Dict[str, Any]] = None
    #: Solution-cache interaction of this call (:mod:`repro.cache`):
    #: ``None`` with ``cache="off"``, otherwise a dict with ``status``
    #: (``"hit"`` | ``"miss"`` | ``"refreshed"``), ``key``, ``path`` and
    #: -- on a hit -- ``saved_seconds`` (the original solve wall-clock).
    #: Additive field, same compatibility note as ``run_record``.
    cache_info: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """True unless the solution itself reports a failure state."""
        feasible = getattr(self.solution, "feasible", True)
        truncated = getattr(self.solution, "truncated", False)
        return bool(feasible) and not truncated

    def to_dict(self) -> Dict[str, Any]:
        """The schema-versioned JSON document form, in stable field order.

        Only the solver verbs (``bipartition`` / ``partition``) serialize:
        their solutions round-trip through the solution-cache codec, which
        is exactly the representation cache entries and service responses
        already carry -- one serialization instead of three near-copies.
        The resilient-runner log travels one-way as its ``as_record()``
        summary under ``"runner"`` (the live :class:`RunLog` object is not
        reconstructible); raises ``TypeError`` for the other verbs.
        """
        return {
            "schema": RESULT_SCHEMA_NAME,
            "v": self.schema_version,
            "kind": self.kind,
            "ok": self.ok,
            "elapsed_seconds": self.elapsed_seconds,
            "solution": cache_codec.encode_solution(self.solution),
            "runner": self.run_log.as_record() if self.run_log else None,
            "metrics": self.metrics,
            "run_record": self.run_record,
            "cache_info": self.cache_info,
        }

    def to_json(self) -> str:
        """One-line JSON of :meth:`to_dict` (stable field order)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, doc: Any) -> "RunResult":
        """Rebuild a result from its document form.

        ``run_log`` is always ``None`` on the way back (the ``"runner"``
        summary is one-way; it stays available in the source document).
        Raises ``ValueError`` on a wrong schema or undecodable solution.
        """
        if not isinstance(doc, dict):
            raise ValueError(f"result is {type(doc).__name__}, expected object")
        schema = doc.get("schema", RESULT_SCHEMA_NAME)
        if schema != RESULT_SCHEMA_NAME:
            raise ValueError(
                f"result schema {schema!r}, expected {RESULT_SCHEMA_NAME!r}"
            )
        return cls(
            kind=doc["kind"],
            solution=cache_codec.decode_solution(doc["solution"]),
            run_log=None,
            metrics=doc.get("metrics") or {},
            elapsed_seconds=float(doc.get("elapsed_seconds", 0.0)),
            schema_version=int(doc.get("v", SCHEMA_VERSION)),
            run_record=doc.get("run_record"),
            cache_info=doc.get("cache_info"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Parse a serialized result; raises ``ValueError`` on bad input."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"result is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)


def _metrics_snapshot() -> Dict[str, Any]:
    reg = get_registry()
    return reg.snapshot() if reg.enabled else {}


def _wants_runner(
    deadline: Optional[float],
    max_retries: Optional[int],
    fallback: Optional[bool],
) -> bool:
    return deadline is not None or max_retries is not None or fallback is not None


def _make_runner(
    deadline: Optional[float],
    max_retries: Optional[int],
    fallback: Optional[bool],
) -> ResilientRunner:
    return ResilientRunner(
        deadline=deadline,
        max_retries=2 if max_retries is None else max_retries,
        fallback=True if fallback is None else fallback,
    )


def _cache_try_hit(
    kind: str,
    store: cache_store.SolutionCache,
    key: str,
    mapped: MappedNetlist,
) -> Optional[tuple]:
    """``(solution, entry)`` when a trustworthy hit exists, else ``None``.

    A hit is trusted only after it survives decoding *and* -- for k-way
    solutions -- the independent checker
    :func:`~repro.partition.verify.verify_solution` against the live
    mapped netlist.  Anything less is deleted and treated as a miss, so
    a corrupted/stale entry can cost a recompute but never poison a run.
    """
    entry = store.get(key)
    if entry is None or entry.get("kind") != kind:
        return None
    try:
        solution = cache_codec.decode_solution(entry["solution"])
    except cache_codec.CacheDecodeError:
        store.delete(key)
        return None
    if kind == "partition" and verify_solution(mapped, solution):
        store.delete(key)
        return None
    store.touch(key)
    return solution, entry


def _cache_hit_result(
    kind: str,
    store: cache_store.SolutionCache,
    key: str,
    solution: Any,
    entry: Dict[str, Any],
) -> RunResult:
    """Reconstruct the :class:`RunResult` a fresh solve would return.

    ``elapsed_seconds`` is the *original* solve wall-clock from the
    entry, so anything derived downstream (Table IV CPU columns, ledger
    diffs) is bit-identical between cold and warm runs.
    """
    saved = float(entry["elapsed_seconds"])
    reg = get_registry()
    reg.counter("cache.hits").inc()
    reg.emit_event(
        "cache.hit",
        key=key,
        kind=kind,
        circuit=entry.get("circuit"),
        saved_seconds=saved,
    )
    return RunResult(
        kind=kind,
        solution=solution,
        metrics=_metrics_snapshot(),
        elapsed_seconds=saved,
        cache_info={
            "status": "hit",
            "key": key,
            "path": store.path_for(key),
            "saved_seconds": saved,
        },
    )


def _cache_store_result(
    kind: str,
    cache: str,
    store: cache_store.SolutionCache,
    key: str,
    mapped: MappedNetlist,
    config: Dict[str, Any],
    seed: int,
    solution: Any,
    elapsed: float,
) -> Dict[str, Any]:
    """Memoize a fresh solve; returns the ``cache_info`` dict."""
    path = store.put(
        cache_store.build_entry(
            kind=kind,
            key=key,
            circuit=mapped.name,
            netlist_hash=obs_ledger.netlist_fingerprint(mapped),
            config=config,
            seed=seed,
            solution=cache_codec.encode_solution(solution),
            elapsed_seconds=elapsed,
        )
    )
    reg = get_registry()
    reg.counter("cache.misses" if cache == "use" else "cache.refreshes").inc()
    reg.counter("cache.stores").inc()
    reg.emit_event("cache.store", key=key, kind=kind, circuit=mapped.name)
    return {
        "status": "miss" if cache == "use" else "refreshed",
        "key": key,
        "path": path,
    }


def _try_warm_solve(
    request: PartitionRequest,
    store: Optional[cache_store.SolutionCache],
    base_mapped: MappedNetlist,
    mapped: MappedNetlist,
    dirty: Any,
    config: Dict[str, Any],
) -> tuple:
    """Attempt an incremental warm-start solve for a delta request.

    Returns ``(solution, warm_info)``; ``solution`` is ``None`` when no
    usable prior exists or the repair declined (``warm_info["reason"]``
    says why) and the caller falls back to the cold path.  The prior is
    the entry named by ``request.warm_start`` (when it is an explicit
    key) or the cache's nearest ancestor by *base* netlist hash --
    warm-starting always needs the cache, so ``cache="off"`` requests
    solve cold regardless of ``warm_start``.
    """
    from repro.partition.incremental import IncrementalConfig, incremental_partition

    if store is None:
        return None, {"mode": "cold", "reason": "cache disabled"}
    explicit = request.warm_start not in (None, "auto")
    if explicit:
        entry = store.get(request.warm_start)
        miss = f"warm-start key {request.warm_start!r} not in cache"
    else:
        entry = cache_store.nearest_ancestor(
            store,
            obs_ledger.netlist_fingerprint(base_mapped),
            config_fp=obs_ledger.config_fingerprint(obs_ledger._jsonable(config)),
            seed=request.seed,
        )
        miss = "no cached ancestor for the base netlist"
    if entry is None or entry.get("kind") != "partition":
        return None, {"mode": "cold", "reason": miss}
    try:
        previous = cache_codec.decode_solution(entry["solution"])
    except cache_codec.CacheDecodeError:
        return None, {"mode": "cold", "reason": "ancestor entry undecodable"}
    solution, info = incremental_partition(
        mapped,
        previous,
        dirty,
        IncrementalConfig(seed=request.seed, max_passes=request.max_passes),
    )
    info["ancestor_key"] = entry.get("key")
    info["ancestor_elapsed"] = entry.get("elapsed_seconds")
    return solution, info


def load(
    circuit: Union[str, Netlist],
    scale: float = 1.0,
    seed: int = 1994,
) -> RunResult:
    """Resolve ``circuit`` into a gate-level netlist.

    Accepts a benchmark name (see ``repro.BENCHMARK_NAMES``), a path to
    an ISCAS ``.bench`` file, or an already-built
    :class:`~repro.netlist.netlist.Netlist` (returned unchanged).
    """
    start = perf_counter()
    if isinstance(circuit, Netlist):
        netlist = circuit
    elif circuit.endswith(".bench"):
        netlist = load_bench(circuit)
    else:
        netlist = benchmark_circuit(circuit, scale=scale, seed=seed)
    return RunResult(
        kind="load",
        solution=netlist,
        metrics=_metrics_snapshot(),
        elapsed_seconds=perf_counter() - start,
    )


def map(  # noqa: A001 - deliberate: api.map reads naturally at call sites
    circuit: Union[str, Netlist, MappedNetlist],
    scale: float = 1.0,
    seed: int = 1994,
) -> RunResult:
    """Technology-map ``circuit`` into XC3000 CLBs."""
    start = perf_counter()
    if isinstance(circuit, MappedNetlist):
        mapped = circuit
    elif isinstance(circuit, Netlist):
        mapped = map_circuit(circuit, scale=scale, seed=seed)
    else:
        mapped = map_circuit(
            load(circuit, scale=scale, seed=seed).solution, scale=scale, seed=seed
        )
    return RunResult(
        kind="map",
        solution=mapped,
        metrics=_metrics_snapshot(),
        elapsed_seconds=perf_counter() - start,
    )


def _bundled_library(name: str) -> DeviceLibrary:
    """A bundled device library by name (the request wire spelling)."""
    for lib in (XC3000_LIBRARY, XC4000_LIBRARY):
        if lib.name == name:
            return lib
    known = sorted(lib.name for lib in (XC3000_LIBRARY, XC4000_LIBRARY))
    raise ValueError(f"unknown device library {name!r}; known: {known}")


def run_request(
    request: PartitionRequest,
    *,
    circuit: Union[str, Netlist, MappedNetlist, None] = None,
    library: Optional[DeviceLibrary] = None,
    cache: Union[CachePolicy, str, None] = None,
    jobs: Optional[int] = None,
) -> RunResult:
    """Execute a :class:`~repro.request.PartitionRequest` -- the one
    solver flow behind :func:`bipartition` and :func:`partition`.

    This is the single execution path for both verbs: ledger resolution,
    technology mapping, multilevel resolution, cache lookup
    (verify-before-trust), the solve itself (resilient runner when the
    request carries any of ``deadline`` / ``max_retries`` / ``fallback``),
    cache store and ledger append.  Every front door -- loose keyword
    calls, the CLI, batch jobs, the service -- normalizes into a request
    and lands here, so they are bit-identical by construction.

    ``circuit`` and ``library`` are optional side-channels for callers
    that already hold the live objects (an in-memory netlist, a custom
    :class:`~repro.partition.devices.DeviceLibrary`); by default both
    resolve from the request's ``circuit`` / ``library`` names.  ``cache``
    and ``jobs`` override the request's execution-only fields (useful for
    a scheduler re-running the same request under a different policy)
    without changing its identity.

    **Trace correlation:** the run executes under one ``trace_id`` --
    the request's own (minted by the service or a client) or a fresh one
    when tracing is enabled -- stamped on every observability line the
    run emits (solver spans, ``cache.hit``/``cache.store`` events,
    worker-pool fan-outs) and on the ledger record, so a single id links
    a service job to its solve, cache entry and ledger row.
    """
    if not isinstance(request, PartitionRequest):
        raise TypeError(
            f"run_request() takes a PartitionRequest, got {type(request).__name__}"
        )
    reg = get_registry()
    trace_id = request.trace_id
    if trace_id is None and reg.enabled:
        trace_id = new_trace_id()
    with reg.trace_scope(trace_id):
        result = _execute_request(
            request,
            circuit=circuit,
            library=library,
            cache=cache,
            jobs=jobs,
            trace_id=trace_id,
        )
        if reg.enabled and trace_id is not None:
            reg.counter(
                series("runs.completed", trace=trace_id, verb=request.verb)
            ).inc()
    return result


def _execute_request(
    request: PartitionRequest,
    *,
    circuit: Union[str, Netlist, MappedNetlist, None],
    library: Optional[DeviceLibrary],
    cache: Union[CachePolicy, str, None],
    jobs: Optional[int],
    trace_id: Optional[str],
) -> RunResult:
    """:func:`run_request` minus trace-context management."""
    policy = request.cache if cache is None else CachePolicy.coerce(cache)
    n_jobs = request.jobs if jobs is None else jobs
    kind = request.verb
    start = perf_counter()
    ledger = obs_ledger.resolve_ledger()
    mapped = map(
        circuit if circuit is not None else request.circuit,
        scale=request.scale,
        seed=request.mapping_seed,
    ).solution
    # Incremental front door: apply a carried ECO delta before anything
    # that depends on the netlist (multilevel resolution, cache identity,
    # the solve itself).  An empty delta leaves ``mapped`` untouched, so
    # its key equals the base request's key -- a pure cache hit.
    base_mapped = mapped
    dirty = None
    if request.delta is not None:
        if request.delta.base is not None:
            live = obs_ledger.netlist_fingerprint(base_mapped)
            if request.delta.base != live:
                raise DeltaError(
                    f"delta was computed against netlist "
                    f"{request.delta.base[:12]}..., but the live netlist "
                    f"is {live[:12]}..."
                )
        mapped, dirty = request.apply_delta(base_mapped)
    use_ml = request.resolve_multilevel(mapped.n_cells)
    # The request's config() is byte-compatible with the dicts the verbs
    # built inline pre-redesign, so fingerprints and cache keys carry over.
    config = request.config(use_ml)
    store = cache_store.resolve_cache() if policy is not CachePolicy.OFF else None
    key = (
        cache_store.cache_key(mapped, config, request.seed)
        if store is not None
        else ""
    )
    if policy is CachePolicy.USE and store is not None:
        hit = _cache_try_hit(kind, store, key, mapped)
        if hit is not None:
            return _cache_hit_result(kind, store, key, hit[0], hit[1])
    if library is None and kind == "partition":
        if request.library != XC3000_LIBRARY.name:
            library = _bundled_library(request.library)
    log: Optional[RunLog] = None
    warm_info: Optional[Dict[str, Any]] = None
    wants_runner = _wants_runner(
        request.deadline, request.max_retries, request.fallback
    )
    with obs_ledger.capture_events(enabled=ledger is not None) as events:
        if kind == "bipartition":
            if wants_runner:
                outcome = _make_runner(
                    request.deadline, request.max_retries, request.fallback
                ).bipartition(
                    mapped,
                    algorithm=request.algorithm.value,
                    runs=request.runs,
                    threshold=request.threshold,
                    seed=request.seed,
                    balance_tolerance=request.balance_tolerance,
                    max_passes=request.max_passes,
                    max_growth=request.max_growth,
                    jobs=n_jobs,
                    multilevel=use_ml,
                )
                solution, log = outcome.report, outcome.log
            else:
                solution = bipartition_experiment(
                    mapped,
                    algorithm=request.algorithm.value,
                    runs=request.runs,
                    threshold=request.threshold,
                    seed=request.seed,
                    balance_tolerance=request.balance_tolerance,
                    max_passes=request.max_passes,
                    max_growth=request.max_growth,
                    budget=ambient_budget(),
                    jobs=n_jobs,
                    multilevel=use_ml,
                )
        else:
            solution = None
            if (
                dirty is not None
                and not wants_runner
                and (request.warm_start or "auto") != "off"
            ):
                solution, warm_info = _try_warm_solve(
                    request, store, base_mapped, mapped, dirty, config
                )
            if solution is not None:
                pass  # warm repair succeeded; skip the cold solve
            elif wants_runner:
                outcome = _make_runner(
                    request.deadline, request.max_retries, request.fallback
                ).kway(
                    mapped,
                    threshold=request.threshold,
                    library=library,
                    algorithm=request.algorithm.value,
                    seed=request.seed,
                    seeds_per_carve=request.seeds_per_carve,
                    devices_per_carve=request.devices_per_carve,
                    jobs=n_jobs,
                    multilevel=request.multilevel.tri,
                )
                solution, log = outcome.solution, outcome.log
            else:
                solution = kway_solution(
                    mapped,
                    threshold=request.threshold,
                    library=library,
                    n_solutions=request.n_solutions,
                    seed=request.seed,
                    seeds_per_carve=request.seeds_per_carve,
                    algorithm=request.algorithm.value,
                    devices_per_carve=request.devices_per_carve,
                    budget=ambient_budget(),
                    jobs=n_jobs,
                    multilevel=request.multilevel.tri,
                )
    elapsed = perf_counter() - start
    if warm_info is not None and warm_info.get("mode") == "warm":
        prev_elapsed = warm_info.get("ancestor_elapsed")
        if isinstance(prev_elapsed, (int, float)) and elapsed > 0:
            warm_info["speedup"] = round(float(prev_elapsed) / elapsed, 3)
        reg = get_registry()
        if reg.enabled:
            # Counters are integers; the exact ratio rides the event.
            reg.counter("incr.warm_speedup").inc(
                max(1, round(float(warm_info.get("speedup", 1.0))))
            )
            reg.emit_event(
                "incr.warm",
                circuit=mapped.name,
                dirty_cells=int(warm_info.get("dirty_cells", 0)),
                speedup=float(warm_info.get("speedup", 0.0)),
                ancestor=str(warm_info.get("ancestor_key", "")),
            )
    cache_info = None
    if store is not None and _job_cancelled():
        # A cancelled solve wound down early: whatever it returned is
        # truncated, and memoizing it under the canonical key would
        # poison the cache for every future asker of the same request.
        cache_info = {"status": "skipped", "reason": "cancelled"}
    elif store is not None:
        cache_info = _cache_store_result(
            kind,
            policy.value,
            store,
            key,
            mapped,
            config,
            request.seed,
            solution,
            elapsed,
        )
        if warm_info is not None:
            cache_info["warm"] = warm_info
    record = None
    if ledger is not None:
        quality = (
            obs_ledger.quality_from_bipartition(solution)
            if kind == "bipartition"
            else obs_ledger.quality_from_kway(solution)
        )
        record = ledger.append(
            obs_ledger.build_record(
                kind=kind,
                circuit=mapped.name,
                mapped=mapped,
                config=config,
                seed=request.seed,
                quality=quality,
                convergence=obs_ledger.distill_convergence(events),
                elapsed_seconds=elapsed,
                runner_summary=log.as_record() if log is not None else None,
                trace_id=trace_id,
            )
        )
    return RunResult(
        kind=kind,
        solution=solution,
        run_log=log,
        metrics=_metrics_snapshot(),
        elapsed_seconds=elapsed,
        run_record=record,
        cache_info=cache_info,
    )


def cached_result(
    request: PartitionRequest,
    *,
    store: Optional[cache_store.SolutionCache] = None,
    mapped: Optional[MappedNetlist] = None,
) -> Optional[RunResult]:
    """A :class:`RunResult` for ``request`` served purely from the
    solution cache, or ``None`` when no trustworthy entry exists.

    No solve ever happens here: a hit is decoded, re-verified
    (verify-before-trust, like :func:`run_request`'s ``cache="use"``
    path) and wrapped exactly as a warm :func:`run_request` call would
    return it -- ``elapsed_seconds`` is the original solve wall-clock.
    The service's hot path: pass the memoized ``mapped`` netlist and the
    lookup is one shard read, independent of netlist size.
    """
    if store is None:
        store = cache_store.resolve_cache()
    if mapped is None:
        mapped = map(
            request.circuit, scale=request.scale, seed=request.mapping_seed
        ).solution
    # ``mapped`` is the *base* netlist (the service memoizes it by
    # circuit x scale x mapping-seed); a carried delta applies here so
    # the key and the verify target are both the post-delta netlist.
    key = request.cache_key(mapped)
    mapped, _ = request.apply_delta(mapped)
    reg = get_registry()
    with reg.trace_scope(request.trace_id):
        hit = _cache_try_hit(request.verb, store, key, mapped)
        if hit is None:
            return None
        result = _cache_hit_result(request.verb, store, key, hit[0], hit[1])
        if reg.enabled and request.trace_id is not None:
            reg.counter(
                series("runs.completed", trace=request.trace_id, verb=request.verb)
            ).inc()
    return result


def bipartition(
    circuit: Union[str, Netlist, MappedNetlist, PartitionRequest],
    scale: float = 1.0,
    seed: int = 0,
    algorithm: Union[Algorithm, str] = "fm+functional",
    runs: int = 20,
    threshold: Union[int, float] = 0,
    balance_tolerance: float = 0.02,
    max_passes: int = 16,
    max_growth: Optional[float] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
    max_retries: Optional[int] = None,
    fallback: Optional[bool] = None,
    cache: Union[CachePolicy, str] = "off",
    multilevel: Union[MultilevelMode, str, bool, None] = None,
) -> RunResult:
    """Experiment 1: ``runs`` equal-size min-cut bipartitionings.

    Accepts either a :class:`~repro.request.PartitionRequest` (the
    canonical artifact -- every other argument must then be left at its
    default) or the historical loose keywords, which are normalized into
    a request internally; both shapes execute the identical
    :func:`run_request` flow.

    ``multilevel`` takes a :class:`~repro.request.MultilevelMode`
    (``"on"`` | ``"off"`` | ``"auto"``, default auto: the V-cycle
    engages at :data:`repro.partition.multilevel.MULTILEVEL_AUTO_MIN_CELLS`
    cells).  The legacy ``True`` / ``False`` spellings still work behind
    a ``DeprecationWarning``.  When resolved on, the config fingerprint
    (ledger / cache key) gains a ``multilevel`` marker, so multilevel and
    flat records never collide; resolved-off runs keep their existing
    fingerprints.

    With any of ``deadline`` / ``max_retries`` / ``fallback`` set, the
    run goes through the resilient runner and ``run_log`` records every
    attempt, degradation and checkpoint.

    When a run ledger is enabled (:func:`repro.obs.ledger.resolve_ledger`:
    an installed ledger or the ``REPRO_LEDGER`` environment variable), the
    quality vector and convergence series are appended to it and attached
    to the result as ``run_record``.

    ``cache="use"`` consults the solution cache
    (:func:`repro.cache.resolve_cache`) under the ledger's netlist-hash x
    config-fingerprint x seed key and memoizes misses; ``"refresh"``
    recomputes and overwrites the entry; ``"off"`` (default) bypasses the
    cache entirely.  A hit skips the solve *and* the ledger append (no
    new run happened) and sets ``cache_info``.
    """
    if isinstance(circuit, PartitionRequest):
        return run_request(circuit)
    name = circuit if isinstance(circuit, str) else getattr(circuit, "name", "netlist")
    request = build_request(
        "bipartition",
        name,
        warn_legacy=True,
        scale=scale,
        seed=seed,
        algorithm=algorithm,
        runs=runs,
        threshold=threshold,
        balance_tolerance=balance_tolerance,
        max_passes=max_passes,
        max_growth=max_growth,
        jobs=jobs,
        deadline=deadline,
        max_retries=max_retries,
        fallback=fallback,
        cache=cache,
        multilevel=multilevel,
    )
    return run_request(
        request, circuit=None if isinstance(circuit, str) else circuit
    )


def partition(
    circuit: Union[str, Netlist, MappedNetlist, PartitionRequest],
    scale: float = 1.0,
    seed: int = 0,
    algorithm: Union[Algorithm, str] = "fm+functional",
    threshold: Union[int, float] = 1,
    library: Optional[DeviceLibrary] = None,
    n_solutions: int = 2,
    seeds_per_carve: int = 3,
    devices_per_carve: int = 3,
    jobs: int = 1,
    deadline: Optional[float] = None,
    max_retries: Optional[int] = None,
    fallback: Optional[bool] = None,
    cache: Union[CachePolicy, str] = "off",
    multilevel: Union[MultilevelMode, str, bool, None] = None,
    delta: Any = None,
    warm_start: Optional[str] = None,
) -> RunResult:
    """Experiment 2: k-way partitioning into heterogeneous devices.

    Accepts either a :class:`~repro.request.PartitionRequest` (the
    canonical artifact -- other arguments must then stay at their
    defaults, except ``library`` for a custom in-memory
    :class:`~repro.partition.devices.DeviceLibrary`) or the historical
    loose keywords, normalized into a request internally; both shapes
    execute the identical :func:`run_request` flow.

    ``multilevel`` takes a :class:`~repro.request.MultilevelMode` (see
    :func:`bipartition`): ``"on"`` seeds every carve candidate with a
    multilevel V-cycle initial solution, ``"off"`` never does, ``"auto"``
    (default) enables it per carve level once the working set is large
    enough; legacy bools coerce with a ``DeprecationWarning``.  When
    forced on, the config fingerprint gains a ``multilevel`` marker so
    ledger/cache records never collide with flat runs.

    ``threshold=float('inf')`` reproduces the no-replication DAC'93
    baseline.  With any of ``deadline`` / ``max_retries`` / ``fallback``
    set, the run goes through the resilient runner (verification gate,
    retry, engine degradation) and ``run_log`` is attached.

    When a run ledger is enabled (:func:`repro.obs.ledger.resolve_ledger`),
    the quality vector (cost, utilizations, replication, feasibility) and
    the per-carve convergence series are appended to it and attached to
    the result as ``run_record``.

    ``cache="use"`` consults the solution cache
    (:func:`repro.cache.resolve_cache`); a hit is re-verified against the
    live mapped netlist with
    :func:`~repro.partition.verify.verify_solution` before it is trusted,
    skips the solve and the ledger append, and sets ``cache_info``.
    ``"refresh"`` recomputes and overwrites the entry; ``"off"``
    (default) bypasses the cache entirely.

    ``delta`` (a :class:`~repro.techmap.delta.NetlistDelta` or its
    document form) turns the call into an incremental re-solve: the
    delta applies to the mapped netlist first, identity becomes the
    post-delta netlist, and -- with the cache enabled -- the solve
    warm-starts from the nearest cached ancestor, repairing only the
    dirty region before falling back to a cold solve.  ``warm_start``
    tunes that: ``"auto"``/``None`` picks the ancestor automatically,
    ``"off"`` forces cold, any other string is an explicit prior cache
    key.  See ``docs/INCREMENTAL.md``.
    """
    if isinstance(circuit, PartitionRequest):
        return run_request(circuit, library=library)
    name = circuit if isinstance(circuit, str) else getattr(circuit, "name", "netlist")
    request = build_request(
        "partition",
        name,
        warn_legacy=True,
        scale=scale,
        seed=seed,
        algorithm=algorithm,
        threshold=threshold,
        library=getattr(library, "name", None) or "XC3000",
        n_solutions=n_solutions,
        seeds_per_carve=seeds_per_carve,
        devices_per_carve=devices_per_carve,
        jobs=jobs,
        deadline=deadline,
        max_retries=max_retries,
        fallback=fallback,
        cache=cache,
        multilevel=multilevel,
        delta=delta,
        warm_start=warm_start,
    )
    return run_request(
        request,
        circuit=None if isinstance(circuit, str) else circuit,
        library=library,
    )


def analyze(metrics_path: str) -> RunResult:
    """Validate a JSONL observability trace and summarize it.

    ``solution`` is a dict with ``events`` (parsed event dicts),
    ``problems`` (schema violations, empty for a conforming stream) and
    ``summary`` (the human-readable report).
    """
    start = perf_counter()
    events, problems = validate_jsonl_file(metrics_path)
    summary = summarize_events(events) if events else ""
    return RunResult(
        kind="analyze",
        solution={"events": events, "problems": problems, "summary": summary},
        metrics=_metrics_snapshot(),
        elapsed_seconds=perf_counter() - start,
    )


__all__ = [
    "SCHEMA_VERSION",
    "RESULT_SCHEMA_NAME",
    "RunResult",
    "PartitionRequest",
    "Algorithm",
    "CachePolicy",
    "MultilevelMode",
    "load",
    "map",
    "bipartition",
    "partition",
    "run_request",
    "cached_result",
    "analyze",
]
