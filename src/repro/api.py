"""The stable, versioned entry point to the partitioning stack.

``repro.api`` is the recommended way to drive the reproduction
programmatically.  It wraps the end-to-end flows of :mod:`repro.core.flow`
and the resilient orchestration of :mod:`repro.robust.runner` behind five
verbs with one consistent parameter vocabulary::

    from repro import api

    result = api.partition("s5378", scale=0.5, threshold=1, seed=7)
    result.solution.cost.total_cost      # the paper's eq. (1) objective
    result.metrics                       # observability snapshot (if tracing)
    result.run_log                       # orchestration log (if resilient)

* :func:`load` -- resolve a benchmark name / ``.bench`` path / netlist;
* :func:`map` -- technology-map a circuit into XC3000 CLBs;
* :func:`bipartition` -- the paper's experiment 1 (Table III);
* :func:`partition` -- the k-way heterogeneous flow (Tables IV-VII);
* :func:`analyze` -- validate and summarize an observability trace.

Every verb returns a :class:`RunResult` stamped with
``schema_version`` so downstream consumers can detect shape changes.
Passing any of ``deadline`` / ``max_retries`` / ``fallback`` to
:func:`bipartition` or :func:`partition` routes the run through
:class:`~repro.robust.runner.ResilientRunner` (deadline splitting, retry
with seed perturbation, engine degradation, checkpointing) and attaches
the :class:`~repro.robust.runner.RunLog` to the result.

Parameter vocabulary, shared by every verb that accepts them:
``circuit`` (name, path or object), ``scale``, ``seed``, ``algorithm``
(``"fm+functional"`` | ``"fm+traditional"`` | ``"fm"``), ``jobs``,
``deadline`` (seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Optional, Union

from repro.cache import codec as cache_codec
from repro.cache import store as cache_store
from repro.core.flow import (
    bipartition_experiment,
    kway_solution,
    map_circuit,
)
from repro.netlist.benchmarks import benchmark_circuit
from repro.netlist.bench_io import load_bench
from repro.netlist.netlist import Netlist
from repro.obs import ledger as obs_ledger
from repro.obs.events import validate_jsonl_file
from repro.obs.metrics import get_registry
from repro.obs.summary import summarize_events
from repro.partition.devices import DeviceLibrary
from repro.partition.multilevel import resolve_multilevel
from repro.partition.verify import verify_solution
from repro.robust.runner import ResilientRunner, RunLog
from repro.techmap.mapped import MappedNetlist

#: Version of the :class:`RunResult` shape.  Bumped on any breaking
#: change to the dataclass fields or their meaning.
SCHEMA_VERSION = 1


@dataclass
class RunResult:
    """Uniform envelope returned by every ``repro.api`` verb.

    ``solution`` holds the verb's primary artifact (a
    :class:`~repro.netlist.netlist.Netlist`, a
    :class:`~repro.techmap.mapped.MappedNetlist`, a
    :class:`~repro.core.results.BipartitionReport`, a
    :class:`~repro.partition.kway.KWaySolution`, or the analyze verdict
    dict).  ``run_log`` is populated only when the run went through the
    resilient runner; ``metrics`` is the active observability registry's
    snapshot (empty when tracing is disabled).
    """

    kind: str  # "load" | "map" | "bipartition" | "partition" | "analyze"
    solution: Any
    run_log: Optional[RunLog] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    schema_version: int = SCHEMA_VERSION
    #: The quality record appended to the run ledger, when one was
    #: enabled (``repro.obs.ledger``); ``None`` otherwise.  Additive
    #: field -- existing consumers of the version-1 shape are unaffected.
    run_record: Optional[Dict[str, Any]] = None
    #: Solution-cache interaction of this call (:mod:`repro.cache`):
    #: ``None`` with ``cache="off"``, otherwise a dict with ``status``
    #: (``"hit"`` | ``"miss"`` | ``"refreshed"``), ``key``, ``path`` and
    #: -- on a hit -- ``saved_seconds`` (the original solve wall-clock).
    #: Additive field, same compatibility note as ``run_record``.
    cache_info: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """True unless the solution itself reports a failure state."""
        feasible = getattr(self.solution, "feasible", True)
        truncated = getattr(self.solution, "truncated", False)
        return bool(feasible) and not truncated


def _metrics_snapshot() -> Dict[str, Any]:
    reg = get_registry()
    return reg.snapshot() if reg.enabled else {}


def _wants_runner(
    deadline: Optional[float],
    max_retries: Optional[int],
    fallback: Optional[bool],
) -> bool:
    return deadline is not None or max_retries is not None or fallback is not None


def _make_runner(
    deadline: Optional[float],
    max_retries: Optional[int],
    fallback: Optional[bool],
) -> ResilientRunner:
    return ResilientRunner(
        deadline=deadline,
        max_retries=2 if max_retries is None else max_retries,
        fallback=True if fallback is None else fallback,
    )


def _check_cache_policy(cache: str) -> None:
    if cache not in cache_store.CACHE_POLICIES:
        raise ValueError(
            f"cache={cache!r} is not a cache policy; "
            f"expected one of {cache_store.CACHE_POLICIES}"
        )


def _cache_try_hit(
    kind: str,
    store: cache_store.SolutionCache,
    key: str,
    mapped: MappedNetlist,
) -> Optional[tuple]:
    """``(solution, entry)`` when a trustworthy hit exists, else ``None``.

    A hit is trusted only after it survives decoding *and* -- for k-way
    solutions -- the independent checker
    :func:`~repro.partition.verify.verify_solution` against the live
    mapped netlist.  Anything less is deleted and treated as a miss, so
    a corrupted/stale entry can cost a recompute but never poison a run.
    """
    entry = store.get(key)
    if entry is None or entry.get("kind") != kind:
        return None
    try:
        solution = cache_codec.decode_solution(entry["solution"])
    except cache_codec.CacheDecodeError:
        store.delete(key)
        return None
    if kind == "partition" and verify_solution(mapped, solution):
        store.delete(key)
        return None
    store.touch(key)
    return solution, entry


def _cache_hit_result(
    kind: str,
    store: cache_store.SolutionCache,
    key: str,
    solution: Any,
    entry: Dict[str, Any],
) -> RunResult:
    """Reconstruct the :class:`RunResult` a fresh solve would return.

    ``elapsed_seconds`` is the *original* solve wall-clock from the
    entry, so anything derived downstream (Table IV CPU columns, ledger
    diffs) is bit-identical between cold and warm runs.
    """
    saved = float(entry["elapsed_seconds"])
    reg = get_registry()
    reg.counter("cache.hits").inc()
    reg.emit_event(
        "cache.hit",
        key=key,
        kind=kind,
        circuit=entry.get("circuit"),
        saved_seconds=saved,
    )
    return RunResult(
        kind=kind,
        solution=solution,
        metrics=_metrics_snapshot(),
        elapsed_seconds=saved,
        cache_info={
            "status": "hit",
            "key": key,
            "path": store.path_for(key),
            "saved_seconds": saved,
        },
    )


def _cache_store_result(
    kind: str,
    cache: str,
    store: cache_store.SolutionCache,
    key: str,
    mapped: MappedNetlist,
    config: Dict[str, Any],
    seed: int,
    solution: Any,
    elapsed: float,
) -> Dict[str, Any]:
    """Memoize a fresh solve; returns the ``cache_info`` dict."""
    path = store.put(
        cache_store.build_entry(
            kind=kind,
            key=key,
            circuit=mapped.name,
            netlist_hash=obs_ledger.netlist_fingerprint(mapped),
            config=config,
            seed=seed,
            solution=cache_codec.encode_solution(solution),
            elapsed_seconds=elapsed,
        )
    )
    reg = get_registry()
    reg.counter("cache.misses" if cache == "use" else "cache.refreshes").inc()
    reg.counter("cache.stores").inc()
    reg.emit_event("cache.store", key=key, kind=kind, circuit=mapped.name)
    return {
        "status": "miss" if cache == "use" else "refreshed",
        "key": key,
        "path": path,
    }


def load(
    circuit: Union[str, Netlist],
    scale: float = 1.0,
    seed: int = 1994,
) -> RunResult:
    """Resolve ``circuit`` into a gate-level netlist.

    Accepts a benchmark name (see ``repro.BENCHMARK_NAMES``), a path to
    an ISCAS ``.bench`` file, or an already-built
    :class:`~repro.netlist.netlist.Netlist` (returned unchanged).
    """
    start = perf_counter()
    if isinstance(circuit, Netlist):
        netlist = circuit
    elif circuit.endswith(".bench"):
        netlist = load_bench(circuit)
    else:
        netlist = benchmark_circuit(circuit, scale=scale, seed=seed)
    return RunResult(
        kind="load",
        solution=netlist,
        metrics=_metrics_snapshot(),
        elapsed_seconds=perf_counter() - start,
    )


def map(  # noqa: A001 - deliberate: api.map reads naturally at call sites
    circuit: Union[str, Netlist, MappedNetlist],
    scale: float = 1.0,
    seed: int = 1994,
) -> RunResult:
    """Technology-map ``circuit`` into XC3000 CLBs."""
    start = perf_counter()
    if isinstance(circuit, MappedNetlist):
        mapped = circuit
    elif isinstance(circuit, Netlist):
        mapped = map_circuit(circuit, scale=scale, seed=seed)
    else:
        mapped = map_circuit(
            load(circuit, scale=scale, seed=seed).solution, scale=scale, seed=seed
        )
    return RunResult(
        kind="map",
        solution=mapped,
        metrics=_metrics_snapshot(),
        elapsed_seconds=perf_counter() - start,
    )


def bipartition(
    circuit: Union[str, Netlist, MappedNetlist],
    scale: float = 1.0,
    seed: int = 0,
    algorithm: str = "fm+functional",
    runs: int = 20,
    threshold: Union[int, float] = 0,
    balance_tolerance: float = 0.02,
    max_passes: int = 16,
    max_growth: Optional[float] = None,
    jobs: int = 1,
    deadline: Optional[float] = None,
    max_retries: Optional[int] = None,
    fallback: Optional[bool] = None,
    cache: str = "off",
    multilevel: Optional[bool] = None,
) -> RunResult:
    """Experiment 1: ``runs`` equal-size min-cut bipartitionings.

    ``multilevel`` is tri-state: ``True`` runs every inner solve as a
    coarsen-solve-uncoarsen V-cycle, ``False`` keeps the flat engines,
    ``None`` (default) auto-enables it at
    :data:`repro.partition.multilevel.MULTILEVEL_AUTO_MIN_CELLS` cells.
    When resolved on, the config fingerprint (ledger / cache key) gains a
    ``multilevel`` marker, so multilevel and flat records never collide;
    resolved-off runs keep their existing fingerprints.

    With any of ``deadline`` / ``max_retries`` / ``fallback`` set, the
    run goes through the resilient runner and ``run_log`` records every
    attempt, degradation and checkpoint.

    When a run ledger is enabled (:func:`repro.obs.ledger.resolve_ledger`:
    an installed ledger or the ``REPRO_LEDGER`` environment variable), the
    quality vector and convergence series are appended to it and attached
    to the result as ``run_record``.

    ``cache="use"`` consults the solution cache
    (:func:`repro.cache.resolve_cache`) under the ledger's netlist-hash x
    config-fingerprint x seed key and memoizes misses; ``"refresh"``
    recomputes and overwrites the entry; ``"off"`` (default) bypasses the
    cache entirely.  A hit skips the solve *and* the ledger append (no
    new run happened) and sets ``cache_info``.
    """
    _check_cache_policy(cache)
    start = perf_counter()
    ledger = obs_ledger.resolve_ledger()
    mapped = map(circuit, scale=scale, seed=seed or 1994).solution
    use_ml = resolve_multilevel(multilevel, mapped.n_cells)
    config = {
        "verb": "bipartition",
        "algorithm": algorithm,
        "runs": runs,
        "threshold": threshold,
        "balance_tolerance": balance_tolerance,
        "max_passes": max_passes,
        "max_growth": max_growth,
        "scale": scale,
        "deadline": deadline,
        "max_retries": max_retries,
        "fallback": fallback,
    }
    if use_ml:
        # Key present only when multilevel is on: resolved-off runs keep
        # their pre-multilevel fingerprints (golden drift gates included).
        config["multilevel"] = True
    store = cache_store.resolve_cache() if cache != "off" else None
    key = cache_store.cache_key(mapped, config, seed) if store is not None else ""
    if cache == "use" and store is not None:
        hit = _cache_try_hit("bipartition", store, key, mapped)
        if hit is not None:
            return _cache_hit_result("bipartition", store, key, hit[0], hit[1])
    log: Optional[RunLog] = None
    with obs_ledger.capture_events(enabled=ledger is not None) as events:
        if _wants_runner(deadline, max_retries, fallback):
            outcome = _make_runner(deadline, max_retries, fallback).bipartition(
                mapped,
                algorithm=algorithm,
                runs=runs,
                threshold=threshold,
                seed=seed,
                balance_tolerance=balance_tolerance,
                max_passes=max_passes,
                max_growth=max_growth,
                jobs=jobs,
                multilevel=use_ml,
            )
            report, log = outcome.report, outcome.log
        else:
            report = bipartition_experiment(
                mapped,
                algorithm=algorithm,
                runs=runs,
                threshold=threshold,
                seed=seed,
                balance_tolerance=balance_tolerance,
                max_passes=max_passes,
                max_growth=max_growth,
                jobs=jobs,
                multilevel=use_ml,
            )
    elapsed = perf_counter() - start
    cache_info = None
    if store is not None:
        cache_info = _cache_store_result(
            "bipartition", cache, store, key, mapped, config, seed, report, elapsed
        )
    record = None
    if ledger is not None:
        record = ledger.append(
            obs_ledger.build_record(
                kind="bipartition",
                circuit=mapped.name,
                mapped=mapped,
                config=config,
                seed=seed,
                quality=obs_ledger.quality_from_bipartition(report),
                convergence=obs_ledger.distill_convergence(events),
                elapsed_seconds=elapsed,
                runner_summary=log.as_record() if log is not None else None,
            )
        )
    return RunResult(
        kind="bipartition",
        solution=report,
        run_log=log,
        metrics=_metrics_snapshot(),
        elapsed_seconds=elapsed,
        run_record=record,
        cache_info=cache_info,
    )


def partition(
    circuit: Union[str, Netlist, MappedNetlist],
    scale: float = 1.0,
    seed: int = 0,
    algorithm: str = "fm+functional",
    threshold: Union[int, float] = 1,
    library: Optional[DeviceLibrary] = None,
    n_solutions: int = 2,
    seeds_per_carve: int = 3,
    devices_per_carve: int = 3,
    jobs: int = 1,
    deadline: Optional[float] = None,
    max_retries: Optional[int] = None,
    fallback: Optional[bool] = None,
    cache: str = "off",
    multilevel: Optional[bool] = None,
) -> RunResult:
    """Experiment 2: k-way partitioning into heterogeneous devices.

    ``multilevel`` is tri-state (see :func:`bipartition`): ``True`` seeds
    every carve candidate with a multilevel V-cycle initial solution,
    ``False`` never does, ``None`` (default) enables it per carve level
    once the working set is large enough.  When forced on, the config
    fingerprint gains a ``multilevel`` marker so ledger/cache records
    never collide with flat runs.

    ``threshold=float('inf')`` reproduces the no-replication DAC'93
    baseline.  With any of ``deadline`` / ``max_retries`` / ``fallback``
    set, the run goes through the resilient runner (verification gate,
    retry, engine degradation) and ``run_log`` is attached.

    When a run ledger is enabled (:func:`repro.obs.ledger.resolve_ledger`),
    the quality vector (cost, utilizations, replication, feasibility) and
    the per-carve convergence series are appended to it and attached to
    the result as ``run_record``.

    ``cache="use"`` consults the solution cache
    (:func:`repro.cache.resolve_cache`); a hit is re-verified against the
    live mapped netlist with
    :func:`~repro.partition.verify.verify_solution` before it is trusted,
    skips the solve and the ledger append, and sets ``cache_info``.
    ``"refresh"`` recomputes and overwrites the entry; ``"off"``
    (default) bypasses the cache entirely.
    """
    _check_cache_policy(cache)
    start = perf_counter()
    ledger = obs_ledger.resolve_ledger()
    mapped = map(circuit, scale=scale, seed=seed or 1994).solution
    config = {
        "verb": "partition",
        "algorithm": algorithm,
        "threshold": threshold,
        "library": getattr(library, "name", None) or "XC3000",
        "n_solutions": n_solutions,
        "seeds_per_carve": seeds_per_carve,
        "devices_per_carve": devices_per_carve,
        "scale": scale,
        "deadline": deadline,
        "max_retries": max_retries,
        "fallback": fallback,
    }
    if resolve_multilevel(multilevel, mapped.n_cells):
        # Present only when multilevel carving is active for this netlist,
        # so resolved-off runs keep their pre-multilevel fingerprints.
        config["multilevel"] = True
    store = cache_store.resolve_cache() if cache != "off" else None
    key = cache_store.cache_key(mapped, config, seed) if store is not None else ""
    if cache == "use" and store is not None:
        hit = _cache_try_hit("partition", store, key, mapped)
        if hit is not None:
            return _cache_hit_result("partition", store, key, hit[0], hit[1])
    log: Optional[RunLog] = None
    with obs_ledger.capture_events(enabled=ledger is not None) as events:
        if _wants_runner(deadline, max_retries, fallback):
            outcome = _make_runner(deadline, max_retries, fallback).kway(
                mapped,
                threshold=threshold,
                library=library,
                algorithm=algorithm,
                seed=seed,
                seeds_per_carve=seeds_per_carve,
                devices_per_carve=devices_per_carve,
                jobs=jobs,
                multilevel=multilevel,
            )
            solution, log = outcome.solution, outcome.log
        else:
            solution = kway_solution(
                mapped,
                threshold=threshold,
                library=library,
                n_solutions=n_solutions,
                seed=seed,
                seeds_per_carve=seeds_per_carve,
                algorithm=algorithm,
                devices_per_carve=devices_per_carve,
                jobs=jobs,
                multilevel=multilevel,
            )
    elapsed = perf_counter() - start
    cache_info = None
    if store is not None:
        cache_info = _cache_store_result(
            "partition", cache, store, key, mapped, config, seed, solution, elapsed
        )
    record = None
    if ledger is not None:
        record = ledger.append(
            obs_ledger.build_record(
                kind="partition",
                circuit=mapped.name,
                mapped=mapped,
                config=config,
                seed=seed,
                quality=obs_ledger.quality_from_kway(solution),
                convergence=obs_ledger.distill_convergence(events),
                elapsed_seconds=elapsed,
                runner_summary=log.as_record() if log is not None else None,
            )
        )
    return RunResult(
        kind="partition",
        solution=solution,
        run_log=log,
        metrics=_metrics_snapshot(),
        elapsed_seconds=elapsed,
        run_record=record,
        cache_info=cache_info,
    )


def analyze(metrics_path: str) -> RunResult:
    """Validate a JSONL observability trace and summarize it.

    ``solution`` is a dict with ``events`` (parsed event dicts),
    ``problems`` (schema violations, empty for a conforming stream) and
    ``summary`` (the human-readable report).
    """
    start = perf_counter()
    events, problems = validate_jsonl_file(metrics_path)
    summary = summarize_events(events) if events else ""
    return RunResult(
        kind="analyze",
        solution={"events": events, "problems": problems, "summary": summary},
        metrics=_metrics_snapshot(),
        elapsed_seconds=perf_counter() - start,
    )


__all__ = [
    "SCHEMA_VERSION",
    "RunResult",
    "load",
    "map",
    "bipartition",
    "partition",
    "analyze",
]
