"""repro: multi-way netlist partitioning into heterogeneous FPGAs.

A from-scratch reproduction of R. Kuznar, F. Brglez and B. Zajc,
"Multi-way Netlist Partitioning into Heterogeneous FPGAs and Minimization of
Total Device Cost and Interconnect", 31st ACM/IEEE Design Automation
Conference (DAC), 1994.

Quick tour -- :mod:`repro.api` is the recommended entry point::

    from repro import api

    result = api.partition("s5378", scale=0.5, threshold=1)
    result.solution.cost.total_cost            # the paper's eq. (1) objective

The lower-level building blocks remain exported for direct use::

    from repro import (
        benchmark_circuit, technology_map, build_hypergraph,
        fm_bipartition, replication_bipartition, partition_heterogeneous,
        XC3000_LIBRARY,
    )

    netlist = benchmark_circuit("s5378", scale=0.5)
    mapped = technology_map(netlist)           # XC3000 CLB mapping
    hg = build_hypergraph(mapped)              # the paper's H = ({X;Y}, E)
    result = replication_bipartition(hg)       # FM + functional replication

Sub-packages: ``repro.netlist`` (gate-level substrate), ``repro.techmap``
(XC3000 mapping), ``repro.hypergraph``, ``repro.replication`` (the paper's
cost model), ``repro.partition`` (FM / replication FM / k-way),
``repro.core`` (end-to-end flows), ``repro.robust`` (deadlines, retry,
graceful degradation, fault injection), ``repro.obs`` (metrics, tracing,
JSONL event streams), ``repro.api`` (the stable facade),
``repro.experiments`` (one module per paper table/figure).
"""

from repro.netlist.benchmarks import (
    BENCHMARK_NAMES,
    benchmark_circuit,
    benchmark_suite,
)
from repro.netlist.bench_io import load_bench, loads_bench, save_bench, dumps_bench
from repro.netlist.netlist import Netlist
from repro.netlist.gates import Gate, GateType
from repro.techmap.mapped import MappedCell, MappedNetlist, technology_map
from repro.hypergraph.build import build_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.replication.potential import (
    cell_distribution,
    max_replication_factor,
    replication_potential,
)
from repro.replication.gains import (
    MoveVectors,
    gain_functional_replication,
    gain_single_move,
    gain_traditional_replication,
)
from repro.partition.devices import Device, DeviceLibrary, XC3000_LIBRARY
from repro.partition.fm import FMConfig, FMResult, fm_bipartition
from repro.partition.fm_replication import (
    ReplicationConfig,
    ReplicationResult,
    replication_bipartition,
)
from repro.partition.kway import (
    KWayConfig,
    KWaySolution,
    best_heterogeneous_partition,
    partition_heterogeneous,
)
from repro.core.flow import (
    bipartition_experiment,
    kway_experiment,
    map_circuit,
)
from repro.robust import (
    Budget,
    BudgetExceededError,
    ConfigError,
    InfeasibleError,
    ParseError,
    ReproError,
    SolverTimeoutError,
    VerificationError,
)
from repro.robust.runner import ResilientRunner, RunLog, RunnerConfig
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.events import JsonlEmitter, ListEmitter
from repro import api
from repro.api import SCHEMA_VERSION, RunResult
from repro.request import (
    Algorithm,
    CachePolicy,
    MultilevelMode,
    PartitionRequest,
    RequestError,
)

__version__ = "1.0.0"

__all__ = [
    "BENCHMARK_NAMES",
    "benchmark_circuit",
    "benchmark_suite",
    "load_bench",
    "loads_bench",
    "save_bench",
    "dumps_bench",
    "Netlist",
    "Gate",
    "GateType",
    "MappedCell",
    "MappedNetlist",
    "technology_map",
    "build_hypergraph",
    "Hypergraph",
    "cell_distribution",
    "max_replication_factor",
    "replication_potential",
    "MoveVectors",
    "gain_functional_replication",
    "gain_single_move",
    "gain_traditional_replication",
    "Device",
    "DeviceLibrary",
    "XC3000_LIBRARY",
    "FMConfig",
    "FMResult",
    "fm_bipartition",
    "ReplicationConfig",
    "ReplicationResult",
    "replication_bipartition",
    "KWayConfig",
    "KWaySolution",
    "best_heterogeneous_partition",
    "partition_heterogeneous",
    "bipartition_experiment",
    "kway_experiment",
    "map_circuit",
    "Budget",
    "ReproError",
    "ConfigError",
    "ParseError",
    "InfeasibleError",
    "BudgetExceededError",
    "SolverTimeoutError",
    "VerificationError",
    "ResilientRunner",
    "RunnerConfig",
    "RunLog",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "JsonlEmitter",
    "ListEmitter",
    "api",
    "SCHEMA_VERSION",
    "RunResult",
    "PartitionRequest",
    "Algorithm",
    "CachePolicy",
    "MultilevelMode",
    "RequestError",
    "__version__",
]
