"""Deterministic process-pool fan-out for the multi-start partitioners.

Three fan-out points, all with the same contract:

* :func:`parallel_best_of_runs_fm` -- plain FM multi-start;
* :func:`parallel_best_of_runs_replication` -- replication-aware multi-start;
* :class:`CarveBandPool` -- the k-way carver's per-fill-band candidate scan;
* :class:`BatchJobPool` -- whole-job fan-out for the batch scheduler
  (:mod:`repro.batch.scheduler`), one ``repro.api`` verb call per task
  with a worker-local solution cache.

**Determinism.**  Work items (derived seeds, carve candidates) are
generated in exactly the order the sequential loop would generate them,
dispatched to a :class:`concurrent.futures.ProcessPoolExecutor`, and
reduced *in submission order* with the same comparison the sequential
loop uses.  For a given seed the winner is therefore identical to
``jobs=1`` -- parallelism changes wall-clock, never results -- as long as
no deadline expires mid-scan (an expired :class:`~repro.robust.budget.Budget`
truncates the sequential scan at a timing-dependent point, so no mode is
deterministic then).

**Budgets.**  Monotonic-clock deadlines are process-local, so a parent
``Budget`` object cannot be shipped to workers.  Instead each fan-out
captures ``budget.remaining()`` once at dispatch and every worker builds
a fresh budget with that allotment; workers then wind down cooperatively
on their own clocks, within a second-order skew of the parent deadline.

Workers receive the (picklable) hypergraph once via the pool initializer
and rebuild the shared read-only tables
(:class:`~repro.hypergraph.compact.CompactHypergraph`,
:class:`~repro.partition.fm_replication.ReplicationTables`) locally, so
per-task payloads stay a few dozen bytes.

**Fault injection.**  Every pool captures the parent's active
:mod:`repro.robust.faults` plans (:func:`~repro.robust.faults.export_spec`)
at construction and replays them through each worker's initializer
(:func:`~repro.robust.faults.install_spec`), so injected faults fire in
children, not just the parent.  Hit counters are per-worker -- a fresh
plan per process keeps drills deterministic regardless of job placement.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.robust import faults
from repro.robust.budget import Budget


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0``/negative mean "all cores"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _budget_allotment(budget: Optional[Budget]) -> Tuple[Optional[float], bool]:
    """Capture a budget as picklable (remaining seconds, graceful) state."""
    if budget is None:
        return None, True
    remaining = budget.remaining()
    return (None if remaining == float("inf") else remaining), budget.graceful


def _rebuild_budget(
    remaining: Optional[float], graceful: bool, limited: bool
) -> Optional[Budget]:
    """Worker-side budget from the captured allotment."""
    if not limited:
        return None
    return Budget(remaining, graceful=graceful)


# ---------------------------------------------------------------------------
# Per-worker metric aggregation
# ---------------------------------------------------------------------------
#
# Worker processes start with the disabled default registry, so solver
# metrics recorded inside a worker would be lost.  When the *parent's*
# registry is enabled at dispatch, each task runs under a fresh enabled
# worker-local registry and ships its picklable snapshot back with the
# result; the parent folds the snapshots into its active registry in
# submission order (counters add, gauges last-write-wins, histograms
# bucket-wise), so ``jobs=N`` metrics match ``jobs=1`` up to span records
# (worker spans stay in the worker; only metric values travel).
#
# The context shipped through the initializer also carries the parent's
# trace id (stamped onto every worker-side record) and, when set, a
# ``trace_dir``: each worker then appends its spans/events to a
# per-process ``worker-<pid>.jsonl`` stream in that directory, which
# ``repro.obs.export`` merges back into one timeline on the trace id.


def _parent_obs_context() -> Optional[Dict[str, Any]]:
    """Picklable observability context for pool workers (``None`` = off)."""
    from repro.obs.metrics import get_registry

    reg = get_registry()
    if not reg.enabled:
        return None
    return {"trace": reg.trace_id, "trace_dir": reg.trace_dir}


def _call_with_obs(obs_ctx: Optional[Dict[str, Any]], fn):
    """Run ``fn`` in a worker; returns ``(result, snapshot-or-None)``."""
    if not obs_ctx:
        return fn(), None
    from repro.obs.events import JsonlEmitter
    from repro.obs.metrics import MetricsRegistry, use_registry

    emitter = None
    trace_dir = obs_ctx.get("trace_dir")
    if trace_dir:
        emitter = JsonlEmitter(
            os.path.join(trace_dir, f"worker-{os.getpid()}.jsonl"), append=True
        )
    reg = MetricsRegistry(
        enabled=True, emitter=emitter, trace_id=obs_ctx.get("trace")
    )
    try:
        with use_registry(reg):
            reg.emit_meta()
            result = fn()
        return result, reg.snapshot()
    finally:
        if emitter is not None:
            reg.close()


def _merge_worker_pairs(pairs: List[Tuple[Any, Optional[Dict[str, Any]]]]) -> List[Any]:
    """Unwrap ``(result, snapshot)`` pairs, folding snapshots into the
    parent's active registry in submission order."""
    from repro.obs.metrics import get_registry

    reg = get_registry()
    merge = reg.enabled
    results: List[Any] = []
    for result, snap in pairs:
        results.append(result)
        if merge and snap:
            reg.merge_snapshot(snap)
    if merge:
        reg.counter("parallel.tasks").inc(len(results))
    return results


# ---------------------------------------------------------------------------
# FM multi-start
# ---------------------------------------------------------------------------

_FM_CTX: Optional[
    Tuple[Any, Any, Any, Optional[float], bool, bool, Optional[Dict[str, Any]]]
] = None


def _fm_init(
    hg, base_config, remaining, graceful, limited, obs_ctx, fault_spec
) -> None:
    from repro.hypergraph.compact import CompactHypergraph

    global _FM_CTX
    faults.install_spec(fault_spec)
    compact = CompactHypergraph.from_hypergraph(hg)
    _FM_CTX = (hg, compact, base_config, remaining, graceful, limited, obs_ctx)


def _fm_task(seed: int):
    from repro.partition.fm import fm_bipartition

    assert _FM_CTX is not None
    hg, compact, base, remaining, graceful, limited, obs_ctx = _FM_CTX
    config = replace(
        base, seed=seed, budget=_rebuild_budget(remaining, graceful, limited)
    )
    return _call_with_obs(
        obs_ctx, lambda: fm_bipartition(hg, config, compact=compact)
    )


def parallel_fm_results(hg, base_config, seeds: Sequence[int], jobs: int) -> List[Any]:
    """Run one FM per seed over a process pool; results in seed order."""
    remaining, graceful = _budget_allotment(base_config.budget)
    limited = base_config.budget is not None
    ship = replace(base_config, budget=None)
    workers = max(1, min(resolve_jobs(jobs), len(seeds)))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_fm_init,
        initargs=(
            hg, ship, remaining, graceful, limited,
            _parent_obs_context(), faults.export_spec(),
        ),
    ) as ex:
        return _merge_worker_pairs(list(ex.map(_fm_task, seeds)))


def parallel_best_of_runs_fm(hg, runs: int, base_config, jobs: int):
    """Process-pool counterpart of :func:`repro.partition.fm.best_of_runs`.

    Returns ``(best FMResult, all cut sizes)`` with the winner the
    sequential loop would pick (ordered reduction, ``<`` on cut size).
    """
    seeds = [base_config.seed * 7919 + run for run in range(runs)]
    results = parallel_fm_results(hg, base_config, seeds, jobs)
    best = None
    cuts: List[int] = []
    for result in results:
        cuts.append(result.cut_size)
        if best is None or result.cut_size < best.cut_size:
            best = result
    assert best is not None
    return best, cuts


# ---------------------------------------------------------------------------
# Replication multi-start
# ---------------------------------------------------------------------------

_REPL_CTX: Optional[
    Tuple[Any, Any, Any, Optional[float], bool, bool, Optional[Dict[str, Any]]]
] = None


def _repl_init(
    hg, base_config, remaining, graceful, limited, obs_ctx, fault_spec
) -> None:
    from repro.partition.fm_replication import ReplicationTables

    global _REPL_CTX
    faults.install_spec(fault_spec)
    tables = ReplicationTables(hg)
    _REPL_CTX = (hg, tables, base_config, remaining, graceful, limited, obs_ctx)


def _repl_task(seed: int):
    from repro.partition.fm_replication import replication_bipartition

    assert _REPL_CTX is not None
    hg, tables, base, remaining, graceful, limited, obs_ctx = _REPL_CTX
    config = replace(
        base, seed=seed, budget=_rebuild_budget(remaining, graceful, limited)
    )
    return _call_with_obs(
        obs_ctx, lambda: replication_bipartition(hg, config, tables=tables)
    )


def parallel_replication_results(
    hg, base_config, seeds: Sequence[int], jobs: int
) -> List[Any]:
    """Run one replication-FM per seed over a process pool, in seed order."""
    remaining, graceful = _budget_allotment(base_config.budget)
    limited = base_config.budget is not None
    ship = replace(base_config, budget=None)
    workers = max(1, min(resolve_jobs(jobs), len(seeds)))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_repl_init,
        initargs=(
            hg, ship, remaining, graceful, limited,
            _parent_obs_context(), faults.export_spec(),
        ),
    ) as ex:
        return _merge_worker_pairs(list(ex.map(_repl_task, seeds)))


def parallel_best_of_runs_replication(hg, runs: int, base_config, jobs: int):
    """Process-pool counterpart of
    :func:`repro.partition.fm_replication.best_of_runs`."""
    seeds = [base_config.seed * 7919 + run for run in range(runs)]
    results = parallel_replication_results(hg, base_config, seeds, jobs)
    best = None
    cuts: List[int] = []
    for result in results:
        cuts.append(result.cut_size)
        if best is None or result.cut_size < best.cut_size:
            best = result
    assert best is not None
    return best, cuts


# ---------------------------------------------------------------------------
# Multilevel V-cycle multi-start
# ---------------------------------------------------------------------------

_ML_CTX: Optional[
    Tuple[Any, Any, Any, Optional[float], bool, bool, Optional[Dict[str, Any]]]
] = None


def _ml_init(
    hg, base_config, remaining, graceful, limited, obs_ctx, fault_spec
) -> None:
    from repro.hypergraph.compact import CompactHypergraph

    global _ML_CTX
    faults.install_spec(fault_spec)
    compact = CompactHypergraph.from_hypergraph(hg)
    _ML_CTX = (hg, compact, base_config, remaining, graceful, limited, obs_ctx)


def _ml_task(seed: int):
    from repro.partition.multilevel import vcycle_bipartition

    assert _ML_CTX is not None
    hg, compact, base, remaining, graceful, limited, obs_ctx = _ML_CTX
    config = replace(
        base, seed=seed, budget=_rebuild_budget(remaining, graceful, limited)
    )
    return _call_with_obs(
        obs_ctx, lambda: vcycle_bipartition(hg, config, compact=compact)
    )


def parallel_multilevel_results(
    hg, base_config, seeds: Sequence[int], jobs: int
) -> List[Any]:
    """Run one multilevel V-cycle per seed over a process pool, in seed order."""
    remaining, graceful = _budget_allotment(base_config.budget)
    limited = base_config.budget is not None
    ship = replace(base_config, budget=None)
    workers = max(1, min(resolve_jobs(jobs), len(seeds)))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_ml_init,
        initargs=(
            hg, ship, remaining, graceful, limited,
            _parent_obs_context(), faults.export_spec(),
        ),
    ) as ex:
        return _merge_worker_pairs(list(ex.map(_ml_task, seeds)))


# ---------------------------------------------------------------------------
# K-way carve candidate scan
# ---------------------------------------------------------------------------

_CARVE_CTX: Optional[
    Tuple[
        Any, Any, frozenset, Dict[str, Any], Any,
        Optional[float], bool, bool, Optional[Dict[str, Any]],
    ]
] = None


def _carve_init(
    hg, pseudo, proto, ml_spec, remaining, graceful, limited, obs_ctx, fault_spec
) -> None:
    from repro.partition.fm_replication import ReplicationTables

    global _CARVE_CTX
    faults.install_spec(fault_spec)
    tables = ReplicationTables(hg)
    hierarchy = None
    if ml_spec is not None:
        # Same construction as the sequential scan: seeded from the k-way
        # config seed with the scan's fixed set, so every worker builds
        # the identical coarsening stack and jobs=N candidates match
        # jobs=1 bit for bit.
        from repro.hypergraph.compact import CompactHypergraph
        from repro.partition.multilevel import (
            MultilevelConfig,
            MultilevelHierarchy,
        )

        hierarchy = MultilevelHierarchy(
            CompactHypergraph.from_hypergraph(hg),
            MultilevelConfig(
                seed=ml_spec["seed"],
                max_passes=ml_spec["max_passes"],
                fixed=dict(proto["fixed"]),
                budget=_rebuild_budget(remaining, graceful, limited),
            ),
        )
    _CARVE_CTX = (
        hg, tables, frozenset(pseudo), proto, hierarchy,
        remaining, graceful, limited, obs_ctx,
    )


def _carve_task(task: Tuple[int, int, int, int]):
    from repro.partition.fm_replication import ReplicationConfig, ReplicationEngine
    from repro.partition.kway import _engine_outcome

    assert _CARVE_CTX is not None
    (
        hg, tables, pseudo, proto, hierarchy,
        remaining, graceful, limited, obs_ctx,
    ) = _CARVE_CTX
    device_index, seed, lo0, hi0 = task
    config = ReplicationConfig(
        seed=seed,
        side0_bounds=(lo0, hi0),
        budget=_rebuild_budget(remaining, graceful, limited),
        **proto,
    )

    def run():
        initial = None
        if hierarchy is not None:
            initial, _, _ = hierarchy.solve(seed, side0_bounds=(lo0, hi0))
        engine = ReplicationEngine(hg, config, initial=initial, tables=tables)
        engine.run()
        return _engine_outcome(engine, pseudo, device_index)

    return _call_with_obs(obs_ctx, run)


# ---------------------------------------------------------------------------
# Batch job fan-out
# ---------------------------------------------------------------------------

_BATCH_CTX: Optional[Tuple[Optional[str], str, Optional[Dict[str, Any]]]] = None


def _batch_init(
    cache_dir: Optional[str],
    cache_policy: str,
    obs_ctx: Optional[Dict[str, Any]],
    fault_spec: Optional[List[Dict[str, Any]]] = None,
    cluster_dir: Optional[str] = None,
) -> None:
    global _BATCH_CTX
    faults.install_spec(fault_spec)
    _BATCH_CTX = (cache_dir, cache_policy, obs_ctx)
    if cluster_dir:
        # Workers talk straight to the cluster's quorum-replicated cache:
        # true process parallelism with replicated writes, no parent
        # round-trip per entry.
        from repro.cache.store import set_cache
        from repro.cluster.admin import load_cluster

        set_cache(load_cluster(cluster_dir).store)
    elif cache_dir:
        from repro.cache.store import SolutionCache, set_cache

        set_cache(SolutionCache(cache_dir))


def _batch_task(job):
    from repro.batch.worker import execute_job
    from repro.robust.budget import CancelFlag, cancel_scope

    assert _BATCH_CTX is not None
    _, policy, obs_ctx = _BATCH_CTX
    # Install the job's cancellation sentinel for the duration of the
    # solve: any Budget the solvers poll reports expired once the
    # submitting side (the service's DELETE handler) touches the file,
    # so a cancelled job frees its worker slot at the next checkpoint
    # instead of running to its deadline.
    flag = CancelFlag(job.cancel_path) if getattr(job, "cancel_path", None) else None
    with cancel_scope(flag):
        return _call_with_obs(obs_ctx, lambda: execute_job(job, cache=policy))


class BatchJobPool:
    """A process pool running whole batch jobs (one api verb call each).

    Unlike the solver-level pools above, tasks here are coarse -- a full
    ``partition``/``bipartition`` run -- so the pool is built once per
    batch and jobs are ``submit``-ed individually (the scheduler needs
    per-job futures for deadline-aware collection, not an ordered map).
    Each worker installs the batch's solution cache at startup
    (:func:`repro.cache.store.set_cache`), so every job in every worker
    reads and writes the same sharded store; the atomic tmp+rename
    writes make concurrent same-key stores race benignly.

    :meth:`collect` unwraps a future's ``(outcome, metrics snapshot)``
    pair, folding worker metrics into the parent registry exactly like
    the solver pools do.
    """

    def __init__(
        self,
        cache_dir: Optional[str],
        cache_policy: str,
        jobs: int,
        cluster_dir: Optional[str] = None,
    ) -> None:
        self._ex = ProcessPoolExecutor(
            max_workers=resolve_jobs(jobs),
            initializer=_batch_init,
            initargs=(
                cache_dir, cache_policy, _parent_obs_context(),
                faults.export_spec(), cluster_dir,
            ),
        )

    def submit(self, job):
        return self._ex.submit(_batch_task, job)

    @staticmethod
    def collect(future, timeout: Optional[float] = None):
        """The job outcome from a future (may raise ``TimeoutError``)."""
        pair = future.result(timeout=timeout)
        return _merge_worker_pairs([pair])[0]

    def close(self) -> None:
        self._ex.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "BatchJobPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CarveBandPool:
    """A per-carve-level worker pool for the candidate scan.

    Built once per carve level (the hypergraph changes between levels);
    :meth:`evaluate` maps a band's candidate plan -- ``(device index,
    seed, lo0, hi0)`` tuples in sequential scan order -- to
    :class:`~repro.partition.kway._CarveOutcome` records (or ``None`` for
    no-progress candidates) *in plan order*, so the caller's reduction
    sees exactly the sequential sequence.
    """

    def __init__(
        self,
        hg,
        pseudo: Sequence[int],
        proto: Dict[str, Any],
        budget: Optional[Budget],
        jobs: int,
        ml_spec: Optional[Dict[str, Any]] = None,
    ) -> None:
        remaining, graceful = _budget_allotment(budget)
        self._ex = ProcessPoolExecutor(
            max_workers=resolve_jobs(jobs),
            initializer=_carve_init,
            initargs=(
                hg, tuple(pseudo), proto, ml_spec, remaining, graceful,
                budget is not None, _parent_obs_context(), faults.export_spec(),
            ),
        )

    def evaluate(self, plan: Sequence[Tuple[int, int, int, int]]) -> List[Any]:
        return _merge_worker_pairs(list(self._ex.map(_carve_task, plan)))

    def close(self) -> None:
        self._ex.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "CarveBandPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
