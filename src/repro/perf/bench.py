"""Timing helpers and the ``BENCH_partition.json`` report format.

The perf harness (``benchmarks/bench_fm_hot.py``) times the optimized
partitioning core against the frozen reference engines
(:mod:`repro.partition.reference`) *in the same process*, so the speedup
ratios are machine-fair.  Results are written as ``BENCH_partition.json``
and gated against a checked-in baseline.

**Regression gating.**  Raw wall-clock is not comparable across machines,
so the gate normalizes by the reference engine measured in the same run:
a circuit regresses when its *speedup ratio* (reference seconds / fast
seconds) drops more than ``threshold`` below the baseline ratio.  This is
equivalent to gating machine-speed-corrected wall-clock:

    fast_now <= fast_base * (1 + threshold) * (ref_now / ref_base)
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Default allowed relative slowdown before the perf gate fails.
DEFAULT_THRESHOLD = 0.30

#: Default report filename.
REPORT_NAME = "BENCH_partition.json"

#: Append-only bench trajectory (one JSONL entry per bench run).
HISTORY_NAME = "BENCH_partition_history.jsonl"

#: Schema tag stamped into every history entry.
HISTORY_SCHEMA_NAME = "repro-bench-history/1"


def _anchored_path(filename: str, anchor: Optional[str]) -> str:
    """``<repo root>/<filename>``, found by walking up to pyproject.toml.

    Falls back to the current working directory when no project root is
    found, so the file still lands somewhere predictable.
    """
    here = os.path.dirname(os.path.abspath(anchor or __file__))
    probe = here
    while True:
        if os.path.isfile(os.path.join(probe, "pyproject.toml")):
            return os.path.join(probe, filename)
        parent = os.path.dirname(probe)
        if parent == probe:
            return os.path.join(os.getcwd(), filename)
        probe = parent


def default_report_path(anchor: Optional[str] = None) -> str:
    """Default destination for ``BENCH_partition.json``: the repo root."""
    return _anchored_path(REPORT_NAME, anchor)


def default_history_path(anchor: Optional[str] = None) -> str:
    """Default destination for the bench trajectory JSONL: the repo root."""
    return _anchored_path(HISTORY_NAME, anchor)


def time_call(fn: Callable[[], Any]) -> Tuple[float, Any]:
    """Wall-clock one call; returns ``(seconds, result)``."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def best_of(fn: Callable[[], Any], repeats: int = 1) -> Tuple[float, Any]:
    """Minimum wall-clock over ``repeats`` calls (noise floor estimator)."""
    best_seconds: Optional[float] = None
    result = None
    for _ in range(max(1, repeats)):
        seconds, result = time_call(fn)
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    assert best_seconds is not None
    return best_seconds, result


def speedup(ref_seconds: float, fast_seconds: float) -> float:
    """Reference-over-fast ratio; > 1 means the fast path wins."""
    if fast_seconds <= 0.0:
        return float("inf")
    return ref_seconds / fast_seconds


def make_report(
    scale: float,
    circuits: Dict[str, Dict[str, Any]],
) -> Dict[str, Any]:
    """Assemble the ``BENCH_partition.json`` payload."""
    return {
        "schema": "repro-bench-partition/1",
        "scale": scale,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "circuits": circuits,
    }


def _git_stamp() -> str:
    """The current git revision, or ``"unknown"``.

    Bench runs happen outside checkouts too (tarball installs, bare CI
    caches); the trajectory keeps appending with an explicit marker
    instead of crashing or writing ``null``.
    """
    try:
        from repro.obs.ledger import git_revision

        rev = git_revision()
    except Exception:
        return "unknown"
    return rev if rev else "unknown"


def history_entry(report: Dict[str, Any]) -> Dict[str, Any]:
    """One timestamped trajectory line distilled from a bench report."""
    now = time.time()
    return {
        "schema": HISTORY_SCHEMA_NAME,
        "ts": now,
        "iso_ts": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(now)) + "Z",
        "git_rev": _git_stamp(),
        "scale": report.get("scale"),
        "python": report.get("python"),
        "machine": report.get("machine"),
        "circuits": {
            name: {
                section: {
                    "ref_seconds": sec.get("ref_seconds"),
                    "fast_seconds": sec.get("fast_seconds"),
                    "speedup": speedup(
                        sec.get("ref_seconds", 0.0), sec.get("fast_seconds", 0.0)
                    ),
                }
                for section, sec in entry.items()
                if isinstance(sec, dict) and "ref_seconds" in sec
            }
            for name, entry in report.get("circuits", {}).items()
        },
    }


def append_history(path: str, report: Dict[str, Any]) -> Dict[str, Any]:
    """Append one :func:`history_entry` line to the trajectory file."""
    entry = history_entry(report)
    with open(path, "a") as fh:
        json.dump(entry, fh, sort_keys=True)
        fh.write("\n")
    return entry


def write_report(
    path: str, report: Dict[str, Any], history_path: Optional[str] = None
) -> None:
    """Write the JSON report; also append to the trajectory when given.

    ``BENCH_partition.json`` is overwritten in place, so on its own the
    repo carries no perf *trajectory*; passing ``history_path`` (usually
    :func:`default_history_path`) appends one timestamped, git-stamped
    entry per run to ``BENCH_partition_history.jsonl``.
    """
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if history_path:
        append_history(history_path, report)


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


def check_regressions(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Compare a fresh report against the baseline; returns violations.

    Every circuit/section in the *baseline* must appear in the current
    report -- a missing one is a coverage violation, not a silent pass
    (otherwise trimming the bench config would defeat the gate).  Extra
    circuits in the current report are fine (new coverage).  Pairs with a
    sub-10ms reference timing are skipped as measurement noise.  An empty
    list means the gate passes.
    """
    problems: List[str] = []
    if current.get("scale") != baseline.get("scale"):
        return [
            f"scale mismatch: current {current.get('scale')} vs "
            f"baseline {baseline.get('scale')}; refresh the baseline"
        ]
    cur_circuits = current.get("circuits", {})
    for name, base in sorted(baseline.get("circuits", {}).items()):
        entry = cur_circuits.get(name)
        if entry is None:
            problems.append(
                f"{name}: in baseline but missing from current report "
                "(coverage lost; re-run the full bench or refresh the baseline)"
            )
            continue
        for section in ("kway", "fm", "replication", "multilevel", "incremental"):
            cur_sec = entry.get(section)
            base_sec = base.get(section)
            if not base_sec:
                continue
            if not cur_sec:
                problems.append(
                    f"{name}/{section}: in baseline but missing from current "
                    "report (coverage lost)"
                )
                continue
            if base_sec["ref_seconds"] < 0.01 or cur_sec["ref_seconds"] < 0.01:
                continue  # too fast to measure reliably
            base_ratio = speedup(base_sec["ref_seconds"], base_sec["fast_seconds"])
            cur_ratio = speedup(cur_sec["ref_seconds"], cur_sec["fast_seconds"])
            floor = base_ratio / (1.0 + threshold)
            if cur_ratio < floor:
                problems.append(
                    f"{name}/{section}: speedup {cur_ratio:.2f}x fell below "
                    f"{floor:.2f}x (baseline {base_ratio:.2f}x, "
                    f"threshold {threshold:.0%})"
                )
    return problems
