"""Performance layer: parallel multi-start fan-out and benchmarking.

:mod:`repro.perf.parallel`
    Deterministic :class:`concurrent.futures.ProcessPoolExecutor` fan-out
    for the multi-start drivers (``best_of_runs``) and the k-way carve
    candidate scan, with ordered reductions that reproduce the sequential
    winner for a given seed.

:mod:`repro.perf.bench`
    Timing helpers and the ``BENCH_partition.json`` writer used by
    ``benchmarks/bench_fm_hot.py`` and the CI perf-smoke job.
"""

from repro.perf.parallel import resolve_jobs

__all__ = ["resolve_jobs"]
