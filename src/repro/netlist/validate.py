"""Structural legality checks for gate-level netlists.

The partitioning pipeline assumes a well-formed netlist; this module makes
the assumptions explicit and checkable.  :func:`validate_netlist` collects
*all* violations rather than stopping at the first, which makes generator
and parser debugging far quicker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


class NetlistError(ValueError):
    """Raised by :func:`validate_netlist` in strict mode."""


@dataclass
class ValidationReport:
    """Outcome of a validation run."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise NetlistError("; ".join(self.errors))


def validate_netlist(
    netlist: Netlist, strict: bool = True, allow_dangling: bool = False
) -> ValidationReport:
    """Check a netlist for structural problems.

    Checks performed:

    * every fan-in reference resolves to an existing gate;
    * gate arities are legal for their type;
    * no combinational cycles;
    * every primary output has a driver;
    * no duplicate primary outputs;
    * (warning / error depending on ``allow_dangling``) every non-PO net has
      at least one reader;
    * primary inputs that drive nothing are reported as warnings.
    """
    report = ValidationReport()
    names = set(netlist.gate_names())

    for gate in netlist.gates():
        try:
            gate.check_arity()
        except ValueError as exc:
            report.errors.append(str(exc))
        for src in gate.fanin:
            if src not in names:
                report.errors.append(
                    f"gate {gate.name!r} references missing driver {src!r}"
                )
        if gate.name in gate.fanin and gate.gtype is not GateType.DFF:
            report.errors.append(f"combinational self-loop at {gate.name!r}")

    po_seen = set()
    for po in netlist.outputs:
        if po in po_seen:
            report.errors.append(f"duplicate primary output {po!r}")
        po_seen.add(po)
        if po not in names:
            report.errors.append(f"primary output {po!r} has no driver")

    try:
        netlist.topological_order()
    except ValueError as exc:
        report.errors.append(str(exc))

    fanout = netlist.fanout_map()
    outputs = set(netlist.outputs)
    for gate in netlist.gates():
        readers = fanout.get(gate.name, ())
        if not readers and gate.name not in outputs:
            message = f"net {gate.name!r} is dangling (no readers, not a PO)"
            if gate.gtype is GateType.INPUT:
                report.warnings.append(f"primary input {gate.name!r} is unused")
            elif allow_dangling:
                report.warnings.append(message)
            else:
                report.errors.append(message)

    if strict:
        report.raise_if_failed()
    return report
