"""Primitive gate types and their logic functions.

The netlist substrate models circuits at the structural gate level, the same
abstraction the ISCAS'85/'89 benchmark suites use.  Every gate has one output
(the gate *is* its output net, ISCAS style) and zero or more ordered inputs.

Sequential elements are modelled with the :data:`GateType.DFF` type: a D
flip-flop whose single input is the next-state function and whose output is
the present-state value.  Technology mapping later packs DFFs into CLB
flip-flops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence, Tuple


class GateType(enum.Enum):
    """The primitive cell types understood by the substrate."""

    INPUT = "INPUT"
    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    DFF = "DFF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @property
    def is_combinational(self) -> bool:
        """True for gates whose output is a pure function of their inputs."""
        return self not in (GateType.INPUT, GateType.DFF, GateType.CONST0, GateType.CONST1)

    @property
    def is_source(self) -> bool:
        """True for gates with no structural fan-in (primary inputs, constants)."""
        return self in (GateType.INPUT, GateType.CONST0, GateType.CONST1)

    @property
    def min_fanin(self) -> int:
        if self.is_source:
            return 0
        if self in (GateType.NOT, GateType.BUF, GateType.DFF):
            return 1
        return 2

    @property
    def max_fanin(self) -> int:
        if self.is_source:
            return 0
        if self in (GateType.NOT, GateType.BUF, GateType.DFF):
            return 1
        return 1_000_000  # unbounded; decomposition enforces practical limits


#: Gate types that may appear as the ``fn`` of a combinational logic gate.
LOGIC_TYPES: Tuple[GateType, ...] = (
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
    GateType.BUF,
)

#: Symmetric (input-order-independent) gate types.
SYMMETRIC_TYPES: Tuple[GateType, ...] = (
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
)


def evaluate_gate(gtype: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a single gate on concrete 0/1 input values.

    ``INPUT`` and ``DFF`` are not evaluable here: their value comes from the
    environment / previous clock cycle and is handled by the simulator in
    :mod:`repro.netlist.netlist`.
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if not inputs:
        raise ValueError(f"gate type {gtype.value} requires inputs")
    if gtype is GateType.AND:
        return int(all(inputs))
    if gtype is GateType.OR:
        return int(any(inputs))
    if gtype is GateType.NAND:
        return int(not all(inputs))
    if gtype is GateType.NOR:
        return int(not any(inputs))
    if gtype is GateType.XOR:
        return sum(inputs) & 1
    if gtype is GateType.XNOR:
        return (sum(inputs) & 1) ^ 1
    if gtype is GateType.NOT:
        return 1 - inputs[0]
    if gtype is GateType.BUF:
        return inputs[0]
    raise ValueError(f"cannot evaluate gate type {gtype.value}")


def gate_truth_table(gtype: GateType, fanin: int) -> Tuple[int, ...]:
    """Truth table of a gate as a tuple of 2**fanin output bits.

    Bit ``i`` of the result is the gate output when the inputs spell the
    binary expansion of ``i`` (input 0 = least significant bit).  Used by the
    technology mapper to build LUT masks.
    """
    if fanin < 0:
        raise ValueError("fanin must be non-negative")
    rows = []
    for row in range(1 << fanin):
        bits = [(row >> j) & 1 for j in range(fanin)]
        rows.append(evaluate_gate(gtype, bits) if fanin else evaluate_gate(gtype, ()))
    return tuple(rows)


@dataclass
class Gate:
    """One gate instance in a :class:`~repro.netlist.netlist.Netlist`.

    Attributes
    ----------
    name:
        Unique gate name; also the name of the net the gate drives.
    gtype:
        The primitive type.
    fanin:
        Ordered list of driver gate names.  Mutated by netlist editing
        operations; treat as owned by the netlist.
    """

    name: str
    gtype: GateType
    fanin: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("gate name must be non-empty")

    @property
    def is_combinational(self) -> bool:
        return self.gtype.is_combinational

    @property
    def is_source(self) -> bool:
        return self.gtype.is_source

    def check_arity(self) -> None:
        """Raise ``ValueError`` when the fan-in count is illegal for the type."""
        n = len(self.fanin)
        if n < self.gtype.min_fanin or n > self.gtype.max_fanin:
            raise ValueError(
                f"gate {self.name!r} of type {self.gtype.value} has illegal fanin count {n}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ins = ", ".join(self.fanin)
        return f"Gate({self.name} = {self.gtype.value}({ins}))"
