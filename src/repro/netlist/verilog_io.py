"""Structural Verilog (gate-level subset) reader and writer.

Many circuits circulate as flat structural Verilog; this module handles the
subset those netlists use::

    module top (a, b, y);
      input a, b;
      output y;
      wire n1;
      nand g1 (n1, a, b);   // output first, then inputs
      not  g2 (y, n1);
      dff  r1 (q, d);       // D flip-flop: (Q, D)
    endmodule

Supported primitives: ``and or nand nor xor xnor not buf dff``.  Escaped
identifiers, expressions, assigns and hierarchy are out of scope (the
parser raises on them rather than guessing).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.robust.errors import ParseError

_PRIMITIVES: Dict[str, GateType] = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
    "dff": GateType.DFF,
}

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"


class VerilogParseError(ParseError):
    """Raised for malformed or out-of-scope Verilog.

    Carries the offending line number and source file name when known.
    """

    def __init__(
        self,
        message: str,
        lineno: Optional[int] = None,
        source: Optional[str] = None,
    ) -> None:
        super().__init__(message, source=source, lineno=lineno)


def _strip_comments(text: str) -> str:
    """Blank out comments, preserving newlines so line numbers survive."""
    text = re.sub(
        r"/\*.*?\*/",
        lambda m: "\n" * m.group(0).count("\n") + " ",
        text,
        flags=re.DOTALL,
    )
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def loads_verilog(text: str, name: str = "", source: Optional[str] = None) -> Netlist:
    """Parse one flat structural module into a :class:`Netlist`.

    ``source`` (usually the file name) and the statement's line number
    are woven into every parse error.  Empty or comment-only text is
    rejected with a clear message.
    """
    text = _strip_comments(text)
    if not text.strip():
        raise VerilogParseError("empty Verilog source", 1, source)
    module = re.search(
        rf"module\s+({_IDENT})\s*\((.*?)\)\s*;(.*?)endmodule",
        text,
        flags=re.DOTALL,
    )
    if not module:
        raise VerilogParseError(
            "no module ... endmodule found (truncated file?)", None, source
        )
    mod_name, _, body = module.groups()
    body_start = module.start(3)
    netlist = Netlist(name or mod_name)

    def line_of(offset_in_body: int) -> int:
        return text.count("\n", 0, body_start + offset_in_body) + 1

    inputs: List[str] = []
    outputs: List[str] = []
    instances: List[Tuple[int, str, List[str]]] = []
    offset = 0
    for chunk in body.split(";"):
        start = offset
        offset += len(chunk) + 1
        stmt = chunk.strip()
        if not stmt:
            continue
        lineno = line_of(start + (len(chunk) - len(chunk.lstrip())))
        head = stmt.split(None, 1)
        keyword = head[0]
        rest = head[1] if len(head) > 1 else ""
        if keyword in ("input", "output", "wire"):
            names = [n.strip() for n in rest.split(",") if n.strip()]
            for net in names:
                if not re.fullmatch(_IDENT, net):
                    raise VerilogParseError(
                        f"unsupported declaration {stmt!r} (vectors/escapes "
                        "are out of scope)",
                        lineno,
                        source,
                    )
            if keyword == "input":
                inputs.extend(names)
            elif keyword == "output":
                outputs.extend(names)
            continue
        match = re.fullmatch(
            rf"({_IDENT})\s+({_IDENT})?\s*\(\s*(.*?)\s*\)", stmt, flags=re.DOTALL
        )
        if not match:
            raise VerilogParseError(f"unparseable statement {stmt!r}", lineno, source)
        prim, _inst_name, ports = match.group(1), match.group(2), match.group(3)
        if prim not in _PRIMITIVES:
            raise VerilogParseError(
                f"unsupported primitive {prim!r} (hierarchy/assign are out of scope)",
                lineno,
                source,
            )
        nets = [p.strip() for p in ports.split(",") if p.strip()]
        if len(nets) < 2:
            raise VerilogParseError(
                f"primitive {stmt!r} needs >= 2 ports", lineno, source
            )
        instances.append((lineno, prim, nets))

    for pi in inputs:
        netlist.add_input(pi)
    for lineno, prim, nets in instances:
        gtype = _PRIMITIVES[prim]
        out, ins = nets[0], nets[1:]
        try:
            netlist.add_gate(out, gtype, ins)
        except ValueError as exc:
            raise VerilogParseError(str(exc), lineno, source) from exc
    for po in outputs:
        netlist.add_output(po)
    netlist.check()
    return netlist


def dumps_verilog(netlist: Netlist) -> str:
    """Serialize a :class:`Netlist` as one flat structural module."""
    ports = list(netlist.inputs) + list(netlist.outputs)
    lines = [f"module {_sanitize(netlist.name)} ({', '.join(ports)});"]
    if netlist.inputs:
        lines.append(f"  input {', '.join(netlist.inputs)};")
    if netlist.outputs:
        lines.append(f"  output {', '.join(netlist.outputs)};")
    wires = [
        g.name
        for g in netlist.gates()
        if g.gtype is not GateType.INPUT and g.name not in netlist.outputs
    ]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    idx = 0
    for gate in netlist.gates():
        if gate.gtype is GateType.INPUT:
            continue
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            raise VerilogParseError(
                "constant gates cannot be expressed in the structural subset; "
                "run repro.netlist.transform.propagate_constants first"
            )
        prim = gate.gtype.value.lower()
        ports = ", ".join([gate.name] + list(gate.fanin))
        lines.append(f"  {prim} g{idx} ({ports});")
        idx += 1
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    clean = re.sub(r"[^A-Za-z0-9_$]", "_", name)
    if not re.match(r"[A-Za-z_]", clean):
        clean = "m_" + clean
    return clean
