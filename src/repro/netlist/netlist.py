"""The :class:`Netlist` container: a named collection of gates and nets.

The model follows the ISCAS benchmark convention: every gate drives exactly
one net and that net carries the gate's name.  Primary outputs are a list of
net names; a net may be both an internal fanout point and a primary output.

The class supports structural editing (add/remove gates, rewiring), queries
(fanout map, topological order, sequential levels) and cycle-accurate logic
simulation, which the tests use to prove that technology mapping and
replication preserve functionality.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set

from repro.netlist.gates import Gate, GateType


class Netlist:
    """A gate-level circuit.

    Parameters
    ----------
    name:
        Circuit name (used in reports).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._gates: Dict[str, Gate] = {}
        self._outputs: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_gate(self, name: str, gtype: GateType, fanin: Sequence[str] = ()) -> Gate:
        """Add a gate; returns the created :class:`Gate`.

        The fan-in names need not exist yet (forward references are allowed
        during construction); :meth:`check` verifies them afterwards.
        """
        if name in self._gates:
            raise ValueError(f"duplicate gate name {name!r}")
        gate = Gate(name, gtype, list(fanin))
        self._gates[name] = gate
        return gate

    def add_input(self, name: str) -> Gate:
        return self.add_gate(name, GateType.INPUT)

    def add_output(self, net: str) -> None:
        """Mark an existing (or forward-referenced) net as a primary output."""
        if net in self._outputs:
            return
        self._outputs.append(net)

    def remove_gate(self, name: str) -> None:
        """Remove a gate.  The caller is responsible for fixing dangling fanin."""
        del self._gates[name]
        if name in self._outputs:
            self._outputs.remove(name)

    def replace_fanin(self, gate_name: str, old: str, new: str) -> None:
        """Rewire every occurrence of ``old`` in ``gate_name``'s fan-in to ``new``."""
        gate = self._gates[gate_name]
        gate.fanin = [new if f == old else f for f in gate.fanin]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def gate(self, name: str) -> Gate:
        return self._gates[name]

    def gates(self) -> Iterator[Gate]:
        return iter(self._gates.values())

    def gate_names(self) -> Iterator[str]:
        return iter(self._gates.keys())

    @property
    def inputs(self) -> List[str]:
        """Primary input names, in insertion order."""
        return [g.name for g in self._gates.values() if g.gtype is GateType.INPUT]

    @property
    def outputs(self) -> List[str]:
        """Primary output net names, in declaration order."""
        return list(self._outputs)

    @property
    def dffs(self) -> List[str]:
        return [g.name for g in self._gates.values() if g.gtype is GateType.DFF]

    @property
    def logic_gates(self) -> List[str]:
        return [g.name for g in self._gates.values() if g.is_combinational]

    def fanout_map(self) -> Dict[str, List[str]]:
        """Map each net name to the list of gate names that read it."""
        fanout: Dict[str, List[str]] = defaultdict(list)
        for gate in self._gates.values():
            for src in gate.fanin:
                fanout[src].append(gate.name)
        return dict(fanout)

    def net_names(self) -> List[str]:
        """All net names: one per gate (its output net).

        Nets with no readers and not marked as primary outputs are dangling;
        :func:`repro.netlist.validate.validate_netlist` flags them.
        """
        return list(self._gates.keys())

    def pin_count(self) -> int:
        """Total number of gate pins (inputs + one output per logic/DFF gate).

        This is the "#PINs" column of the paper's Table II measured at the
        gate level; after mapping the mapped netlist reports its own count.
        """
        pins = 0
        for gate in self._gates.values():
            if gate.gtype is GateType.INPUT:
                continue
            pins += len(gate.fanin) + 1
        return pins

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Gate names in combinational topological order.

        DFF outputs and primary inputs are sources; DFF *inputs* are sinks,
        i.e. the order is valid for single-cycle evaluation.  Raises
        ``ValueError`` on a combinational cycle.
        """
        indeg: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = defaultdict(list)
        for gate in self._gates.values():
            if gate.is_combinational:
                count = 0
                for src in gate.fanin:
                    src_gate = self._gates.get(src)
                    if src_gate is not None and src_gate.is_combinational:
                        count += 1
                        dependents[src].append(gate.name)
                indeg[gate.name] = count
        order: List[str] = [
            g.name for g in self._gates.values() if not g.is_combinational
        ]
        queue = deque(name for name, d in indeg.items() if d == 0)
        seen = 0
        while queue:
            name = queue.popleft()
            order.append(name)
            seen += 1
            for dep in dependents.get(name, ()):
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    queue.append(dep)
        if seen != len(indeg):
            raise ValueError(f"netlist {self.name!r} has a combinational cycle")
        return order

    def logic_depth(self) -> int:
        """Maximum combinational depth (gates on the longest PI/DFF→PO/DFF path)."""
        depth: Dict[str, int] = {}
        for name in self.topological_order():
            gate = self._gates[name]
            if not gate.is_combinational:
                depth[name] = 0
                continue
            depth[name] = 1 + max(
                (depth.get(src, 0) for src in gate.fanin), default=0
            )
        return max(depth.values(), default=0)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        input_vectors: Sequence[Mapping[str, int]],
        initial_state: Optional[Mapping[str, int]] = None,
    ) -> List[Dict[str, int]]:
        """Cycle-accurate simulation.

        Parameters
        ----------
        input_vectors:
            One mapping of primary-input name -> 0/1 per clock cycle.
        initial_state:
            Optional DFF name -> 0/1 initial values (default all zero).

        Returns
        -------
        One dict per cycle mapping every primary-output net to its value.
        """
        state: Dict[str, int] = {name: 0 for name in self.dffs}
        if initial_state:
            for key, val in initial_state.items():
                if key not in state:
                    raise KeyError(f"unknown DFF {key!r} in initial state")
                state[key] = int(val)
        order = self.topological_order()
        results: List[Dict[str, int]] = []
        for vec in input_vectors:
            values: Dict[str, int] = {}
            for name in order:
                gate = self._gates[name]
                if gate.gtype is GateType.INPUT:
                    values[name] = int(vec[name])
                elif gate.gtype is GateType.DFF:
                    values[name] = state[name]
                elif gate.gtype is GateType.CONST0:
                    values[name] = 0
                elif gate.gtype is GateType.CONST1:
                    values[name] = 1
                else:
                    from repro.netlist.gates import evaluate_gate

                    values[name] = evaluate_gate(
                        gate.gtype, [values[s] for s in gate.fanin]
                    )
            results.append({po: values[po] for po in self._outputs})
            for name in self.dffs:
                state[name] = values[self._gates[name].fanin[0]]
        return results

    # ------------------------------------------------------------------
    # Support computation
    # ------------------------------------------------------------------
    def transitive_fanin(self, net: str, stop_at_state: bool = True) -> Set[str]:
        """Set of PI/DFF names in the transitive fan-in cone of ``net``.

        With ``stop_at_state`` the cone stops at DFF outputs (single-cycle
        support); otherwise it traverses through them.
        """
        support: Set[str] = set()
        stack = [net]
        visited: Set[str] = set()
        while stack:
            name = stack.pop()
            if name in visited:
                continue
            visited.add(name)
            gate = self._gates.get(name)
            if gate is None:
                continue
            if gate.gtype is GateType.INPUT:
                support.add(name)
            elif gate.gtype is GateType.DFF and stop_at_state:
                support.add(name)
            elif gate.gtype in (GateType.CONST0, GateType.CONST1):
                continue
            else:
                stack.extend(gate.fanin)
        return support

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Deep structural copy."""
        dup = Netlist(name or self.name)
        for gate in self._gates.values():
            dup.add_gate(gate.name, gate.gtype, list(gate.fanin))
        for po in self._outputs:
            dup.add_output(po)
        return dup

    def check(self) -> None:
        """Cheap internal consistency check (arity + dangling references)."""
        for gate in self._gates.values():
            gate.check_arity()
            for src in gate.fanin:
                if src not in self._gates:
                    raise ValueError(
                        f"gate {gate.name!r} references missing driver {src!r}"
                    )
        for po in self._outputs:
            if po not in self._gates:
                raise ValueError(f"primary output {po!r} has no driver")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name!r}: {len(self._gates)} gates, "
            f"{len(self.inputs)} PI, {len(self._outputs)} PO, {len(self.dffs)} DFF)"
        )
