"""Circuit characteristic reports (the columns of the paper's Table II).

Two granularities are provided: gate-level statistics of a raw
:class:`~repro.netlist.netlist.Netlist`, and post-mapping statistics, which
are what Table II actually tabulates (#CLBs, #IOBs, #DFF, #NETs, #PINs after
mapping into the XC3000 family).  The post-mapping variant lives here too so
that every Table II column has a single authoritative implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, TYPE_CHECKING

from repro.netlist.netlist import Netlist

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.techmap.mapped import MappedNetlist


@dataclass(frozen=True)
class NetlistStats:
    """Gate-level characteristics of a circuit."""

    name: str
    n_gates: int
    n_logic: int
    n_inputs: int
    n_outputs: int
    n_dff: int
    n_nets: int
    n_pins: int
    depth: int
    avg_fanin: float
    max_fanin: int
    avg_fanout: float
    max_fanout: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "gates": self.n_gates,
            "logic": self.n_logic,
            "PI": self.n_inputs,
            "PO": self.n_outputs,
            "DFF": self.n_dff,
            "nets": self.n_nets,
            "pins": self.n_pins,
            "depth": self.depth,
            "avg_fanin": round(self.avg_fanin, 2),
            "max_fanin": self.max_fanin,
            "avg_fanout": round(self.avg_fanout, 2),
            "max_fanout": self.max_fanout,
        }


def netlist_stats(netlist: Netlist) -> NetlistStats:
    """Compute gate-level statistics for ``netlist``."""
    logic = [g for g in netlist.gates() if g.is_combinational]
    fanout = netlist.fanout_map()
    fanin_counts = [len(g.fanin) for g in logic]
    fanout_counts = [len(readers) for readers in fanout.values()]
    return NetlistStats(
        name=netlist.name,
        n_gates=len(netlist),
        n_logic=len(logic),
        n_inputs=len(netlist.inputs),
        n_outputs=len(netlist.outputs),
        n_dff=len(netlist.dffs),
        n_nets=len(netlist),
        n_pins=netlist.pin_count(),
        depth=netlist.logic_depth(),
        avg_fanin=(sum(fanin_counts) / len(fanin_counts)) if fanin_counts else 0.0,
        max_fanin=max(fanin_counts, default=0),
        avg_fanout=(sum(fanout_counts) / len(fanout_counts)) if fanout_counts else 0.0,
        max_fanout=max(fanout_counts, default=0),
    )


@dataclass(frozen=True)
class MappedStats:
    """Post-technology-mapping characteristics: the Table II columns."""

    name: str
    n_clbs: int
    n_iobs: int
    n_dff: int
    n_nets: int
    n_pins: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "Circuit": self.name,
            "#CLBs": self.n_clbs,
            "#IOBs": self.n_iobs,
            "#DFF": self.n_dff,
            "#NETs": self.n_nets,
            "#PINs": self.n_pins,
        }


def mapped_stats(mapped: "MappedNetlist") -> MappedStats:
    """Compute the Table II row for a mapped netlist."""
    return MappedStats(
        name=mapped.name,
        n_clbs=mapped.n_cells,
        n_iobs=mapped.n_iobs,
        n_dff=mapped.n_dff,
        n_nets=mapped.n_nets,
        n_pins=mapped.n_pins,
    )
