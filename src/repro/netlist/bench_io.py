"""ISCAS ``.bench`` format reader and writer.

The ``.bench`` format is the lingua franca of the ISCAS'85/'89 benchmark
suites the paper evaluates on::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G17 = NAND(G0, G11)
    G11 = DFF(G5)

Gate type names are case-insensitive.  ``DFF`` takes one input.  We accept
the common aliases ``NOT``/``INV`` and ``BUF``/``BUFF``.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.robust.errors import ParseError

_TYPE_ALIASES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "DFF": GateType.DFF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_ASSIGN_RE = re.compile(
    r"^\s*([^\s=]+)\s*=\s*([A-Za-z01]+)\s*\(\s*(.*?)\s*\)\s*$"
)
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^\s)]+)\s*\)\s*$", re.IGNORECASE)


class BenchParseError(ParseError):
    """Raised when a ``.bench`` file is malformed.

    Always carries the offending line number (``lineno``) and, when the
    text came from disk, the file name (``source``).
    """

    def __init__(
        self, lineno: int, message: str, source: Optional[str] = None
    ) -> None:
        super().__init__(message, source=source, lineno=lineno)


def loads_bench(
    text: str, name: str = "circuit", source: Optional[str] = None
) -> Netlist:
    """Parse ``.bench`` text into a :class:`Netlist`.

    ``source`` (usually the file name) is woven into every parse error so
    failures localize the offending input.  Empty or comment-only text is
    rejected with a clear message rather than yielding a hollow netlist.
    """
    netlist = Netlist(name)
    outputs: List[str] = []
    saw_content = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        saw_content = True
        io_match = _IO_RE.match(line)
        if io_match:
            kind, net = io_match.group(1).upper(), io_match.group(2)
            if kind == "INPUT":
                netlist.add_input(net)
            else:
                outputs.append(net)
            continue
        assign = _ASSIGN_RE.match(line)
        if assign:
            target, type_name, args = assign.groups()
            gtype = _TYPE_ALIASES.get(type_name.upper())
            if gtype is None:
                raise BenchParseError(
                    lineno, f"unknown gate type {type_name!r}", source
                )
            fanin = [a.strip() for a in args.split(",") if a.strip()] if args else []
            try:
                netlist.add_gate(target, gtype, fanin)
            except ValueError as exc:
                raise BenchParseError(lineno, str(exc), source) from exc
            continue
        raise BenchParseError(lineno, f"unparseable line {line!r}", source)
    if not saw_content:
        raise BenchParseError(
            1, "empty .bench source (no INPUT/OUTPUT/assignment lines)", source
        )
    for net in outputs:
        netlist.add_output(net)
    netlist.check()
    return netlist


def dumps_bench(netlist: Netlist) -> str:
    """Serialize a :class:`Netlist` to ``.bench`` text."""
    lines = [f"# {netlist.name}"]
    for pi in netlist.inputs:
        lines.append(f"INPUT({pi})")
    for po in netlist.outputs:
        lines.append(f"OUTPUT({po})")
    for gate in netlist.gates():
        if gate.gtype is GateType.INPUT:
            continue
        args = ", ".join(gate.fanin)
        lines.append(f"{gate.name} = {gate.gtype.value}({args})")
    return "\n".join(lines) + "\n"


def load_bench(path: str, name: str = "") -> Netlist:
    """Read a ``.bench`` file from disk (parse errors carry the path)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    circuit_name = name or path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return loads_bench(text, circuit_name, source=path)


def save_bench(netlist: Netlist, path: str) -> None:
    """Write a ``.bench`` file to disk."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_bench(netlist))
