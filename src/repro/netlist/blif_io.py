"""BLIF (Berkeley Logic Interchange Format) reader and writer — SOP subset.

Supported constructs: ``.model``, ``.inputs``, ``.outputs``, ``.names``
(single-output cover), ``.latch`` (D flip-flop, clocking ignored), ``.end``.
Covers are converted to the substrate's primitive gates where the function
matches a primitive; otherwise the cover is expanded into a small AND/OR/NOT
network (one AND per cube plus an OR, or their complement for the off-set
form), which keeps the netlist purely structural.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.robust.errors import ParseError


class BlifParseError(ParseError):
    """Raised when a BLIF file is malformed or uses unsupported constructs.

    Carries the offending line number and source file name when known.
    """

    def __init__(
        self,
        message: str,
        lineno: Optional[int] = None,
        source: Optional[str] = None,
    ) -> None:
        super().__init__(message, source=source, lineno=lineno)


def _fresh(netlist: Netlist, base: str) -> str:
    """Generate a gate name not yet present in ``netlist``."""
    if base not in netlist:
        return base
    for i in itertools.count():
        cand = f"{base}_{i}"
        if cand not in netlist:
            return cand
    raise AssertionError("unreachable")


def _cover_to_gates(
    netlist: Netlist,
    output: str,
    inputs: Sequence[str],
    cubes: Sequence[Tuple[str, str]],
    lineno: Optional[int] = None,
    source: Optional[str] = None,
) -> None:
    """Expand a ``.names`` cover into primitive gates driving ``output``."""
    if not inputs:
        # Constant cell: a single cube with output value 1 means constant 1.
        value = any(out_val == "1" for _, out_val in cubes)
        netlist.add_gate(output, GateType.CONST1 if value else GateType.CONST0)
        return
    if not cubes:
        netlist.add_gate(output, GateType.CONST0)
        return
    out_vals = {out_val for _, out_val in cubes}
    if len(out_vals) != 1:
        raise BlifParseError(
            f"mixed on/off-set cover for {output!r}", lineno, source
        )
    onset = out_vals.pop() == "1"

    def build_cube(pattern: str, name_hint: str) -> str:
        """Return the net computing one cube (product term)."""
        literals: List[str] = []
        for bit, src in zip(pattern, inputs):
            if bit == "-":
                continue
            if bit == "1":
                literals.append(src)
            elif bit == "0":
                inv = _fresh(netlist, f"{name_hint}_n_{src}")
                netlist.add_gate(inv, GateType.NOT, [src])
                literals.append(inv)
            else:
                raise BlifParseError(
                    f"bad cube character {bit!r} for {output!r}", lineno, source
                )
        if not literals:
            const = _fresh(netlist, f"{name_hint}_t")
            netlist.add_gate(const, GateType.CONST1)
            return const
        if len(literals) == 1:
            return literals[0]
        term = _fresh(netlist, f"{name_hint}_and")
        netlist.add_gate(term, GateType.AND, literals)
        return term

    terms = [
        build_cube(pattern, f"{output}_c{i}") for i, (pattern, _) in enumerate(cubes)
    ]
    if len(terms) == 1:
        src = terms[0]
        netlist.add_gate(output, GateType.BUF if onset else GateType.NOT, [src])
    else:
        if onset:
            netlist.add_gate(output, GateType.OR, terms)
        else:
            netlist.add_gate(output, GateType.NOR, terms)


def loads_blif(text: str, name: str = "", source: Optional[str] = None) -> Netlist:
    """Parse BLIF text into a :class:`Netlist`.

    ``source`` (usually the file name) is woven into every parse error,
    together with the line number of the offending logical line.  Empty
    or comment-only text is rejected with a clear message.
    """
    # Join continuation lines first, remembering where each logical line
    # started so errors can localize the input.
    logical_lines: List[Tuple[int, str]] = []
    pending = ""
    pending_lineno = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            if not pending:
                pending_lineno = lineno
            pending += line[:-1] + " "
            continue
        logical_lines.append((pending_lineno or lineno, pending + line))
        pending = ""
        pending_lineno = 0
    if pending.strip():
        logical_lines.append((pending_lineno, pending))
    if not logical_lines:
        raise BlifParseError(
            "empty BLIF source (no directives or covers)", 1, source
        )

    model_name = name
    inputs: List[str] = []
    outputs: List[str] = []
    latches: List[Tuple[int, str, str]] = []
    covers: List[Tuple[int, str, List[str], List[Tuple[str, str]]]] = []
    current: Optional[Tuple[int, str, List[str], List[Tuple[str, str]]]] = None

    for lineno, line in logical_lines:
        tokens = line.split()
        if tokens[0].startswith("."):
            directive = tokens[0]
            current = None
            if directive == ".model":
                if len(tokens) > 1 and not model_name:
                    model_name = tokens[1]
            elif directive == ".inputs":
                inputs.extend(tokens[1:])
            elif directive == ".outputs":
                outputs.extend(tokens[1:])
            elif directive == ".names":
                if len(tokens) < 2:
                    raise BlifParseError(".names with no signals", lineno, source)
                current = (lineno, tokens[-1], tokens[1:-1], [])
                covers.append(current)
            elif directive == ".latch":
                if len(tokens) < 3:
                    raise BlifParseError(
                        ".latch needs input and output", lineno, source
                    )
                latches.append((lineno, tokens[1], tokens[2]))
            elif directive == ".end":
                break
            else:
                raise BlifParseError(
                    f"unsupported directive {directive}", lineno, source
                )
        else:
            if current is None:
                raise BlifParseError(
                    f"cube line outside .names: {line!r}", lineno, source
                )
            if len(tokens) == 1 and not current[2]:
                current[3].append(("", tokens[0]))
            elif len(tokens) == 2:
                current[3].append((tokens[0], tokens[1]))
            else:
                raise BlifParseError(
                    f"malformed cube line {line!r}", lineno, source
                )

    netlist = Netlist(model_name or "blif_circuit")
    for pi in inputs:
        netlist.add_input(pi)
    for lineno, data_in, q_out in latches:
        try:
            netlist.add_gate(q_out, GateType.DFF, [data_in])
        except ValueError as exc:
            raise BlifParseError(str(exc), lineno, source) from exc
    for lineno, output, cover_in, cubes in covers:
        try:
            _cover_to_gates(netlist, output, cover_in, cubes, lineno, source)
        except BlifParseError:
            raise
        except ValueError as exc:
            raise BlifParseError(str(exc), lineno, source) from exc
    for po in outputs:
        netlist.add_output(po)
    netlist.check()
    return netlist


def dumps_blif(netlist: Netlist) -> str:
    """Serialize a :class:`Netlist` to BLIF text (one ``.names`` per gate)."""
    lines = [f".model {netlist.name}"]
    if netlist.inputs:
        lines.append(".inputs " + " ".join(netlist.inputs))
    if netlist.outputs:
        lines.append(".outputs " + " ".join(netlist.outputs))
    for gate in netlist.gates():
        if gate.gtype is GateType.INPUT:
            continue
        if gate.gtype is GateType.DFF:
            lines.append(f".latch {gate.fanin[0]} {gate.name} 0")
            continue
        lines.append(".names " + " ".join(gate.fanin + [gate.name]))
        lines.extend(_gate_cubes(gate.gtype, len(gate.fanin)))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _gate_cubes(gtype: GateType, fanin: int) -> List[str]:
    """SOP cube lines for one primitive gate."""
    if gtype is GateType.CONST1:
        return ["1"]
    if gtype is GateType.CONST0:
        return []
    if gtype is GateType.BUF:
        return ["1 1"]
    if gtype is GateType.NOT:
        return ["0 1"]
    if gtype is GateType.AND:
        return ["1" * fanin + " 1"]
    if gtype is GateType.NAND:
        return ["0" + "-" * (fanin - 1 - i) + " 1" for i in range(0)] or [
            "-" * i + "0" + "-" * (fanin - 1 - i) + " 1" for i in range(fanin)
        ]
    if gtype is GateType.OR:
        return ["-" * i + "1" + "-" * (fanin - 1 - i) + " 1" for i in range(fanin)]
    if gtype is GateType.NOR:
        return ["0" * fanin + " 1"]
    if gtype in (GateType.XOR, GateType.XNOR):
        want = 1 if gtype is GateType.XOR else 0
        cubes = []
        for row in range(1 << fanin):
            bits = [(row >> j) & 1 for j in range(fanin)]
            if (sum(bits) & 1) == want:
                cubes.append("".join(str(b) for b in bits) + " 1")
        return cubes
    raise BlifParseError(f"cannot serialize gate type {gtype.value}")
