"""Synthetic gate-level circuit generators.

The paper evaluates on ISCAS'85/'89 circuits from the MCNC ``partitioning93``
benchmark directory, which is no longer distributable here.  This module
builds *synthetic equivalents*: deterministic, seeded generators that
reproduce the structural properties the partitioning algorithms are
sensitive to —

* overall size (gate, PI, PO, DFF counts),
* locality (a Rent's-rule-style clustered interconnect, the reason the
  sequential ISCAS'89 circuits replicate so well in the paper),
* fan-in/fan-out profiles typical of mapped random logic, and
* regular datapath structure where the original circuit is a datapath
  (c6288 is a genuine 16x16 array multiplier, reproduced exactly here).

All generators take an explicit seed and are fully deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist

_LOGIC_CHOICES: Tuple[Tuple[GateType, int], ...] = (
    # (gate type, relative weight) for random logic; mirrors the NAND/NOR-rich
    # profile of the ISCAS netlists.
    (GateType.NAND, 30),
    (GateType.NOR, 14),
    (GateType.AND, 18),
    (GateType.OR, 12),
    (GateType.NOT, 14),
    (GateType.XOR, 7),
    (GateType.XNOR, 3),
    (GateType.BUF, 2),
)


def _weighted_type(rng: random.Random) -> GateType:
    total = sum(w for _, w in _LOGIC_CHOICES)
    pick = rng.randrange(total)
    acc = 0
    for gtype, weight in _LOGIC_CHOICES:
        acc += weight
        if pick < acc:
            return gtype
    raise AssertionError("unreachable")


def _fanin_count(rng: random.Random, gtype: GateType, available: int) -> int:
    if gtype in (GateType.NOT, GateType.BUF):
        return 1
    # ISCAS-style distribution: mostly 2-input, tail up to 5.
    weights = [(2, 58), (3, 24), (4, 12), (5, 6)]
    total = sum(w for _, w in weights)
    pick = rng.randrange(total)
    acc = 0
    count = 2
    for value, weight in weights:
        acc += weight
        if pick < acc:
            count = value
            break
    return max(2, min(count, available))


# ---------------------------------------------------------------------------
# Random clustered logic (Rent's-rule flavoured)
# ---------------------------------------------------------------------------


def _geometric_offset(rng: random.Random, limit: int, p: float = 0.5) -> int:
    """A 1-based log-uniform offset capped at ``limit``.

    Cross-cluster link lengths are drawn log-uniformly (a power-law-ish
    tail): mostly near neighbours with occasional long wires, matching the
    Rent's-rule wire-length distribution of real designs.  A purely
    geometric tail would give a 1-D circuit with near-zero Rent exponent.
    """
    if limit <= 0:
        return 0
    return max(1, min(limit, int(round(limit ** rng.random()))))


def random_logic(
    name: str,
    n_gates: int,
    n_inputs: int,
    n_outputs: int,
    seed: int = 0,
    cluster_size: int = 32,
    cross_cluster_prob: float = 0.10,
    reconvergence: float = 0.5,
    n_clusters: int = 0,
) -> Netlist:
    """Generate random combinational logic with Rent-style 1-D locality.

    Gates are laid out as a sequence of clusters of ``cluster_size`` gates.
    Each new gate draws its fan-in mostly from its own cluster's pool (with
    a recency bias controlled by ``reconvergence``) and occasionally -- with
    probability ``cross_cluster_prob`` per pin -- from an *earlier* cluster
    chosen at a geometrically distributed distance.  The resulting netlists
    have small bisection cuts growing sublinearly with size, the property of
    real designs that min-cut partitioners (and the paper's experiments)
    rely on; a plain random DAG would instead have Theta(n) cuts.

    Parameters
    ----------
    name: circuit name.
    n_gates: number of logic gates to create.
    n_inputs / n_outputs: primary I/O counts.
    seed: RNG seed (the generator is deterministic in it).
    cluster_size: gates per locality cluster.
    cross_cluster_prob: per-pin probability of an inter-cluster connection.
    reconvergence: in [0, 1]; recency bias of fan-in selection.
    n_clusters: overrides the cluster count when positive.
    """
    if n_gates < 1 or n_inputs < 1 or n_outputs < 1:
        raise ValueError("n_gates, n_inputs, n_outputs must all be >= 1")
    if n_clusters <= 0:
        n_clusters = max(1, n_gates // max(4, cluster_size))
    n_clusters = min(n_clusters, n_gates)
    rng = random.Random(seed)
    netlist = Netlist(name)

    pis = [f"pi{i}" for i in range(n_inputs)]
    for pi in pis:
        netlist.add_input(pi)

    # Each cluster's pool starts with a share of the primary inputs, so I/O
    # is spread along the sequence like pads around a die.
    cluster_nets: List[List[str]] = [[] for _ in range(n_clusters)]
    for i, pi in enumerate(pis):
        cluster_nets[i * n_clusters // len(pis)].append(pi)

    gate_names: List[str] = []
    skew_exp = 1.0 - 0.85 * reconvergence
    for g in range(n_gates):
        cluster = g * n_clusters // n_gates
        gtype = _weighted_type(rng)
        pool = cluster_nets[cluster]
        fanin_n = _fanin_count(rng, gtype, max(2, len(pool)))
        fanin: List[str] = []
        seen = set()
        for _ in range(fanin_n):
            src_pool = pool
            if cluster > 0 and rng.random() < cross_cluster_prob:
                other = cluster - _geometric_offset(rng, cluster)
                if cluster_nets[other]:
                    src_pool = cluster_nets[other]
            if not src_pool:
                src_pool = pis
            # Recency-biased index: skew toward the end of the pool.
            u = rng.random()
            idx = min(int((u ** skew_exp) * len(src_pool)), len(src_pool) - 1)
            src = src_pool[idx]
            if src in seen:
                src = src_pool[rng.randrange(len(src_pool))]
            if src in seen:
                continue
            seen.add(src)
            fanin.append(src)
        if not fanin:
            fanin = [rng.choice(pis)]
        if gtype in (GateType.NOT, GateType.BUF):
            fanin = fanin[:1]
        elif len(fanin) == 1:
            gtype = GateType.BUF
        gname = f"g{g}"
        netlist.add_gate(gname, gtype, fanin)
        cluster_nets[cluster].append(gname)
        gate_names.append(gname)

    _select_outputs(netlist, gate_names, n_outputs, rng)
    netlist.check()
    return netlist


def _select_outputs(
    netlist: Netlist, gate_names: Sequence[str], n_outputs: int, rng: random.Random
) -> None:
    """Mark primary outputs, preferring nets that currently have no readers.

    Real circuits expose their cone apexes as POs; mirroring that keeps the
    netlist dangle-free.  When there are more reader-less nets (sinks) than
    requested outputs, the surplus sinks are folded into the final PO with a
    4-ary OR tree; when there are fewer, random internal nets are promoted.
    """
    fanout = netlist.fanout_map()
    sinks = [g for g in gate_names if not fanout.get(g)]
    if len(sinks) > n_outputs:
        chosen = sinks[: n_outputs - 1] if n_outputs > 1 else []
        to_fold = sinks[n_outputs - 1 :] if n_outputs > 1 else sinks
        level = 0
        while len(to_fold) > 1:
            nxt: List[str] = []
            for i in range(0, len(to_fold), 4):
                group = to_fold[i : i + 4]
                if len(group) == 1:
                    nxt.append(group[0])
                    continue
                joiner = f"po_join_{level}_{i}"
                netlist.add_gate(joiner, GateType.OR, group)
                nxt.append(joiner)
            to_fold = nxt
            level += 1
        chosen.append(to_fold[0])
    else:
        chosen = list(sinks)
        internal = [g for g in gate_names if g not in set(chosen)]
        rng.shuffle(internal)
        while len(chosen) < n_outputs and internal:
            chosen.append(internal.pop())
    for net in dict.fromkeys(chosen):
        netlist.add_output(net)


# ---------------------------------------------------------------------------
# Datapath structures
# ---------------------------------------------------------------------------


def full_adder(netlist: Netlist, a: str, b: str, cin: str, prefix: str) -> Tuple[str, str]:
    """Instantiate a full adder; returns ``(sum, carry_out)`` net names."""
    s1 = f"{prefix}_s1"
    netlist.add_gate(s1, GateType.XOR, [a, b])
    s = f"{prefix}_sum"
    netlist.add_gate(s, GateType.XOR, [s1, cin])
    c1 = f"{prefix}_c1"
    netlist.add_gate(c1, GateType.AND, [a, b])
    c2 = f"{prefix}_c2"
    netlist.add_gate(c2, GateType.AND, [s1, cin])
    cout = f"{prefix}_cout"
    netlist.add_gate(cout, GateType.OR, [c1, c2])
    return s, cout


def half_adder(netlist: Netlist, a: str, b: str, prefix: str) -> Tuple[str, str]:
    """Instantiate a half adder; returns ``(sum, carry_out)`` net names."""
    s = f"{prefix}_sum"
    netlist.add_gate(s, GateType.XOR, [a, b])
    c = f"{prefix}_cout"
    netlist.add_gate(c, GateType.AND, [a, b])
    return s, c


def ripple_adder(name: str, width: int) -> Netlist:
    """An n-bit ripple-carry adder (classic long-chain datapath)."""
    if width < 1:
        raise ValueError("width must be >= 1")
    netlist = Netlist(name)
    a_bits = [f"a{i}" for i in range(width)]
    b_bits = [f"b{i}" for i in range(width)]
    for pin in a_bits + b_bits + ["cin"]:
        netlist.add_input(pin)
    carry = "cin"
    for i in range(width):
        s, carry = full_adder(netlist, a_bits[i], b_bits[i], carry, f"fa{i}")
        netlist.add_output(s)
    netlist.add_output(carry)
    netlist.check()
    return netlist


def array_multiplier(name: str, width: int) -> Netlist:
    """An n x n array multiplier.

    With ``width=16`` this is the structural equivalent of ISCAS'85 c6288
    (a 16x16 array multiplier of ~2400 gates built from full/half adders and
    AND partial products).
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    netlist = Netlist(name)
    a_bits = [f"a{i}" for i in range(width)]
    b_bits = [f"b{i}" for i in range(width)]
    for pin in a_bits + b_bits:
        netlist.add_input(pin)

    # Partial products pp[i][j] = a_i AND b_j.
    pp: List[List[str]] = []
    for j in range(width):
        row = []
        for i in range(width):
            net = f"pp_{i}_{j}"
            netlist.add_gate(net, GateType.AND, [a_bits[i], b_bits[j]])
            row.append(net)
        pp.append(row)

    # Row-by-row carry-save accumulation.
    sums = list(pp[0])  # partial sum bits for current significance window
    carries: List[str] = []
    outputs: List[str] = [sums[0]]
    acc = sums[1:]
    for j in range(1, width):
        row = pp[j]
        new_acc: List[str] = []
        new_carries: List[str] = []
        for i in range(width):
            operands = [row[i]]
            if i < len(acc):
                operands.append(acc[i])
            if i < len(carries):
                operands.append(carries[i])
            prefix = f"cell_{i}_{j}"
            if len(operands) == 1:
                s = operands[0]
                c = None
            elif len(operands) == 2:
                s, c = half_adder(netlist, operands[0], operands[1], prefix)
            else:
                s, c = full_adder(netlist, operands[0], operands[1], operands[2], prefix)
            new_acc.append(s)
            if c is not None:
                new_carries.append(c)
            else:
                new_carries.append("")
        outputs.append(new_acc[0])
        acc = new_acc[1:]
        carries = [c for c in new_carries if c]

    # Final carry-propagate row.
    carry = ""
    for i in range(len(acc)):
        prefix = f"final_{i}"
        operands = [acc[i]]
        if i < len(carries):
            operands.append(carries[i])
        if carry:
            operands.append(carry)
        if len(operands) == 1:
            s, carry = operands[0], ""
        elif len(operands) == 2:
            s, carry = half_adder(netlist, operands[0], operands[1], prefix)
        else:
            s, carry = full_adder(netlist, operands[0], operands[1], operands[2], prefix)
        outputs.append(s)
    leftover = [c for c in carries[len(acc):] if c]
    if carry:
        leftover.insert(0, carry)
    while len(leftover) > 1:
        prefix = f"tail_{len(outputs)}_{len(leftover)}"
        s, c = half_adder(netlist, leftover.pop(), leftover.pop(), prefix)
        outputs.append(s)
        if c:
            leftover.append(c)
    if leftover:
        outputs.append(leftover[0])

    for net in outputs[: 2 * width]:
        netlist.add_output(net)
    # Tie off any remaining dangling internal nets as outputs to stay legal.
    fanout = netlist.fanout_map()
    po_set = set(netlist.outputs)
    for gname in netlist.gate_names():
        if gname not in fanout and gname not in po_set:
            gate = netlist.gate(gname)
            if gate.gtype is not GateType.INPUT:
                netlist.add_output(gname)
    netlist.check()
    return netlist


def alu_slice(netlist: Netlist, a: str, b: str, cin: str, op0: str, op1: str, prefix: str) -> Tuple[str, str]:
    """A 1-bit ALU slice (AND/OR/XOR/ADD selected by ``op1 op0``).

    Returns ``(result, carry_out)``.
    """
    f_and = f"{prefix}_and"
    netlist.add_gate(f_and, GateType.AND, [a, b])
    f_or = f"{prefix}_or"
    netlist.add_gate(f_or, GateType.OR, [a, b])
    f_xor = f"{prefix}_xor"
    netlist.add_gate(f_xor, GateType.XOR, [a, b])
    f_sum, cout = full_adder(netlist, a, b, cin, f"{prefix}_fa")
    nop0 = f"{prefix}_nop0"
    netlist.add_gate(nop0, GateType.NOT, [op0])
    nop1 = f"{prefix}_nop1"
    netlist.add_gate(nop1, GateType.NOT, [op1])
    t0 = f"{prefix}_t0"
    netlist.add_gate(t0, GateType.AND, [f_and, nop1, nop0])
    t1 = f"{prefix}_t1"
    netlist.add_gate(t1, GateType.AND, [f_or, nop1, op0])
    t2 = f"{prefix}_t2"
    netlist.add_gate(t2, GateType.AND, [f_xor, op1, nop0])
    t3 = f"{prefix}_t3"
    netlist.add_gate(t3, GateType.AND, [f_sum, op1, op0])
    result = f"{prefix}_y"
    netlist.add_gate(result, GateType.OR, [t0, t1, t2, t3])
    return result, cout


def alu(name: str, width: int) -> Netlist:
    """An n-bit 4-function ALU (c3540/c5315-style control+datapath mix)."""
    netlist = Netlist(name)
    a_bits = [f"a{i}" for i in range(width)]
    b_bits = [f"b{i}" for i in range(width)]
    for pin in a_bits + b_bits + ["cin", "op0", "op1"]:
        netlist.add_input(pin)
    carry = "cin"
    results = []
    for i in range(width):
        y, carry = alu_slice(netlist, a_bits[i], b_bits[i], carry, "op0", "op1", f"s{i}")
        results.append(y)
        netlist.add_output(y)
    netlist.add_output(carry)
    zero_terms = results[:]
    level = 0
    while len(zero_terms) > 1:
        nxt = []
        for i in range(0, len(zero_terms) - 1, 2):
            net = f"z_{level}_{i}"
            netlist.add_gate(net, GateType.OR, [zero_terms[i], zero_terms[i + 1]])
            nxt.append(net)
        if len(zero_terms) % 2:
            nxt.append(zero_terms[-1])
        zero_terms = nxt
        level += 1
    zero = f"{name}_zero"
    netlist.add_gate(zero, GateType.NOT, [zero_terms[0]])
    netlist.add_output(zero)
    netlist.check()
    return netlist


# ---------------------------------------------------------------------------
# Sequential structures
# ---------------------------------------------------------------------------


def lfsr(name: str, width: int, taps: Optional[Sequence[int]] = None) -> Netlist:
    """A Fibonacci LFSR of ``width`` bits with an enable input."""
    if width < 2:
        raise ValueError("width must be >= 2")
    netlist = Netlist(name)
    netlist.add_input("en")
    netlist.add_input("seed_in")
    tap_list = list(taps) if taps else [width - 1, max(0, width - 3)]
    state = [f"q{i}" for i in range(width)]
    # seed_in is always xored in so the register can leave the all-zero state.
    feedback_terms = [state[t] for t in dict.fromkeys(tap_list)] + ["seed_in"]
    fb = f"{name}_fb"
    netlist.add_gate(fb, GateType.XOR, feedback_terms)
    for i in range(width):
        src = fb if i == 0 else state[i - 1]
        hold = f"{name}_hold{i}"
        nen = f"{name}_nen{i}"
        shift = f"{name}_shift{i}"
        d = f"{name}_d{i}"
        netlist.add_gate(nen, GateType.NOT, ["en"])
        netlist.add_gate(hold, GateType.AND, [state[i], nen])
        netlist.add_gate(shift, GateType.AND, [src, "en"])
        netlist.add_gate(d, GateType.OR, [hold, shift])
        netlist.add_gate(state[i], GateType.DFF, [d])
    netlist.add_output(state[-1])
    netlist.add_output(state[width // 2])
    netlist.check()
    return netlist


def counter(name: str, width: int) -> Netlist:
    """A synchronous binary up-counter with enable."""
    netlist = Netlist(name)
    netlist.add_input("en")
    state = [f"q{i}" for i in range(width)]
    carry = "en"
    for i in range(width):
        toggle = f"{name}_t{i}"
        netlist.add_gate(toggle, GateType.XOR, [state[i], carry])
        if i < width - 1:
            new_carry = f"{name}_c{i}"
            netlist.add_gate(new_carry, GateType.AND, [state[i], carry])
            carry = new_carry
        netlist.add_gate(state[i], GateType.DFF, [toggle])
        netlist.add_output(state[i])
    netlist.check()
    return netlist


def sequential_core(
    name: str,
    n_gates: int,
    n_inputs: int,
    n_outputs: int,
    n_dff: int,
    seed: int = 0,
    cluster_size: int = 40,
    cross_cluster_prob: float = 0.06,
    n_clusters: int = 0,
) -> Netlist:
    """Clustered sequential machine: the ISCAS'89-style generator.

    Builds a sequence of register clusters (about ``cluster_size`` gates
    each).  Each cluster owns a share of the DFFs; next-state logic draws
    mostly on the cluster's own state and inputs (local feedback), with
    occasional cross-cluster nets at geometrically distributed distance --
    exactly the "cells are more clustered" structure the paper credits for
    the larger replication wins on the s-circuits.
    """
    if min(n_gates, n_inputs, n_outputs, n_dff) < 1:
        raise ValueError("all counts must be >= 1")
    if n_clusters <= 0:
        n_clusters = max(1, n_gates // max(4, cluster_size))
    n_clusters = max(1, min(n_clusters, n_dff, n_gates))
    rng = random.Random(seed)
    netlist = Netlist(name)

    pis = [f"pi{i}" for i in range(n_inputs)]
    for pi in pis:
        netlist.add_input(pi)
    dffs = [f"ff{i}" for i in range(n_dff)]

    # Per-cluster source pools start with state bits + some PIs.
    cluster_nets: List[List[str]] = [[] for _ in range(n_clusters)]
    cluster_dffs: List[List[str]] = [[] for _ in range(n_clusters)]
    for i, ff in enumerate(dffs):
        c = i * n_clusters // len(dffs)
        cluster_nets[c].append(ff)
        cluster_dffs[c].append(ff)
    for i, pi in enumerate(pis):
        cluster_nets[i * n_clusters // len(pis)].append(pi)

    gate_names: List[str] = []
    for g in range(n_gates):
        cluster = g * n_clusters // n_gates
        gtype = _weighted_type(rng)
        pool = cluster_nets[cluster]
        fanin_n = _fanin_count(rng, gtype, len(pool))
        fanin: List[str] = []
        seen = set()
        for _ in range(fanin_n):
            src_pool = pool
            if n_clusters > 1 and rng.random() < cross_cluster_prob:
                # Cross-links reach both directions (state feedback makes
                # forward references legal through registers) but stay local.
                offset = _geometric_offset(rng, n_clusters - 1)
                other = cluster + (offset if rng.random() < 0.5 else -offset)
                other = max(0, min(n_clusters - 1, other))
                # Only state bits and PIs of a *later* cluster exist yet.
                if cluster_nets[other]:
                    src_pool = cluster_nets[other]
            u = rng.random()
            idx = min(int((u ** 0.35) * len(src_pool)), len(src_pool) - 1)
            src = src_pool[idx]
            if src in seen:
                continue
            seen.add(src)
            fanin.append(src)
        if not fanin:
            fanin = [pool[rng.randrange(len(pool))]]
        if gtype in (GateType.NOT, GateType.BUF):
            fanin = fanin[:1]
        elif len(fanin) == 1:
            gtype = GateType.BUF
        gname = f"g{g}"
        netlist.add_gate(gname, gtype, fanin)
        cluster_nets[cluster].append(gname)
        gate_names.append(gname)

    # Close the state loops: each DFF's D input comes from late logic of its
    # own cluster (local feedback).
    for c in range(n_clusters):
        pool = cluster_nets[c]
        logic_pool = [n for n in pool if n.startswith("g")] or pool
        for ff in cluster_dffs[c]:
            d_src = logic_pool[rng.randrange(max(1, len(logic_pool) // 2), len(logic_pool))] \
                if len(logic_pool) > 1 else logic_pool[0]
            netlist.add_gate(ff, GateType.DFF, [d_src])

    # Every state bit must be observable: splice unread DFF outputs into a
    # same-cluster gate (keeping the feedback local), or expose them as POs.
    fanout = netlist.fanout_map()
    for c in range(n_clusters):
        logic_pool = [n for n in cluster_nets[c] if n.startswith("g")]
        for ff in cluster_dffs[c]:
            if fanout.get(ff):
                continue
            spliced = False
            for _ in range(8):
                if not logic_pool:
                    break
                gname = logic_pool[rng.randrange(len(logic_pool))]
                gate = netlist.gate(gname)
                if (
                    gate.gtype not in (GateType.NOT, GateType.BUF, GateType.DFF)
                    and len(gate.fanin) < 5
                    and ff not in gate.fanin
                ):
                    gate.fanin.append(ff)
                    spliced = True
                    break
            if not spliced:
                netlist.add_output(ff)

    _select_outputs(netlist, gate_names, n_outputs, rng)
    netlist.check()
    return netlist
