"""The nine DAC'94 benchmark circuits, rebuilt synthetically.

The paper evaluates on four ISCAS'85 and five ISCAS'89 circuits from the MCNC
``partitioning93`` directory, technology-mapped into the Xilinx XC3000
family (its Table II).  The original netlists are not redistributable here,
so each circuit is rebuilt by a deterministic generator with the *published*
ISCAS profile (primary inputs, primary outputs, D flip-flops, gate count) and
a structure matching the circuit's known nature:

===========  =====================================================
c3540        ALU and control -- Rent-clustered random logic
c5315        ALU and selector -- Rent-clustered random logic
c6288        16x16 array multiplier -- exact structural generator
c7552        ALU and control -- Rent-clustered random logic
s5378 ...    sequential controllers -- clustered sequential cores
===========  =====================================================

Every builder accepts a ``scale`` factor that shrinks the circuit uniformly
(gates, DFFs and I/O all scale) so that experiments can trade fidelity for
runtime; ``scale=1.0`` reproduces the published profile.  The reproduction
targets are *relative* quantities (cut reductions, utilization ratios), which
are stable under uniform scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.netlist.generate import array_multiplier, random_logic, sequential_core
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class BenchmarkProfile:
    """Published ISCAS profile of one benchmark circuit."""

    name: str
    n_inputs: int
    n_outputs: int
    n_dff: int
    n_gates: int
    kind: str  # "random", "multiplier", "sequential"
    cluster_size: int = 32
    cross_cluster_prob: float = 0.10


#: Published profiles of the nine paper benchmarks (ISCAS'85/'89 handbook
#: values).  Cluster sizes / cross-link rates tune the Rent-style locality:
#: the sequential circuits are more strongly clustered (smaller clusters,
#: fewer cross links), the structure the paper credits for their larger
#: replication wins.
PROFILES: Dict[str, BenchmarkProfile] = {
    "c3540": BenchmarkProfile("c3540", 50, 22, 0, 1669, "random"),
    "c5315": BenchmarkProfile("c5315", 178, 123, 0, 2307, "random"),
    "c6288": BenchmarkProfile("c6288", 32, 32, 0, 2406, "multiplier"),
    "c7552": BenchmarkProfile("c7552", 207, 108, 0, 3512, "random"),
    "s5378": BenchmarkProfile(
        "s5378", 35, 49, 179, 2779, "sequential", cluster_size=36, cross_cluster_prob=0.06
    ),
    "s9234": BenchmarkProfile(
        "s9234", 36, 39, 211, 5597, "sequential", cluster_size=36, cross_cluster_prob=0.06
    ),
    "s13207": BenchmarkProfile(
        "s13207", 62, 152, 638, 7951, "sequential", cluster_size=32, cross_cluster_prob=0.05
    ),
    "s15850": BenchmarkProfile(
        "s15850", 77, 150, 534, 9772, "sequential", cluster_size=32, cross_cluster_prob=0.05
    ),
    "s38584": BenchmarkProfile(
        "s38584", 38, 304, 1426, 19253, "sequential", cluster_size=30, cross_cluster_prob=0.04
    ),
}

#: Benchmark names in the paper's table order.
BENCHMARK_NAMES: Tuple[str, ...] = tuple(PROFILES.keys())

#: Names of the combinational (ISCAS'85) benchmarks.
COMBINATIONAL_NAMES: Tuple[str, ...] = ("c3540", "c5315", "c6288", "c7552")

#: Names of the sequential (ISCAS'89) benchmarks.
SEQUENTIAL_NAMES: Tuple[str, ...] = (
    "s5378",
    "s9234",
    "s13207",
    "s15850",
    "s38584",
)


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def benchmark_circuit(name: str, scale: float = 1.0, seed: int = 1994) -> Netlist:
    """Build one named benchmark circuit.

    Parameters
    ----------
    name:
        One of :data:`BENCHMARK_NAMES`.
    scale:
        Uniform size factor in (0, 1]; 1.0 reproduces the published profile.
        The multiplier circuit quantizes scale to an operand width.
    seed:
        Generator seed; the default matches the recorded experiments.
    """
    if name not in PROFILES:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARK_NAMES)}"
        )
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    profile = PROFILES[name]
    if profile.kind == "multiplier":
        width = max(4, int(round(16 * math.sqrt(scale))))
        netlist = array_multiplier(name, width)
        netlist.name = name
        return netlist
    if profile.kind == "random":
        return random_logic(
            name,
            n_gates=_scaled(profile.n_gates, scale, minimum=16),
            n_inputs=_scaled(profile.n_inputs, scale, minimum=4),
            n_outputs=_scaled(profile.n_outputs, scale, minimum=2),
            seed=seed,
            cluster_size=profile.cluster_size,
            cross_cluster_prob=profile.cross_cluster_prob,
        )
    return sequential_core(
        name,
        n_gates=_scaled(profile.n_gates, scale, minimum=32),
        n_inputs=_scaled(profile.n_inputs, scale, minimum=4),
        n_outputs=_scaled(profile.n_outputs, scale, minimum=2),
        n_dff=_scaled(profile.n_dff, scale, minimum=4),
        seed=seed,
        cluster_size=profile.cluster_size,
        cross_cluster_prob=profile.cross_cluster_prob,
    )


def benchmark_suite(scale: float = 1.0, seed: int = 1994) -> Dict[str, Netlist]:
    """Build the full nine-circuit suite (dict keyed by circuit name)."""
    return {name: benchmark_circuit(name, scale, seed) for name in BENCHMARK_NAMES}
