"""Rent's-rule analysis of netlist locality.

Rent's rule relates the number of external terminals T of a logic block to
the number of cells B it contains: ``T = t * B^p`` with Rent exponent p.
Real circuits have p in roughly 0.5-0.75; a structureless random graph
drives p toward 1.0.  The DAC'94 benchmark circuits are rebuilt
synthetically here (see :mod:`repro.netlist.benchmarks`), so this module
provides the quantitative check that the substitution preserves the
property min-cut partitioning actually depends on: sub-linear terminal
growth, i.e. a realistic Rent exponent.

The estimator recursively bipartitions the mapped hypergraph with FM,
records (cells, terminals) for every block at every level, and fits
``log T = log t + p * log B`` by least squares -- the standard
partitioning-based Rent estimation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.fm import FMConfig, fm_bipartition


@dataclass(frozen=True)
class RentFit:
    """Least-squares fit of Rent's rule over recorded (cells, terminals)."""

    exponent: float
    coefficient: float
    points: Tuple[Tuple[int, int], ...]

    def predicted_terminals(self, cells: int) -> float:
        return self.coefficient * cells ** self.exponent


def _block_terminals(hg: Hypergraph, members: Sequence[int]) -> int:
    """External nets of a block: nets with pins both inside and outside."""
    member_set = set(members)
    terminals = 0
    for net in hg.nets:
        inside = outside = False
        for node, _, _ in net.pins:
            if node in member_set:
                inside = True
            else:
                outside = True
            if inside and outside:
                terminals += 1
                break
    return terminals


def rent_points(
    hg: Hypergraph,
    seed: int = 0,
    min_block: int = 8,
    max_depth: int = 10,
) -> List[Tuple[int, int]]:
    """(cells, terminals) samples from recursive FM bisection."""
    rng = random.Random(seed)
    points: List[Tuple[int, int]] = []
    cells = [n.index for n in hg.nodes if n.is_cell]
    stack: List[Tuple[List[int], int]] = [(cells, 0)]
    while stack:
        members, depth = stack.pop()
        if len(members) < min_block or depth >= max_depth:
            continue
        points.append((len(members), _block_terminals(hg, members)))
        member_set = set(members)
        fixed = {
            n.index: 1
            for n in hg.nodes
            if n.is_cell and n.index not in member_set
        }
        # Bisect only the block: everything else is pinned to side 1 and the
        # block's side-0 bound is half its size.
        half = len(members) // 2
        slack = max(1, len(members) // 20)
        outside_weight = sum(hg.nodes[i].clb_weight for i in fixed)
        config = FMConfig(
            seed=rng.randrange(1 << 30),
            side0_bounds=(half - slack, half + slack),
            fixed=fixed,
        )
        result = fm_bipartition(hg, config)
        left = [i for i in members if result.assignment[i] == 0]
        right = [i for i in members if result.assignment[i] == 1]
        if not left or not right:
            continue
        stack.append((left, depth + 1))
        stack.append((right, depth + 1))
    return points


def fit_rent(points: Sequence[Tuple[int, int]]) -> Optional[RentFit]:
    """Least-squares fit in log-log space; None when under-determined."""
    usable = [(b, t) for b, t in points if b > 1 and t > 0]
    if len(usable) < 3:
        return None
    xs = [math.log(b) for b, _ in usable]
    ys = [math.log(t) for _, t in usable]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        return None
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    p = sxy / sxx
    log_t = mean_y - p * mean_x
    return RentFit(
        exponent=p,
        coefficient=math.exp(log_t),
        points=tuple(usable),
    )


def rent_exponent(hg: Hypergraph, seed: int = 0) -> Optional[float]:
    """Convenience wrapper: estimated Rent exponent of a hypergraph."""
    fit = fit_rent(rent_points(hg, seed=seed))
    return fit.exponent if fit else None
