"""Gate-level netlist substrate.

This package implements the circuit layer underneath the partitioner:

* :mod:`repro.netlist.gates` -- primitive gate types and their logic.
* :mod:`repro.netlist.netlist` -- the :class:`Netlist` container.
* :mod:`repro.netlist.bench_io` -- ISCAS ``.bench`` reader/writer.
* :mod:`repro.netlist.blif_io` -- BLIF (subset) reader/writer.
* :mod:`repro.netlist.validate` -- structural legality checks.
* :mod:`repro.netlist.stats` -- circuit characteristics (Table II columns).
* :mod:`repro.netlist.generate` -- synthetic circuit generators.
* :mod:`repro.netlist.benchmarks` -- the nine named DAC'94 benchmark builders.
"""

from repro.netlist.gates import Gate, GateType
from repro.netlist.netlist import Netlist
from repro.netlist.bench_io import loads_bench, dumps_bench, load_bench, save_bench
from repro.netlist.blif_io import loads_blif, dumps_blif
from repro.netlist.validate import validate_netlist, NetlistError
from repro.netlist.stats import netlist_stats, NetlistStats
from repro.netlist.benchmarks import benchmark_circuit, BENCHMARK_NAMES
from repro.netlist.verilog_io import loads_verilog, dumps_verilog
from repro.netlist.transform import (
    clean_netlist,
    propagate_constants,
    remove_dead_logic,
    sweep_buffers,
)
from repro.netlist.rent import rent_exponent, rent_points, fit_rent

__all__ = [
    "loads_verilog",
    "dumps_verilog",
    "clean_netlist",
    "propagate_constants",
    "remove_dead_logic",
    "sweep_buffers",
    "rent_exponent",
    "rent_points",
    "fit_rent",
    "Gate",
    "GateType",
    "Netlist",
    "loads_bench",
    "dumps_bench",
    "load_bench",
    "save_bench",
    "loads_blif",
    "dumps_blif",
    "validate_netlist",
    "NetlistError",
    "netlist_stats",
    "NetlistStats",
    "benchmark_circuit",
    "BENCHMARK_NAMES",
]
