"""Structural netlist transformations.

Cleanup passes commonly needed before technology mapping when circuits
arrive from external tools: constant propagation, buffer/double-inverter
sweeping and dead-logic removal.  Every pass returns a *new* netlist and
preserves circuit function (property-tested by simulation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.netlist.gates import GateType, evaluate_gate
from repro.netlist.netlist import Netlist

#: Gate types whose output is constant when any input is at the controlling
#: value: (controlling value, output when controlled).
_CONTROLLING = {
    GateType.AND: (0, 0),
    GateType.NAND: (0, 1),
    GateType.OR: (1, 1),
    GateType.NOR: (1, 0),
}


def propagate_constants(netlist: Netlist) -> Netlist:
    """Fold CONST0/CONST1 drivers through the combinational logic.

    Gates whose value becomes known are replaced by constant gates; inputs
    at non-controlling values are dropped from symmetric gates.  DFFs stop
    propagation (a constant D input still toggles the Q at cycle 1), so
    sequential behaviour is untouched.
    """
    result = Netlist(netlist.name)
    const_value: Dict[str, int] = {}

    def value_of(net: str) -> Optional[int]:
        return const_value.get(net)

    for name in netlist.topological_order():
        gate = netlist.gate(name)
        if gate.gtype is GateType.INPUT:
            result.add_input(name)
            continue
        if gate.gtype is GateType.CONST0:
            const_value[name] = 0
            result.add_gate(name, GateType.CONST0)
            continue
        if gate.gtype is GateType.CONST1:
            const_value[name] = 1
            result.add_gate(name, GateType.CONST1)
            continue
        if gate.gtype is GateType.DFF:
            result.add_gate(name, GateType.DFF, list(gate.fanin))
            continue

        known = [value_of(f) for f in gate.fanin]
        if all(v is not None for v in known):
            out = evaluate_gate(gate.gtype, [v for v in known if v is not None])
            const_value[name] = out
            result.add_gate(
                name, GateType.CONST1 if out else GateType.CONST0
            )
            continue
        rule = _CONTROLLING.get(gate.gtype)
        if rule is not None:
            controlling, controlled_out = rule
            if any(v == controlling for v in known):
                const_value[name] = controlled_out
                result.add_gate(
                    name,
                    GateType.CONST1 if controlled_out else GateType.CONST0,
                )
                continue
            # Drop inputs stuck at the non-controlling value.
            live = [
                f for f, v in zip(gate.fanin, known) if v is None
            ]
            if len(live) == 1:
                if gate.gtype in (GateType.AND, GateType.OR):
                    result.add_gate(name, GateType.BUF, live)
                else:
                    result.add_gate(name, GateType.NOT, live)
                continue
            if live and len(live) < len(gate.fanin):
                result.add_gate(name, gate.gtype, live)
                continue
        if gate.gtype in (GateType.XOR, GateType.XNOR):
            live = [f for f, v in zip(gate.fanin, known) if v is None]
            ones = sum(v for v in known if v is not None)
            if live and len(live) < len(gate.fanin):
                flip = (ones % 2) == 1
                gtype = gate.gtype
                if flip:
                    gtype = (
                        GateType.XNOR if gtype is GateType.XOR else GateType.XOR
                    )
                if len(live) == 1:
                    result.add_gate(
                        name,
                        GateType.NOT if gtype is GateType.XNOR else GateType.BUF,
                        live,
                    )
                else:
                    result.add_gate(name, gtype, live)
                continue
        result.add_gate(name, gate.gtype, list(gate.fanin))
    for po in netlist.outputs:
        result.add_output(po)
    result.check()
    return result


def sweep_buffers(netlist: Netlist) -> Netlist:
    """Remove BUF gates and collapse NOT-NOT chains by rewiring readers.

    Primary-output buffers are kept when removing them would rename a PO
    net (the interface must not change).
    """
    alias: Dict[str, str] = {}
    po_set = set(netlist.outputs)

    def resolve(net: str) -> str:
        seen = set()
        while net in alias and net not in seen:
            seen.add(net)
            net = alias[net]
        return net

    for name in netlist.topological_order():
        gate = netlist.gate(name)
        if gate.gtype is GateType.BUF and name not in po_set:
            alias[name] = gate.fanin[0]
        elif gate.gtype is GateType.NOT and name not in po_set:
            src = resolve(gate.fanin[0])
            if src in netlist and netlist.gate(src).gtype is GateType.NOT:
                inner = resolve(netlist.gate(src).fanin[0])
                alias[name] = inner

    result = Netlist(netlist.name)
    for gate in netlist.gates():
        if gate.name in alias:
            continue
        if gate.gtype is GateType.INPUT:
            result.add_input(gate.name)
        else:
            result.add_gate(
                gate.name, gate.gtype, [resolve(f) for f in gate.fanin]
            )
    for po in netlist.outputs:
        result.add_output(resolve(po) if po not in result else po)
    result.check()
    return result


def remove_dead_logic(netlist: Netlist) -> Netlist:
    """Drop gates that no primary output or state element can observe."""
    live: Set[str] = set()
    stack: List[str] = list(netlist.outputs)
    # All state elements are observable (they define sequential behaviour).
    stack.extend(netlist.dffs)
    while stack:
        name = stack.pop()
        if name in live or name not in netlist:
            continue
        live.add(name)
        stack.extend(netlist.gate(name).fanin)
    result = Netlist(netlist.name)
    for gate in netlist.gates():
        if gate.name not in live and gate.gtype is not GateType.INPUT:
            continue
        if gate.gtype is GateType.INPUT:
            result.add_input(gate.name)
        else:
            result.add_gate(gate.name, gate.gtype, list(gate.fanin))
    for po in netlist.outputs:
        result.add_output(po)
    result.check()
    return result


def clean_netlist(netlist: Netlist) -> Netlist:
    """The standard pre-mapping pipeline: constants, buffers, dead logic."""
    return remove_dead_logic(sweep_buffers(propagate_constants(netlist)))
