"""Structured exception taxonomy for the whole reproduction.

Every failure the library can produce descends from :class:`ReproError`,
so callers can write ``except ReproError`` at the service boundary and
know that anything else escaping is a genuine bug.  The taxonomy further
distinguishes *retryable* failures (timeouts, rejected solutions, an
infeasible carve that a different seed may avoid) from *fatal* ones (a
malformed netlist, a nonsensical configuration), which is what
:class:`repro.robust.runner.ResilientRunner` keys its retry/degradation
decisions on.

Compatibility: the pre-existing ad-hoc exceptions were plain
``ValueError``/``RuntimeError``; every re-parented class below keeps the
old builtin as a base so existing ``except ValueError`` / ``except
RuntimeError`` call sites (and tests) continue to work unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class ReproError(Exception):
    """Base class of every structured error raised by this library."""


class ConfigError(ReproError, ValueError):
    """A configuration value is malformed or out of range.

    Fatal: retrying with another seed cannot fix a bad knob.  Subclasses
    ``ValueError`` because that is what the original validation raised.
    """


class InfeasibleError(ReproError, RuntimeError, ValueError):
    """The search cannot produce a feasible answer in its current setup.

    Raised e.g. when no device in the library can host a carve or the
    block limit is exceeded.  Retryable in the wide sense: a different
    seed, a relaxed carve bound, or a degraded engine may still succeed.
    Subclasses both ``RuntimeError`` and ``ValueError`` because the
    historical call sites raised either, depending on the module.
    """


class BudgetExceededError(ReproError):
    """Every attempt failed and the wall-clock budget is exhausted.

    Terminal: raised by :class:`~repro.robust.runner.ResilientRunner`
    only when no verified best-so-far solution exists to return instead.
    The runner attaches its :class:`~repro.robust.runner.RunLog` as
    ``log`` so post-mortems can see every attempt that was made.
    """

    def __init__(self, message: str, log: Optional[object] = None) -> None:
        super().__init__(message)
        self.log = log


class SolverTimeoutError(ReproError):
    """A wall-clock deadline expired inside a solver.

    Raised by :meth:`repro.robust.budget.Budget.check` at cooperative
    checkpoints when the budget was created with ``graceful=False``;
    graceful budgets make the solvers stop and return their best-so-far
    state instead.  Retryable: the remaining deadline may admit a
    cheaper attempt.
    """

    def __init__(self, message: str, elapsed: Optional[float] = None) -> None:
        super().__init__(message)
        self.elapsed = elapsed


class ParseError(ReproError, ValueError):
    """A netlist file is malformed, truncated or unsupported.

    Carries ``source`` (file name, when known) and ``lineno`` so error
    messages always localize the offending input.  Fatal: re-reading the
    same bytes cannot succeed.
    """

    def __init__(
        self,
        message: str,
        *,
        source: Optional[str] = None,
        lineno: Optional[int] = None,
    ) -> None:
        prefix = ""
        if source:
            prefix += f"{source}: "
        if lineno is not None:
            prefix += f"line {lineno}: "
        super().__init__(prefix + message)
        self.source = source
        self.lineno = lineno


class DeltaError(ReproError, ValueError):
    """An ECO netlist delta is malformed or cannot be applied.

    Raised by :mod:`repro.techmap.delta` when a delta document fails
    schema validation, targets an unknown cell, touches a fixed primary
    I/O terminal, or would leave the netlist structurally inconsistent
    (dangling readers, double drivers).  Fatal: re-applying the same
    delta to the same netlist cannot succeed.
    """


class VerificationError(ReproError):
    """An independently-checked solution violates its invariants.

    Carries the full ``violations`` list from
    :func:`repro.partition.verify.verify_solution`.  Retryable: the
    runner rejects the corrupt solution and re-runs with a new seed.
    """

    def __init__(self, violations: Sequence[str], circuit: str = "") -> None:
        head = f"solution for {circuit!r} " if circuit else "solution "
        super().__init__(
            head
            + f"failed verification with {len(violations)} violation(s); "
            + "; ".join(list(violations)[:3])
        )
        self.violations: List[str] = list(violations)
        self.circuit = circuit


#: Exception classes the runner treats as retryable with a new seed or a
#: degraded engine (anything else non-Repro is retried too, but logged as
#: an unclassified error).
RETRYABLE = (InfeasibleError, SolverTimeoutError, VerificationError)

#: Exception classes the runner refuses to retry: the input or the
#: configuration is wrong and no amount of re-running will change that.
FATAL = (ConfigError, ParseError, DeltaError)
