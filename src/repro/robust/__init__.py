"""Resilient solver orchestration: budgets, retries, degradation, faults.

This package wraps the partitioning entry points in budgeted,
fault-tolerant execution:

* :mod:`repro.robust.errors` -- the structured exception taxonomy
  (:class:`ReproError` and friends) every module of the library raises;
* :mod:`repro.robust.budget` -- wall-clock :class:`Budget` objects the
  solvers poll cooperatively;
* :mod:`repro.robust.runner` -- the :class:`ResilientRunner` that adds
  deadlines, retry with seed perturbation, a graceful-degradation
  cascade (``fm+functional -> fm+traditional -> fm``) and best-so-far
  checkpointing on top of the raw flows, recording every decision in a
  machine-readable :class:`RunLog`;
* :mod:`repro.robust.faults` -- a deterministic fault-injection harness
  used by the tests to prove every degradation path fires.

``errors``, ``budget`` and ``faults`` are import-light (the low-level
solvers import them), while ``runner`` pulls in the whole partitioning
stack -- it is therefore loaded lazily on first attribute access to keep
``repro.partition`` -> ``repro.robust`` imports cycle-free.
"""

from __future__ import annotations

from repro.robust.budget import Budget
from repro.robust.errors import (
    BudgetExceededError,
    ConfigError,
    InfeasibleError,
    ParseError,
    ReproError,
    SolverTimeoutError,
    VerificationError,
)
from repro.robust.faults import (
    Fault,
    FaultError,
    FaultPlan,
    export_spec,
    inject,
    install_spec,
    maybe_fire,
)

__all__ = [
    "Budget",
    "ReproError",
    "ConfigError",
    "InfeasibleError",
    "BudgetExceededError",
    "SolverTimeoutError",
    "ParseError",
    "VerificationError",
    "Fault",
    "FaultError",
    "FaultPlan",
    "export_spec",
    "inject",
    "install_spec",
    "maybe_fire",
    # lazily resolved from repro.robust.runner:
    "ResilientRunner",
    "RunnerConfig",
    "RunLog",
    "RunEvent",
    "KWayRunResult",
    "BipartitionRunResult",
]

_RUNNER_EXPORTS = {
    "ResilientRunner",
    "RunnerConfig",
    "RunLog",
    "RunEvent",
    "KWayRunResult",
    "BipartitionRunResult",
}


def __getattr__(name: str):
    if name in _RUNNER_EXPORTS:
        from repro.robust import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
