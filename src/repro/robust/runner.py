"""Budgeted, fault-tolerant orchestration of the partitioning flows.

:class:`ResilientRunner` turns the raw solvers into a restartable,
deadline-aware search, the way production partitioners treat their
engines:

* **deadlines** -- one overall wall-clock budget, split into
  exponentially sized per-attempt slices (early attempts are cheap
  probes, the final attempt on each rung gets everything left), each
  threaded into the solver as a graceful
  :class:`~repro.robust.budget.Budget` so a timed-out attempt still
  returns a structurally valid best-so-far solution;
* **retry with seed perturbation** -- every attempt derives a fresh
  seed, so a crash or a rejected solution is retried on a different
  random trajectory;
* **graceful degradation** -- on repeated failure the engine cascade
  steps down ``fm+functional -> fm+traditional -> fm`` while relaxing
  the carve bounds (extra low fill bands, more candidate devices);
* **best-so-far checkpointing** -- every verified solution is ranked
  and kept; when the budget runs out the best checkpoint is returned
  instead of raising.  Only when *no* verified solution exists does the
  runner raise :class:`~repro.robust.errors.BudgetExceededError`;
* **verification gate** -- each k-way solution is re-derived from first
  principles by :func:`repro.partition.verify.verify_solution`; corrupt
  solutions are rejected and retried.

Every decision is recorded in a machine-readable :class:`RunLog`.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.results import BipartitionReport
from repro.obs.metrics import get_registry
from repro.partition.devices import DeviceLibrary, XC3000_LIBRARY
from repro.partition.fm_replication import FUNCTIONAL, NONE, TRADITIONAL
from repro.partition.kway import KWayConfig, KWaySolution, partition_heterogeneous
from repro.robust.budget import Budget
from repro.robust.errors import (
    BudgetExceededError,
    ConfigError,
    FATAL,
    SolverTimeoutError,
    VerificationError,
)
from repro.techmap.mapped import MappedNetlist

#: Degradation cascade, strongest engine first (paper's contribution
#: down to the plain [15] baseline).
ENGINE_LADDER: Tuple[str, ...] = ("fm+functional", "fm+traditional", "fm")

_ENGINE_STYLE: Dict[str, str] = {
    "fm+functional": FUNCTIONAL,
    "fm+traditional": TRADITIONAL,
    "fm": NONE,
}

#: Cap on the exponential split: no attempt slice is smaller than
#: remaining / 2**_MAX_SPLIT_EXP.
_MAX_SPLIT_EXP = 4


def engine_cascade(engine: str, fallback: bool = True) -> List[str]:
    """The engines tried for a request starting at ``engine``."""
    if engine not in ENGINE_LADDER:
        raise ConfigError(
            f"unknown engine {engine!r}; expected one of {ENGINE_LADDER}"
        )
    if not fallback:
        return [engine]
    return list(ENGINE_LADDER[ENGINE_LADDER.index(engine):])


# ---------------------------------------------------------------------------
# Machine-readable run log
# ---------------------------------------------------------------------------


@dataclass
class RunEvent:
    """One orchestration decision or attempt outcome."""

    kind: str  # "attempt" | "degrade" | "relax" | "checkpoint" | "give-up"
    engine: str = ""
    attempt: int = -1
    seed: int = -1
    allotted: float = float("inf")  # seconds granted to the attempt
    elapsed: float = 0.0
    outcome: str = ""  # "ok" | "truncated" | "infeasible" | "timeout" | "error" | "rejected"
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "engine": self.engine,
            "attempt": self.attempt,
            "seed": self.seed,
            "allotted": None if math.isinf(self.allotted) else round(self.allotted, 6),
            "elapsed": round(self.elapsed, 6),
            "outcome": self.outcome,
            "detail": self.detail,
        }


@dataclass
class RunLog:
    """Ordered record of everything a resilient run decided and saw."""

    events: List[RunEvent] = field(default_factory=list)

    def record(self, event: RunEvent) -> RunEvent:
        self.events.append(event)
        reg = get_registry()
        if reg.enabled:
            # Mirror every orchestration decision into the observability
            # stream so traces line up with the runner's own log.
            reg.counter(f"runner.{event.kind}").inc()
            reg.emit_event(f"runner.{event.kind}", **event.as_dict())
        return event

    # -- queries used by callers and tests -----------------------------
    def attempts(self) -> List[RunEvent]:
        """All solver attempts, in order."""
        return [e for e in self.events if e.kind == "attempt"]

    def degradations(self) -> List[str]:
        """Engines stepped down to, in cascade order."""
        return [e.engine for e in self.events if e.kind == "degrade"]

    def outcomes(self) -> List[str]:
        return [e.outcome for e in self.attempts()]

    def as_dicts(self) -> List[Dict[str, object]]:
        """JSON-ready representation of the full log."""
        return [e.as_dict() for e in self.events]

    def summary(self) -> Dict[str, object]:
        attempts = self.attempts()
        return {
            "attempts": len(attempts),
            "ok": sum(1 for e in attempts if e.outcome in ("ok", "truncated", "infeasible")),
            "failed": sum(1 for e in attempts if e.outcome in ("timeout", "error", "rejected")),
            "degradations": self.degradations(),
        }

    def as_record(self) -> Dict[str, object]:
        """Ledger-ready view: the summary plus per-attempt outcomes.

        Stored under the (volatile) ``runner`` field of a run-ledger
        record -- orchestration behavior is timing-dependent (deadlines,
        retries), so it is excluded from quality-drift comparisons but
        kept for forensics.
        """
        return {
            "summary": self.summary(),
            "attempts": [
                {
                    "engine": e.engine,
                    "attempt": e.attempt,
                    "seed": e.seed,
                    "outcome": e.outcome,
                }
                for e in self.attempts()
            ],
        }


# ---------------------------------------------------------------------------
# Runner configuration and results
# ---------------------------------------------------------------------------


@dataclass
class RunnerConfig:
    """Knobs for :class:`ResilientRunner`.

    ``deadline`` is the overall wall-clock budget in seconds (``None`` =
    unlimited); ``attempt_timeout`` caps any single attempt on top of
    the exponential split; ``max_retries`` is the number of *extra*
    attempts per engine rung after the first; ``fallback`` enables the
    degradation cascade; ``verify`` gates every k-way solution through
    the independent checker; ``relax_carve`` loosens carve bounds as the
    cascade degrades.  ``clock`` is injectable for deterministic tests.
    """

    deadline: Optional[float] = None
    attempt_timeout: Optional[float] = None
    max_retries: int = 2
    fallback: bool = True
    verify: bool = True
    relax_carve: bool = True
    clock: Callable[[], float] = time.monotonic


@dataclass
class KWayRunResult:
    """Best verified k-way solution plus the full orchestration log."""

    solution: KWaySolution
    log: RunLog
    engine: str  # engine that produced the winning solution
    elapsed: float

    @property
    def degraded(self) -> bool:
        """True when the winning engine is weaker than the one requested."""
        return bool(self.log.degradations()) and self.engine != (
            self.log.attempts()[0].engine if self.log.attempts() else self.engine
        )


@dataclass
class BipartitionRunResult:
    """Bipartition report plus the orchestration log."""

    report: BipartitionReport
    log: RunLog
    engine: str
    elapsed: float


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


class ResilientRunner:
    """Deadline/retry/degradation wrapper over the partitioning flows.

    Construct with a :class:`RunnerConfig` or keyword shortcuts::

        runner = ResilientRunner(deadline=5.0, max_retries=2)
        result = runner.kway(mapped, threshold=1)
        result.solution, result.log
    """

    def __init__(self, config: Optional[RunnerConfig] = None, **overrides: object) -> None:
        if config is not None and overrides:
            raise ConfigError("pass either a RunnerConfig or keyword overrides")
        self.config = config or RunnerConfig(**overrides)  # type: ignore[arg-type]
        if self.config.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")

    # -- internals ------------------------------------------------------
    def _attempt_seconds(
        self, total: Budget, attempts_left: int
    ) -> Optional[float]:
        """Exponential budget split: probe cheap, spend big at the end."""
        remaining = total.remaining()
        if math.isinf(remaining):
            allot: Optional[float] = None
        elif attempts_left <= 1:
            allot = remaining
        else:
            allot = remaining / (2 ** min(attempts_left - 1, _MAX_SPLIT_EXP))
        cap = self.config.attempt_timeout
        if cap is not None:
            allot = cap if allot is None else min(allot, cap)
        return allot

    @staticmethod
    def _solution_key(sol: KWaySolution) -> Tuple:
        """Checkpoint ranking: complete beats truncated, feasible beats
        infeasible, then the paper's lexicographic objective."""
        return (sol.truncated, not sol.feasible) + sol.cost.objective_key()

    @staticmethod
    def _classify(exc: Exception) -> str:
        if isinstance(exc, SolverTimeoutError):
            return "timeout"
        if isinstance(exc, VerificationError):
            return "rejected"
        return "error"

    def _relaxed_kway(
        self, base: KWayConfig, rung: int
    ) -> KWayConfig:
        """Carve-bound relaxation applied as the cascade degrades."""
        if rung == 0 or not self.config.relax_carve:
            return base
        extra = (0.15,) if rung == 1 else (0.15, 0.10)
        return replace(
            base,
            carve_fill_levels=base.carve_fill_levels + extra,
            devices_per_carve=base.devices_per_carve + rung,
        )

    # -- k-way ----------------------------------------------------------
    def kway(
        self,
        mapped: MappedNetlist,
        threshold: float = 1,
        library: Optional[DeviceLibrary] = None,
        algorithm: str = "fm+functional",
        seed: int = 0,
        seeds_per_carve: int = 3,
        devices_per_carve: int = 3,
        max_passes: int = 12,
        jobs: int = 1,
        engine: Optional[str] = None,
        multilevel: Optional[bool] = None,
    ) -> KWayRunResult:
        """Resilient heterogeneous k-way partitioning.

        Returns the best verified solution found within the deadline (a
        truncated best-so-far one if the budget expired mid-search) and
        the :class:`RunLog`; raises
        :class:`~repro.robust.errors.BudgetExceededError` only when
        every attempt failed and no checkpoint exists.

        ``engine=`` is a deprecated alias of ``algorithm=``.
        """
        if engine is not None:
            warnings.warn(
                "ResilientRunner.kway(engine=...) is deprecated; "
                "use algorithm=...",
                DeprecationWarning,
                stacklevel=2,
            )
            algorithm = engine
        cfg = self.config
        total = Budget(cfg.deadline, clock=cfg.clock)
        log = RunLog()
        cascade = engine_cascade(algorithm, cfg.fallback)
        attempts_per_rung = 1 + cfg.max_retries
        planned = attempts_per_rung * len(cascade)
        done = 0

        best: Optional[KWaySolution] = None
        best_engine = ""
        library = library or XC3000_LIBRARY

        for rung, rung_engine in enumerate(cascade):
            if rung > 0:
                log.record(
                    RunEvent(
                        kind="degrade",
                        engine=rung_engine,
                        elapsed=total.elapsed(),
                        detail=f"stepping down from {cascade[rung - 1]}",
                    )
                )
                if cfg.relax_carve:
                    log.record(
                        RunEvent(
                            kind="relax",
                            engine=rung_engine,
                            elapsed=total.elapsed(),
                            detail="extending carve fill bands, widening device candidates",
                        )
                    )
            for attempt in range(attempts_per_rung):
                if total.expired and best is not None:
                    return self._kway_result(best, best_engine, log, total)
                allot = self._attempt_seconds(total, planned - done)
                done += 1
                run_seed = seed * 9973 + rung * 7919 + attempt * 104729 + 1
                attempt_budget = total.child(allot, graceful=True)
                kcfg = self._relaxed_kway(
                    KWayConfig(
                        library=library,
                        threshold=threshold,
                        style=_ENGINE_STYLE[rung_engine],
                        seed=run_seed,
                        seeds_per_carve=seeds_per_carve,
                        devices_per_carve=devices_per_carve,
                        max_passes=max_passes,
                        budget=attempt_budget,
                        jobs=jobs,
                        multilevel=multilevel,
                    ),
                    rung,
                )
                event = RunEvent(
                    kind="attempt",
                    engine=rung_engine,
                    attempt=done,
                    seed=run_seed,
                    allotted=float("inf") if allot is None else allot,
                )
                started = cfg.clock()
                try:
                    sol = partition_heterogeneous(mapped, kcfg)
                    if cfg.verify:
                        from repro.partition.verify import verify_solution

                        verify_solution(mapped, sol, raise_on_violation=True)
                except FATAL:
                    raise
                except Exception as exc:  # noqa: BLE001 - logged and retried
                    event.elapsed = cfg.clock() - started
                    event.outcome = self._classify(exc)
                    event.detail = f"{type(exc).__name__}: {exc}"
                    log.record(event)
                    continue
                event.elapsed = cfg.clock() - started
                if sol.truncated:
                    event.outcome = "truncated"
                elif not sol.feasible:
                    event.outcome = "infeasible"
                else:
                    event.outcome = "ok"
                log.record(event)

                if best is None or self._solution_key(sol) < self._solution_key(best):
                    best, best_engine = sol, rung_engine
                    log.record(
                        RunEvent(
                            kind="checkpoint",
                            engine=rung_engine,
                            seed=run_seed,
                            elapsed=total.elapsed(),
                            outcome=event.outcome,
                            detail=f"cost={sol.cost.total_cost:.0f} k={sol.k}",
                        )
                    )
                if event.outcome == "ok":
                    return self._kway_result(best, best_engine, log, total)

        if best is not None:
            return self._kway_result(best, best_engine, log, total)
        log.record(
            RunEvent(kind="give-up", elapsed=total.elapsed(), outcome="failed")
        )
        raise BudgetExceededError(
            f"all {done} attempt(s) across {len(cascade)} engine(s) failed "
            f"within {total.elapsed():.3f}s; no verified solution to return",
            log=log,
        )

    def _kway_result(
        self,
        best: KWaySolution,
        best_engine: str,
        log: RunLog,
        total: Budget,
    ) -> KWayRunResult:
        return KWayRunResult(
            solution=best, log=log, engine=best_engine, elapsed=total.elapsed()
        )

    # -- bipartition ----------------------------------------------------
    def bipartition(
        self,
        mapped: MappedNetlist,
        algorithm: str = "fm+functional",
        runs: int = 20,
        threshold: float = 0,
        seed: int = 0,
        balance_tolerance: float = 0.02,
        max_passes: int = 16,
        max_growth: Optional[float] = None,
        jobs: int = 1,
        engine: Optional[str] = None,
        multilevel: Optional[bool] = None,
    ) -> BipartitionRunResult:
        """Resilient experiment-1 bipartitioning.

        The budget is threaded into every inner FM run (a timed-out
        experiment reports the runs it completed); crashes are retried
        with perturbed seeds and degraded down the engine cascade.

        ``engine=`` is a deprecated alias of ``algorithm=``.
        """
        if engine is not None:
            warnings.warn(
                "ResilientRunner.bipartition(engine=...) is deprecated; "
                "use algorithm=...",
                DeprecationWarning,
                stacklevel=2,
            )
            algorithm = engine
        cfg = self.config
        total = Budget(cfg.deadline, clock=cfg.clock)
        log = RunLog()
        cascade = engine_cascade(algorithm, cfg.fallback)
        attempts_per_rung = 1 + cfg.max_retries
        planned = attempts_per_rung * len(cascade)
        done = 0

        from repro.core.flow import bipartition_experiment

        for rung, rung_engine in enumerate(cascade):
            if rung > 0:
                log.record(
                    RunEvent(
                        kind="degrade",
                        engine=rung_engine,
                        elapsed=total.elapsed(),
                        detail=f"stepping down from {cascade[rung - 1]}",
                    )
                )
            for attempt in range(attempts_per_rung):
                allot = self._attempt_seconds(total, planned - done)
                done += 1
                run_seed = seed * 9973 + rung * 7919 + attempt * 104729 + 1
                event = RunEvent(
                    kind="attempt",
                    engine=rung_engine,
                    attempt=done,
                    seed=run_seed,
                    allotted=float("inf") if allot is None else allot,
                )
                started = cfg.clock()
                try:
                    report = bipartition_experiment(
                        mapped,
                        algorithm=rung_engine,
                        runs=runs,
                        threshold=threshold,
                        seed=run_seed,
                        balance_tolerance=balance_tolerance,
                        max_passes=max_passes,
                        max_growth=max_growth,
                        budget=total.child(allot, graceful=True),
                        jobs=jobs,
                        multilevel=multilevel,
                    )
                except FATAL:
                    raise
                except Exception as exc:  # noqa: BLE001 - logged and retried
                    event.elapsed = cfg.clock() - started
                    event.outcome = self._classify(exc)
                    event.detail = f"{type(exc).__name__}: {exc}"
                    log.record(event)
                    continue
                event.elapsed = cfg.clock() - started
                event.outcome = "ok" if report.runs == runs else "truncated"
                event.detail = f"runs={report.runs} best_cut={report.best_cut}"
                log.record(event)
                return BipartitionRunResult(
                    report=report,
                    log=log,
                    engine=rung_engine,
                    elapsed=total.elapsed(),
                )

        log.record(
            RunEvent(kind="give-up", elapsed=total.elapsed(), outcome="failed")
        )
        raise BudgetExceededError(
            f"all {done} bipartition attempt(s) failed within "
            f"{total.elapsed():.3f}s",
            log=log,
        )
