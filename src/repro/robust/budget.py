"""Wall-clock budgets for cooperative solver deadlines.

A :class:`Budget` is a small monotonic-clock deadline object threaded
through ``FMConfig`` / ``ReplicationConfig`` / ``KWayConfig``.  The
solvers poll it at cheap checkpoints (between passes, every few hundred
moves inside a pass, at every carve of the k-way flow) and wind down
when it expires:

* **graceful** budgets (the default) make each solver stop refining and
  return its best state so far -- a timed-out k-way run still yields a
  structurally valid (possibly infeasible, ``truncated``) solution;
* **strict** budgets (``graceful=False``) make the k-way carve loop
  raise :class:`~repro.robust.errors.SolverTimeoutError` at the next
  checkpoint instead.

Budgets nest: :meth:`Budget.child` returns a sub-budget clamped to the
parent's deadline, which is how the
:class:`~repro.robust.runner.ResilientRunner` splits one overall
deadline into exponentially sized per-attempt slices.  The clock is
injectable for deterministic tests.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.robust.errors import ConfigError, SolverTimeoutError


class Budget:
    """A wall-clock deadline with cooperative check points.

    ``seconds=None`` means unlimited: :attr:`expired` is always False
    and :meth:`remaining` returns ``inf``, so threading a default budget
    through a solver changes nothing.
    """

    __slots__ = ("_clock", "start", "seconds", "deadline", "graceful")

    def __init__(
        self,
        seconds: Optional[float] = None,
        *,
        graceful: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ConfigError("budget seconds must be non-negative")
        self._clock = clock
        self.start = clock()
        self.seconds = seconds
        self.deadline = None if seconds is None else self.start + seconds
        self.graceful = graceful

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget that never expires (the default everywhere)."""
        return cls(None)

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._clock() - self.start

    def remaining(self) -> float:
        """Seconds left before expiry (``inf`` when unlimited, >= 0)."""
        if self.deadline is None:
            return float("inf")
        return max(0.0, self.deadline - self._clock())

    @property
    def expired(self) -> bool:
        """True once the deadline has passed."""
        return self.deadline is not None and self._clock() >= self.deadline

    def check(self, where: str = "solver") -> None:
        """Raise :class:`SolverTimeoutError` if expired and not graceful.

        Graceful budgets never raise here; callers are expected to test
        :attr:`expired` and wind down on their own.
        """
        if not self.graceful and self.expired:
            raise SolverTimeoutError(
                f"deadline of {self.seconds:.3f}s expired in {where} "
                f"after {self.elapsed():.3f}s",
                elapsed=self.elapsed(),
            )

    def share(self, n: int) -> Optional[float]:
        """An even ``1/n`` split of the remaining time, in seconds.

        Returns ``None`` when the budget is unlimited.  The batch
        scheduler (:mod:`repro.batch.scheduler`) uses this as the fair
        per-job wait slice while collecting outstanding jobs, so one
        stuck job cannot silently consume every other job's share of a
        global deadline.
        """
        if n <= 0:
            raise ConfigError("share() needs a positive job count")
        if self.deadline is None:
            return None
        return self.remaining() / n

    # ------------------------------------------------------------------
    def child(
        self, seconds: Optional[float] = None, *, graceful: bool = True
    ) -> "Budget":
        """A sub-budget clamped to this budget's own deadline.

        ``seconds=None`` inherits the parent's remaining time exactly.
        The child shares the parent's clock, so fake clocks in tests
        govern the whole tree.
        """
        remaining = self.remaining()
        if seconds is None:
            allot = None if remaining == float("inf") else remaining
        else:
            allot = seconds if remaining == float("inf") else min(seconds, remaining)
        return Budget(allot, graceful=graceful, clock=self._clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.deadline is None:
            return "Budget(unlimited)"
        return (
            f"Budget({self.seconds:.3f}s, remaining={self.remaining():.3f}s, "
            f"graceful={self.graceful})"
        )
