"""Wall-clock budgets for cooperative solver deadlines.

A :class:`Budget` is a small monotonic-clock deadline object threaded
through ``FMConfig`` / ``ReplicationConfig`` / ``KWayConfig``.  The
solvers poll it at cheap checkpoints (between passes, every few hundred
moves inside a pass, at every carve of the k-way flow) and wind down
when it expires:

* **graceful** budgets (the default) make each solver stop refining and
  return its best state so far -- a timed-out k-way run still yields a
  structurally valid (possibly infeasible, ``truncated``) solution;
* **strict** budgets (``graceful=False``) make the k-way carve loop
  raise :class:`~repro.robust.errors.SolverTimeoutError` at the next
  checkpoint instead.

Budgets nest: :meth:`Budget.child` returns a sub-budget clamped to the
parent's deadline, which is how the
:class:`~repro.robust.runner.ResilientRunner` splits one overall
deadline into exponentially sized per-attempt slices.  The clock is
injectable for deterministic tests.

Cancellation rides the same checkpoints: a :class:`CancelFlag`
installed process-wide (:func:`cancel_scope`) makes *every* budget
report :attr:`Budget.expired` as soon as the flag's sentinel file
appears.  The job service uses this to reach into a pool worker mid
solve -- ``DELETE`` on a running job touches the sentinel and the
worker's graceful wind-down frees the slot at its next checkpoint
instead of running to its deadline.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from repro.robust.errors import ConfigError, SolverTimeoutError


class CancelFlag:
    """A poll-cheap, cross-process cancellation token (a sentinel file).

    The requesting side (the service) calls :meth:`set` -- creating the
    file -- from *its* process; the solving side polls :meth:`is_set`
    from the pool worker.  Polls are throttled (one ``os.path.exists``
    per ``poll_seconds``, and none at all once the flag has latched), so
    wiring the probe into :attr:`Budget.expired` adds nothing
    measurable to solver hot paths.
    """

    __slots__ = ("path", "poll_seconds", "_latched", "_next_poll", "_clock")

    def __init__(
        self,
        path: str,
        poll_seconds: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = path
        self.poll_seconds = poll_seconds
        self._latched = False
        self._next_poll = 0.0
        self._clock = clock

    def set(self) -> None:
        """Raise the flag (idempotent): create the sentinel file."""
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        with open(self.path, "a", encoding="utf-8"):
            pass

    def clear(self) -> None:
        """Remove the sentinel (used by tests and job cleanup)."""
        try:
            os.remove(self.path)
        except OSError:
            pass
        self._latched = False
        self._next_poll = 0.0

    def is_set(self) -> bool:
        """Whether the flag is raised; latches once observed."""
        if self._latched:
            return True
        now = self._clock()
        if now < self._next_poll:
            return False
        self._next_poll = now + self.poll_seconds
        if os.path.exists(self.path):
            self._latched = True
        return self._latched


#: The process-wide cancellation flag solvers observe through
#: :attr:`Budget.expired`; ``None`` means cancellation is not wired up.
_CANCEL: Optional[CancelFlag] = None


def set_cancel_flag(flag: Optional[CancelFlag]) -> Optional[CancelFlag]:
    """Install ``flag`` process-wide (``None`` removes it again)."""
    global _CANCEL
    _CANCEL = flag
    return _CANCEL


def cancelled() -> bool:
    """Whether the installed process-wide flag (if any) is raised."""
    return _CANCEL is not None and _CANCEL.is_set()


def ambient_budget() -> Optional["Budget"]:
    """An unlimited budget when cancellation is wired up, else ``None``.

    Deadline-less solves normally run with no budget at all, which would
    leave them blind to an installed :class:`CancelFlag` (solvers only
    poll budgets they are given).  Callers that want such solves to stay
    cancellable thread ``budget=ambient_budget()`` instead of ``None``:
    the unlimited budget never expires on its own but reports
    :attr:`Budget.expired` the moment the flag is raised.
    """
    return None if _CANCEL is None else Budget(None)


class cancel_scope:
    """Scoped :func:`set_cancel_flag`: restores the previous flag on exit.

    A plain class-based context manager (not ``@contextmanager``) so the
    pool worker can keep one instance per task with zero generator
    overhead.
    """

    __slots__ = ("_flag", "_previous")

    def __init__(self, flag: Optional[CancelFlag]) -> None:
        self._flag = flag
        self._previous: Optional[CancelFlag] = None

    def __enter__(self) -> Optional[CancelFlag]:
        global _CANCEL
        self._previous = _CANCEL
        _CANCEL = self._flag
        return self._flag

    def __exit__(self, *exc_info: object) -> None:
        global _CANCEL
        _CANCEL = self._previous


class Budget:
    """A wall-clock deadline with cooperative check points.

    ``seconds=None`` means unlimited: :attr:`expired` is always False
    and :meth:`remaining` returns ``inf``, so threading a default budget
    through a solver changes nothing.
    """

    __slots__ = ("_clock", "start", "seconds", "deadline", "graceful")

    def __init__(
        self,
        seconds: Optional[float] = None,
        *,
        graceful: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ConfigError("budget seconds must be non-negative")
        self._clock = clock
        self.start = clock()
        self.seconds = seconds
        self.deadline = None if seconds is None else self.start + seconds
        self.graceful = graceful

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget that never expires (the default everywhere)."""
        return cls(None)

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._clock() - self.start

    def remaining(self) -> float:
        """Seconds left before expiry (``inf`` when unlimited, >= 0)."""
        if self.deadline is None:
            return float("inf")
        return max(0.0, self.deadline - self._clock())

    @property
    def expired(self) -> bool:
        """True once the deadline has passed *or* the job is cancelled.

        Cancellation (see :class:`CancelFlag`) deliberately reuses the
        deadline machinery: every solver already winds down gracefully
        when its budget expires, so raising the process-wide flag stops
        a running solve at its next checkpoint with no new code in any
        solver.
        """
        if _CANCEL is not None and _CANCEL.is_set():
            return True
        return self.deadline is not None and self._clock() >= self.deadline

    def check(self, where: str = "solver") -> None:
        """Raise :class:`SolverTimeoutError` if expired and not graceful.

        Graceful budgets never raise here; callers are expected to test
        :attr:`expired` and wind down on their own.
        """
        if not self.graceful and self.expired:
            what = (
                "cancellation"
                if self.seconds is None
                else f"deadline of {self.seconds:.3f}s"
            )
            raise SolverTimeoutError(
                f"{what} expired in {where} after {self.elapsed():.3f}s",
                elapsed=self.elapsed(),
            )

    def share(self, n: int) -> Optional[float]:
        """An even ``1/n`` split of the remaining time, in seconds.

        Returns ``None`` when the budget is unlimited.  The batch
        scheduler (:mod:`repro.batch.scheduler`) uses this as the fair
        per-job wait slice while collecting outstanding jobs, so one
        stuck job cannot silently consume every other job's share of a
        global deadline.
        """
        if n <= 0:
            raise ConfigError("share() needs a positive job count")
        if self.deadline is None:
            return None
        return self.remaining() / n

    # ------------------------------------------------------------------
    def child(
        self, seconds: Optional[float] = None, *, graceful: bool = True
    ) -> "Budget":
        """A sub-budget clamped to this budget's own deadline.

        ``seconds=None`` inherits the parent's remaining time exactly.
        The child shares the parent's clock, so fake clocks in tests
        govern the whole tree.
        """
        remaining = self.remaining()
        if seconds is None:
            allot = None if remaining == float("inf") else remaining
        else:
            allot = seconds if remaining == float("inf") else min(seconds, remaining)
        return Budget(allot, graceful=graceful, clock=self._clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.deadline is None:
            return "Budget(unlimited)"
        return (
            f"Budget({self.seconds:.3f}s, remaining={self.remaining():.3f}s, "
            f"graceful={self.graceful})"
        )
