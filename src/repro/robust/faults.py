"""Deterministic fault injection for the solver stack.

The resilience machinery (retry, degradation, best-so-far checkpoints)
is worthless unless every path is provably exercised, so the solvers
expose named *fault sites* -- :func:`maybe_fire` calls that are no-ops
in production (an empty-list check) but consult the active
:class:`FaultPlan` under test:

``kway.carve``
    start of every carve iteration of
    :func:`repro.partition.kway.partition_heterogeneous`
    (context: ``index``, ``style``);
``engine.run``
    start of every :meth:`repro.partition.fm_replication.ReplicationEngine.run`
    (context: ``style``);
``fm.run``
    start of every :func:`repro.partition.fm.fm_bipartition` run;
``store.partial_write``
    inside :meth:`repro.cache.store.SolutionCache.put`, after the
    temporary sibling is written but *before* the atomic rename -- an
    injected error simulates a torn write (the stray ``.tmp`` file is
    left behind, the entry never lands) (context: ``key``);
``node.crash``
    start of every :meth:`repro.cluster.node.SolveNode.run_job` -- the
    canonical node-kill drill site (context: ``node``, ``job``);
``rpc.timeout``
    around every per-node store operation of
    :class:`repro.cluster.store.ReplicatedCache` (context: ``node``,
    ``op``).

A :class:`Fault` matches a site (plus optional context filters), skips
the first ``after`` matching calls, then fires up to ``times`` times --
raising a configured exception, sleeping ``delay`` seconds to simulate
a stuck pass, and/or (``exit_code``) terminating the whole process with
``os._exit`` to simulate a hard worker death.  Everything is
counter-based, so a given plan replays identically on every run.

Process-pool workers inherit the active plans: every pool in
:mod:`repro.perf.parallel` captures :func:`export_spec` at dispatch and
replays it through :func:`install_spec` in the worker initializer, so an
injected fault fires in children too.  Each worker rebuilds a *fresh*
plan -- hit/fire counters are per-process, which is what keeps replays
deterministic regardless of how jobs land on workers.

Usage::

    from repro.robust import faults

    with faults.inject(
        faults.Fault("engine.run", error=RuntimeError("boom"),
                     match={"style": "functional"}, times=1),
    ):
        ...  # first functional-replication engine run raises
"""

from __future__ import annotations

import importlib
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.robust.errors import ReproError


class FaultError(ReproError, RuntimeError):
    """Default exception raised by an injected fault."""


class Fault:
    """One deterministic fault: where, when and how to fire."""

    def __init__(
        self,
        site: str,
        *,
        error: Optional[Union[BaseException, type]] = None,
        delay: float = 0.0,
        match: Optional[Dict[str, object]] = None,
        after: int = 0,
        times: Optional[int] = None,
        exit_code: Optional[int] = None,
    ) -> None:
        if error is None and delay <= 0.0 and exit_code is None:
            raise ValueError("a fault needs an error, a delay, or an exit_code")
        self.site = site
        self.error = error
        self.delay = delay
        self.match = dict(match or {})
        self.after = after
        self.times = times
        self.exit_code = exit_code
        self.hits = 0  # matching calls seen
        self.fires = 0  # times actually fired

    def _matches(self, site: str, ctx: Dict[str, object]) -> bool:
        if site != self.site:
            return False
        return all(ctx.get(key) == value for key, value in self.match.items())

    def _make_error(self) -> BaseException:
        if isinstance(self.error, BaseException):
            return self.error
        assert self.error is not None
        return self.error(f"injected fault at {self.site!r} (hit {self.hits})")

    def fire(self, site: str, ctx: Dict[str, object]) -> None:
        """Fire if this call matches; raises the configured error."""
        if not self._matches(site, ctx):
            return
        self.hits += 1
        if self.hits - 1 < self.after:
            return
        if self.times is not None and self.fires >= self.times:
            return
        self.fires += 1
        if self.delay > 0.0:
            time.sleep(self.delay)
        if self.exit_code is not None:
            # A hard kill: no cleanup, no exception propagation -- exactly
            # what a SIGKILLed pool worker looks like from the parent.
            os._exit(self.exit_code)
        if self.error is not None:
            raise self._make_error()

    # -- spec (de)serialization ----------------------------------------
    def spec(self) -> Dict[str, Any]:
        """A picklable/JSON-able description of this fault.

        The configured error travels as its class path (an error
        *instance* degrades to its class -- the worker regenerates the
        message); counters do not travel, so a rebuilt fault starts
        fresh.
        """
        error = self.error
        if isinstance(error, BaseException):
            error = type(error)
        return {
            "site": self.site,
            "error": f"{error.__module__}:{error.__qualname__}"
            if error is not None
            else None,
            "delay": self.delay,
            "match": dict(self.match),
            "after": self.after,
            "times": self.times,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "Fault":
        """Rebuild a fault from :meth:`spec` (fresh counters)."""
        error: Optional[type] = None
        if spec.get("error"):
            module, _, qualname = spec["error"].partition(":")
            obj: Any = importlib.import_module(module)
            for part in qualname.split("."):
                obj = getattr(obj, part)
            error = obj
        return cls(
            spec["site"],
            error=error,
            delay=spec.get("delay", 0.0),
            match=spec.get("match"),
            after=spec.get("after", 0),
            times=spec.get("times"),
            exit_code=spec.get("exit_code"),
        )


class FaultPlan:
    """An ordered collection of faults active for one ``inject`` scope."""

    def __init__(self, *faults: Fault) -> None:
        self.faults: List[Fault] = list(faults)

    def fire(self, site: str, ctx: Dict[str, object]) -> None:
        for fault in self.faults:
            fault.fire(site, ctx)

    def total_fires(self) -> int:
        """How many faults actually fired (for test assertions)."""
        return sum(fault.fires for fault in self.faults)


#: Active plans (a stack, so scopes nest).  Empty in production: the
#: :func:`maybe_fire` fast path is a single falsy check.
_ACTIVE: List[FaultPlan] = []


def maybe_fire(site: str, **ctx: object) -> None:
    """Fault-site hook called by the solvers; no-op unless injecting."""
    if not _ACTIVE:
        return
    for plan in list(_ACTIVE):
        plan.fire(site, ctx)


@contextmanager
def inject(*faults: Union[Fault, FaultPlan]) -> Iterator[FaultPlan]:
    """Activate a fault plan for the dynamic extent of the block."""
    if len(faults) == 1 and isinstance(faults[0], FaultPlan):
        plan = faults[0]
    else:
        flat: List[Fault] = []
        for item in faults:
            if isinstance(item, FaultPlan):
                flat.extend(item.faults)
            else:
                flat.append(item)
        plan = FaultPlan(*flat)
    _ACTIVE.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE.remove(plan)


def active() -> bool:
    """True when at least one fault plan is installed (test helper)."""
    return bool(_ACTIVE)


def export_spec() -> List[Dict[str, Any]]:
    """Every active fault as a picklable spec (for worker initializers).

    Empty when nothing is injected -- the common case, in which workers
    pay nothing.  The process pools of :mod:`repro.perf.parallel` capture
    this at dispatch so plans injected in the parent also fire in
    children.
    """
    return [fault.spec() for plan in _ACTIVE for fault in plan.faults]


def install_spec(spec: Optional[List[Dict[str, Any]]]) -> Optional[FaultPlan]:
    """Install a fresh plan rebuilt from :func:`export_spec` output.

    Meant for worker *initializers*: the plan stays active for the
    worker's lifetime (workers die with their pool, so no scope exit
    exists to pop it).  Returns the installed plan, or ``None`` for an
    empty/absent spec.
    """
    if not spec:
        return None
    plan = FaultPlan(*(Fault.from_spec(s) for s in spec))
    _ACTIVE.append(plan)
    return plan
