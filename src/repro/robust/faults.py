"""Deterministic fault injection for the solver stack.

The resilience machinery (retry, degradation, best-so-far checkpoints)
is worthless unless every path is provably exercised, so the solvers
expose named *fault sites* -- :func:`maybe_fire` calls that are no-ops
in production (an empty-list check) but consult the active
:class:`FaultPlan` under test:

``kway.carve``
    start of every carve iteration of
    :func:`repro.partition.kway.partition_heterogeneous`
    (context: ``index``, ``style``);
``engine.run``
    start of every :meth:`repro.partition.fm_replication.ReplicationEngine.run`
    (context: ``style``);
``fm.run``
    start of every :func:`repro.partition.fm.fm_bipartition` run.

A :class:`Fault` matches a site (plus optional context filters), skips
the first ``after`` matching calls, then fires up to ``times`` times --
raising a configured exception and/or sleeping ``delay`` seconds to
simulate a stuck pass.  Everything is counter-based, so a given plan
replays identically on every run.

Usage::

    from repro.robust import faults

    with faults.inject(
        faults.Fault("engine.run", error=RuntimeError("boom"),
                     match={"style": "functional"}, times=1),
    ):
        ...  # first functional-replication engine run raises
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from repro.robust.errors import ReproError


class FaultError(ReproError, RuntimeError):
    """Default exception raised by an injected fault."""


class Fault:
    """One deterministic fault: where, when and how to fire."""

    def __init__(
        self,
        site: str,
        *,
        error: Optional[Union[BaseException, type]] = None,
        delay: float = 0.0,
        match: Optional[Dict[str, object]] = None,
        after: int = 0,
        times: Optional[int] = None,
    ) -> None:
        if error is None and delay <= 0.0:
            raise ValueError("a fault needs an error, a delay, or both")
        self.site = site
        self.error = error
        self.delay = delay
        self.match = dict(match or {})
        self.after = after
        self.times = times
        self.hits = 0  # matching calls seen
        self.fires = 0  # times actually fired

    def _matches(self, site: str, ctx: Dict[str, object]) -> bool:
        if site != self.site:
            return False
        return all(ctx.get(key) == value for key, value in self.match.items())

    def _make_error(self) -> BaseException:
        if isinstance(self.error, BaseException):
            return self.error
        assert self.error is not None
        return self.error(f"injected fault at {self.site!r} (hit {self.hits})")

    def fire(self, site: str, ctx: Dict[str, object]) -> None:
        """Fire if this call matches; raises the configured error."""
        if not self._matches(site, ctx):
            return
        self.hits += 1
        if self.hits - 1 < self.after:
            return
        if self.times is not None and self.fires >= self.times:
            return
        self.fires += 1
        if self.delay > 0.0:
            time.sleep(self.delay)
        if self.error is not None:
            raise self._make_error()


class FaultPlan:
    """An ordered collection of faults active for one ``inject`` scope."""

    def __init__(self, *faults: Fault) -> None:
        self.faults: List[Fault] = list(faults)

    def fire(self, site: str, ctx: Dict[str, object]) -> None:
        for fault in self.faults:
            fault.fire(site, ctx)

    def total_fires(self) -> int:
        """How many faults actually fired (for test assertions)."""
        return sum(fault.fires for fault in self.faults)


#: Active plans (a stack, so scopes nest).  Empty in production: the
#: :func:`maybe_fire` fast path is a single falsy check.
_ACTIVE: List[FaultPlan] = []


def maybe_fire(site: str, **ctx: object) -> None:
    """Fault-site hook called by the solvers; no-op unless injecting."""
    if not _ACTIVE:
        return
    for plan in list(_ACTIVE):
        plan.fire(site, ctx)


@contextmanager
def inject(*faults: Union[Fault, FaultPlan]) -> Iterator[FaultPlan]:
    """Activate a fault plan for the dynamic extent of the block."""
    if len(faults) == 1 and isinstance(faults[0], FaultPlan):
        plan = faults[0]
    else:
        flat: List[Fault] = []
        for item in faults:
            if isinstance(item, FaultPlan):
                flat.extend(item.faults)
            else:
                flat.append(item)
        plan = FaultPlan(*flat)
    _ACTIVE.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE.remove(plan)


def active() -> bool:
    """True when at least one fault plan is installed (test helper)."""
    return bool(_ACTIVE)
