"""Compact CSR (compressed sparse row) hypergraph representation.

The object-graph :class:`~repro.hypergraph.hypergraph.Hypergraph` is
convenient to build and inspect but slow to traverse: the partitioning
inner loops spend most of their time walking node→net and net→node
incidence.  :class:`CompactHypergraph` flattens both directions into int
arrays once, after which every traversal is a contiguous slice:

* ``node_net_start[v] : node_net_start[v + 1]`` indexes the *distinct*
  nets of node ``v`` in ``node_nets`` with the per-net pin count in
  ``node_net_counts`` (a node may contribute several pins to one net,
  e.g. a CLB output feeding back into its own input);
* ``net_node_start[e] : net_node_start[e + 1]`` indexes the distinct
  nodes of net ``e`` in ``net_nodes`` with the matching pin counts in
  ``net_node_counts``;
* ``net_maxk[e]`` is the largest per-node pin count on net ``e`` -- the
  "critical window" bound used by the FM engines to skip gain updates on
  nets whose side counts are too large to matter.

Orderings are load-bearing: ``node_nets`` lists nets in first-occurrence
order over the node's input pins then output pins, and ``net_nodes``
lists nodes in ascending node index.  These match the traversal orders of
the pre-optimization engines exactly, which is what lets the CSR-based
engines reproduce their results bit for bit.

A ``CompactHypergraph`` is immutable by convention and safe to share:
the k-way carver builds one per carve level and hands the same instance
to every candidate FM run at that level.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hypergraph.hypergraph import Hypergraph


class CompactHypergraph:
    """Flat-array view of a :class:`Hypergraph`, built once, shared read-only."""

    __slots__ = (
        "n_nodes",
        "n_nets",
        "node_net_start",
        "node_nets",
        "node_net_counts",
        "net_node_start",
        "net_nodes",
        "net_node_counts",
        "net_maxk",
        "weights",
        "is_cell",
        "max_degree",
    )

    def __init__(
        self,
        n_nodes: int,
        n_nets: int,
        node_net_start: List[int],
        node_nets: List[int],
        node_net_counts: List[int],
        net_node_start: List[int],
        net_nodes: List[int],
        net_node_counts: List[int],
        net_maxk: List[int],
        weights: List[int],
        is_cell: List[bool],
    ) -> None:
        self.n_nodes = n_nodes
        self.n_nets = n_nets
        self.node_net_start = node_net_start
        self.node_nets = node_nets
        self.node_net_counts = node_net_counts
        self.net_node_start = net_node_start
        self.net_nodes = net_nodes
        self.net_node_counts = net_node_counts
        self.net_maxk = net_maxk
        self.weights = weights
        self.is_cell = is_cell
        self.max_degree = max(
            (node_net_start[v + 1] - node_net_start[v] for v in range(n_nodes)),
            default=0,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_hypergraph(cls, hg: Hypergraph) -> "CompactHypergraph":
        n_nodes = len(hg.nodes)
        n_nets = len(hg.nets)

        node_net_start = [0] * (n_nodes + 1)
        node_nets: List[int] = []
        node_net_counts: List[int] = []
        net_maxk = [0] * n_nets
        net_degree = [0] * n_nets

        for v, node in enumerate(hg.nodes):
            counts: Dict[int, int] = {}
            for net in node.input_nets:
                counts[net] = counts.get(net, 0) + 1
            for net in node.output_nets:
                counts[net] = counts.get(net, 0) + 1
            for net, k in counts.items():
                node_nets.append(net)
                node_net_counts.append(k)
                net_degree[net] += 1
                if k > net_maxk[net]:
                    net_maxk[net] = k
            node_net_start[v + 1] = len(node_nets)

        # Transpose into net→node CSR, preserving ascending node order.
        net_node_start = [0] * (n_nets + 1)
        acc = 0
        for e in range(n_nets):
            net_node_start[e] = acc
            acc += net_degree[e]
        net_node_start[n_nets] = acc
        net_nodes = [0] * acc
        net_node_counts = [0] * acc
        cursor = list(net_node_start[:n_nets])
        for v in range(n_nodes):
            for i in range(node_net_start[v], node_net_start[v + 1]):
                e = node_nets[i]
                j = cursor[e]
                net_nodes[j] = v
                net_node_counts[j] = node_net_counts[i]
                cursor[e] = j + 1

        weights = [node.clb_weight for node in hg.nodes]
        is_cell = [node.is_cell for node in hg.nodes]
        return cls(
            n_nodes,
            n_nets,
            node_net_start,
            node_nets,
            node_net_counts,
            net_node_start,
            net_nodes,
            net_node_counts,
            net_maxk,
            weights,
            is_cell,
        )

    # ------------------------------------------------------------------
    # Convenience views (tests / debugging; not used on hot paths)
    # ------------------------------------------------------------------
    def node_pin_pairs(self, v: int) -> List[Tuple[int, int]]:
        """Distinct ``(net, pin count)`` pairs of node ``v``."""
        lo, hi = self.node_net_start[v], self.node_net_start[v + 1]
        return list(zip(self.node_nets[lo:hi], self.node_net_counts[lo:hi]))

    def net_members(self, e: int) -> List[Tuple[int, int]]:
        """Distinct ``(node, pin count)`` pairs of net ``e``."""
        lo, hi = self.net_node_start[e], self.net_node_start[e + 1]
        return list(zip(self.net_nodes[lo:hi], self.net_node_counts[lo:hi]))

    def total_pins(self) -> int:
        return sum(self.node_net_counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompactHypergraph({self.n_nodes} nodes, {self.n_nets} nets, "
            f"{len(self.node_nets)} incidences)"
        )
