"""Hypergraph construction from a mapped netlist."""

from __future__ import annotations

from typing import Dict

from repro.hypergraph.hypergraph import Hypergraph, NodeKind
from repro.techmap.mapped import MappedNetlist


def build_hypergraph(
    mapped: MappedNetlist, include_terminals: bool = True
) -> Hypergraph:
    """Build the paper's H = ({X; Y}, E) from a :class:`MappedNetlist`.

    Parameters
    ----------
    mapped:
        The technology-mapped circuit.
    include_terminals:
        With ``False``, primary I/O pads are left out of the hypergraph
        (the "completely relaxed terminal constraints" setting of the
        paper's first experiment); nets then connect cells only, and nets
        left with fewer than two pins are dropped.

    Net naming follows the mapped netlist's net names; node names are cell
    names and ``pi:<net>`` / ``po:<net>`` for terminals.
    """
    hg = Hypergraph(mapped.name)
    nets = mapped.nets()

    net_nodes: Dict[str, object] = {}
    for net_name in nets:
        net_nodes[net_name] = hg.add_net(net_name)

    # Cells with their pins.  Input pin order mirrors cell.inputs so that
    # supports translate directly to pin indices.
    for cell in mapped.cells:
        node = hg.add_node(cell.name, NodeKind.CELL)
        input_pin_of: Dict[str, int] = {}
        for net_name in cell.inputs:
            if net_name not in net_nodes:
                continue  # input tied to a dead net (cannot happen post-validate)
            pin = hg.connect_input(node, net_nodes[net_name])
            input_pin_of[net_name] = pin
        for oi, net_name in enumerate(cell.outputs):
            if net_name in net_nodes:
                hg.connect_output(node, net_nodes[net_name])
            else:
                # Dead output (no readers, not a PO): give it a private net so
                # the node keeps its pin structure.
                net = hg.add_net(f"__dead:{net_name}")
                net_nodes[net_name] = net
                hg.connect_output(node, net)
            node.supports.append(
                tuple(
                    input_pin_of[s]
                    for s in cell.supports[oi]
                    if s in input_pin_of
                )
            )

    if include_terminals:
        for pi_name in mapped.primary_inputs:
            if pi_name not in net_nodes:
                continue  # unused input pad: no net to drive
            node = hg.add_node(f"pi:{pi_name}", NodeKind.PI)
            hg.connect_output(node, net_nodes[pi_name])
        for po_name in mapped.primary_outputs:
            node = hg.add_node(f"po:{po_name}", NodeKind.PO)
            hg.connect_input(node, net_nodes[po_name])
    else:
        # PI-driven nets need a driver pin for net legality; model the pad as
        # a zero-weight PI node only when the net has cell readers.  Without
        # terminals we instead drop driverless nets entirely by rebuilding.
        pruned = Hypergraph(mapped.name)
        keep = {}
        for net in hg.nets:
            cell_pins = [p for p in net.pins if hg.nodes[p[0]].is_cell]
            if len(cell_pins) >= 2:
                keep[net.index] = pruned.add_net(net.name)
        index_map: Dict[int, int] = {}
        for node in hg.nodes:
            if not node.is_cell:
                continue
            new_node = pruned.add_node(node.name, NodeKind.CELL)
            index_map[node.index] = new_node.index
            old_to_new_pin: Dict[int, int] = {}
            for old_pin, net_idx in enumerate(node.input_nets):
                if net_idx in keep:
                    new_pin = pruned.connect_input(new_node, keep[net_idx])
                    old_to_new_pin[old_pin] = new_pin
            for oi, net_idx in enumerate(node.output_nets):
                if net_idx in keep:
                    pruned.connect_output(new_node, keep[net_idx])
                else:
                    dead = pruned.add_net(f"__dead:{node.name}:{oi}")
                    pruned.connect_output(new_node, dead)
                new_support = tuple(
                    old_to_new_pin[p]
                    for p in node.supports[oi]
                    if p in old_to_new_pin
                )
                new_node.supports.append(new_support)
        hg = pruned

    hg.check()
    return hg
