"""Static pin-level hypergraph structure.

Nodes come in three kinds sharing one pin interface:

* ``CELL`` -- a mapped CLB: input pins, one or two output pins, per-output
  support (the adjacency-vector information of the paper's Section II),
  CLB weight 1.
* ``PI`` / ``PO`` -- terminal nodes (the paper's Y set): a primary input is a
  node with one output pin, a primary output a node with one input pin.
  Terminals weigh 0 CLBs and 1 IOB.

Nets record every pin they touch as ``(node, direction, pin_index)``; a node
may contribute several pins to the same net (e.g. a CLB whose registered
output feeds back into its own input), which the partitioning engines handle
by counting pins, not nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Pin direction constants used in :attr:`Net.pins`.
PIN_IN = 0
PIN_OUT = 1


class NodeKind(enum.Enum):
    CELL = "cell"
    PI = "pi"
    PO = "po"


@dataclass(slots=True)
class Node:
    """One hypergraph node (cell or terminal).

    ``weight`` is the CLB count of one instance; it is 1 for mapped cells
    and larger for the coarse super-nodes built by
    :mod:`repro.partition.clustering`.

    ``__slots__`` (via ``slots=True``) keeps the per-node memory footprint
    flat and attribute access fast; these objects number in the tens of
    thousands on large circuits and sit on every traversal path.
    """

    index: int
    name: str
    kind: NodeKind
    input_nets: List[int] = field(default_factory=list)
    output_nets: List[int] = field(default_factory=list)
    supports: List[Tuple[int, ...]] = field(default_factory=list)
    weight: int = 1

    @property
    def clb_weight(self) -> int:
        """CLBs consumed by one instance of this node."""
        return self.weight if self.kind is NodeKind.CELL else 0

    @property
    def iob_weight(self) -> int:
        """IOBs consumed by this node (terminals are pads)."""
        return 0 if self.kind is NodeKind.CELL else 1

    @property
    def n_inputs(self) -> int:
        return len(self.input_nets)

    @property
    def n_outputs(self) -> int:
        return len(self.output_nets)

    @property
    def is_cell(self) -> bool:
        return self.kind is NodeKind.CELL

    def adjacency_vector(self, output_index: int) -> Tuple[int, ...]:
        """The paper's A_Xi: which input pins output ``output_index`` depends on."""
        members = set(self.supports[output_index])
        return tuple(
            1 if pin in members else 0 for pin in range(len(self.input_nets))
        )

    def exclusive_inputs(self, output_index: int) -> Tuple[int, ...]:
        """Input pin indices that support *only* ``output_index``."""
        others: set = set()
        for oi, sup in enumerate(self.supports):
            if oi != output_index:
                others.update(sup)
        return tuple(p for p in self.supports[output_index] if p not in others)

    def adjacent_nets(self) -> List[int]:
        """Distinct nets this node touches (inputs first, stable order)."""
        seen: Dict[int, None] = {}
        for net in self.input_nets:
            seen.setdefault(net, None)
        for net in self.output_nets:
            seen.setdefault(net, None)
        return list(seen)


@dataclass(slots=True)
class Net:
    """One hyperedge; pins are ``(node_index, direction, pin_index)``."""

    index: int
    name: str
    pins: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def degree(self) -> int:
        return len(self.pins)

    def node_indices(self) -> List[int]:
        seen: Dict[int, None] = {}
        for node, _, _ in self.pins:
            seen.setdefault(node, None)
        return list(seen)


class Hypergraph:
    """An immutable-after-build hypergraph of nodes and nets."""

    def __init__(self, name: str = "hypergraph") -> None:
        self.name = name
        self.nodes: List[Node] = []
        self.nets: List[Net] = []
        self._net_by_name: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str, kind: NodeKind) -> Node:
        node = Node(index=len(self.nodes), name=name, kind=kind)
        self.nodes.append(node)
        return node

    def add_net(self, name: str) -> Net:
        if name in self._net_by_name:
            raise ValueError(f"duplicate net {name!r}")
        net = Net(index=len(self.nets), name=name)
        self.nets.append(net)
        self._net_by_name[name] = net.index
        return net

    def net_index(self, name: str) -> int:
        return self._net_by_name[name]

    def connect_input(self, node: Node, net: Net) -> int:
        """Attach ``net`` to a new input pin of ``node``; returns the pin index."""
        pin = len(node.input_nets)
        node.input_nets.append(net.index)
        net.pins.append((node.index, PIN_IN, pin))
        return pin

    def connect_output(self, node: Node, net: Net) -> int:
        """Attach ``net`` to a new output pin of ``node``; returns the pin index."""
        pin = len(node.output_nets)
        node.output_nets.append(net.index)
        net.pins.append((node.index, PIN_OUT, pin))
        return pin

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return sum(1 for n in self.nodes if n.is_cell)

    @property
    def n_terminals(self) -> int:
        return sum(1 for n in self.nodes if not n.is_cell)

    def cell_indices(self) -> List[int]:
        return [n.index for n in self.nodes if n.is_cell]

    def terminal_indices(self) -> List[int]:
        return [n.index for n in self.nodes if not n.is_cell]

    def total_clb_weight(self) -> int:
        return sum(n.clb_weight for n in self.nodes)

    def check(self) -> None:
        """Internal consistency checks; raises ``ValueError`` on violation."""
        for node in self.nodes:
            if node.is_cell:
                if not node.output_nets:
                    raise ValueError(f"cell {node.name!r} has no outputs")
                if len(node.supports) != len(node.output_nets):
                    raise ValueError(
                        f"cell {node.name!r}: supports/outputs length mismatch"
                    )
                for sup in node.supports:
                    for pin in sup:
                        if not 0 <= pin < len(node.input_nets):
                            raise ValueError(
                                f"cell {node.name!r}: support pin {pin} out of range"
                            )
            elif node.kind is NodeKind.PI:
                if node.input_nets or len(node.output_nets) != 1:
                    raise ValueError(f"PI terminal {node.name!r} malformed")
            elif node.kind is NodeKind.PO:
                if node.output_nets or len(node.input_nets) != 1:
                    raise ValueError(f"PO terminal {node.name!r} malformed")
        for net in self.nets:
            drivers = [p for p in net.pins if p[1] == PIN_OUT]
            # Terminal-free builds legitimately leave PI-driven nets without
            # a driver pin inside the graph; multiple drivers are always bugs.
            if len(drivers) > 1:
                raise ValueError(
                    f"net {net.name!r} has {len(drivers)} drivers (expected <= 1)"
                )
            if not net.pins:
                raise ValueError(f"net {net.name!r} has no pins")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Hypergraph({self.name!r}: {self.n_cells} cells, "
            f"{self.n_terminals} terminals, {len(self.nets)} nets)"
        )
