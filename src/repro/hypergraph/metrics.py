"""Partition metrics over a static hypergraph + block assignment.

These functions evaluate *replication-free* assignments (arrays mapping node
index -> block id, or -1 for unassigned).  The replication-aware engines keep
their own dynamic state and expose equivalent accessors; tests cross-check
the two.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.hypergraph.hypergraph import Hypergraph


def net_blocks(hg: Hypergraph, assignment: Sequence[int], net_index: int) -> Set[int]:
    """Distinct blocks touched by a net (unassigned pins are ignored)."""
    blocks: Set[int] = set()
    for node, _, _ in hg.nets[net_index].pins:
        block = assignment[node]
        if block >= 0:
            blocks.add(block)
    return blocks


def cut_nets(hg: Hypergraph, assignment: Sequence[int]) -> List[int]:
    """Indices of nets spanning more than one block."""
    return [
        net.index
        for net in hg.nets
        if len(net_blocks(hg, assignment, net.index)) > 1
    ]


def cut_size(hg: Hypergraph, assignment: Sequence[int]) -> int:
    """Number of nets in the cut set."""
    return len(cut_nets(hg, assignment))


def partition_clb_sizes(hg: Hypergraph, assignment: Sequence[int]) -> Dict[int, int]:
    """CLB count per block."""
    sizes: Dict[int, int] = {}
    for node in hg.nodes:
        block = assignment[node.index]
        if block >= 0 and node.clb_weight:
            sizes[block] = sizes.get(block, 0) + node.clb_weight
    return sizes


def partition_terminal_counts(
    hg: Hypergraph, assignment: Sequence[int]
) -> Dict[int, int]:
    """Terminals (IOBs) used per block: the paper's t_Pj.

    A block j needs one IOB for every net that touches it and either spans
    another block (an inter-device signal) or carries a primary I/O pad
    assigned to block j (the pad occupies an IOB of that device).
    """
    counts: Dict[int, int] = {}
    blocks_seen: Set[int] = {
        b for b in assignment if b >= 0
    }
    for b in blocks_seen:
        counts[b] = 0
    for net in hg.nets:
        blocks: Set[int] = set()
        pad_blocks: Set[int] = set()
        for node_idx, direction, _ in net.pins:
            block = assignment[node_idx]
            if block < 0:
                continue
            blocks.add(block)
            if not hg.nodes[node_idx].is_cell:
                pad_blocks.add(block)
        if len(blocks) > 1:
            for b in blocks:
                counts[b] = counts.get(b, 0) + 1
        elif blocks and pad_blocks:
            b = next(iter(blocks))
            counts[b] = counts.get(b, 0) + 1
    return counts


def balance_ratio(hg: Hypergraph, assignment: Sequence[int]) -> float:
    """max block CLB size / total CLB weight (0.5 is perfectly balanced 2-way)."""
    sizes = partition_clb_sizes(hg, assignment)
    total = sum(sizes.values())
    if not total:
        return 0.0
    return max(sizes.values()) / total
