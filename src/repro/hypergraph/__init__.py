"""Pin-level hypergraph substrate.

The paper models the mapped circuit as a hypergraph H = ({X; Y}, E): interior
nodes X (cells/CLBs), terminal nodes Y (I/O pads, one IOB each), and nets E.
This package provides the static structure (:mod:`hypergraph`), construction
from a mapped netlist (:mod:`build`) and partition metrics (:mod:`metrics`).
"""

from repro.hypergraph.hypergraph import Hypergraph, Node, Net, NodeKind
from repro.hypergraph.build import build_hypergraph
from repro.hypergraph.metrics import (
    cut_nets,
    cut_size,
    partition_clb_sizes,
    partition_terminal_counts,
)

__all__ = [
    "Hypergraph",
    "Node",
    "Net",
    "NodeKind",
    "build_hypergraph",
    "cut_nets",
    "cut_size",
    "partition_clb_sizes",
    "partition_terminal_counts",
]
