"""Per-client admission control: token-bucket rates and inflight quotas.

The service is the "millions of users" front door, so no single client
may starve the pool.  Two independent limits, both per client:

* **rate** -- a classic token bucket (``rate`` tokens/second refill,
  ``burst`` capacity): short bursts pass, sustained flooding is shed
  with HTTP 429 + ``Retry-After``;
* **inflight** -- at most ``max_inflight`` queued+running jobs per
  client, so one tenant cannot occupy the whole queue with slow solves
  while staying under its rate.

The clock is injectable (``clock=time.monotonic`` by default) so tests
drive refill deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be positive, got {rate}/{burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (0 when already)."""
        with self._lock:
            self._refill()
            missing = n - self._tokens
            return max(0.0, missing / self.rate)


class ClientQuota:
    """Admission control over every client of one service instance."""

    def __init__(
        self,
        rate: float = 20.0,
        burst: float = 40.0,
        max_inflight: int = 16,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.max_inflight = max_inflight
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def _bucket(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[client] = bucket
            return bucket

    def admit(self, client: str, inflight: int) -> Optional[str]:
        """``None`` when the submission may proceed, else the refusal
        reason (the server turns it into HTTP 429).

        ``inflight`` is the client's current queued+running job count
        (the job table knows; quotas stay stateless about job lifetime).
        """
        if inflight >= self.max_inflight:
            return (
                f"client {client!r} has {inflight} jobs in flight "
                f"(limit {self.max_inflight})"
            )
        if not self._bucket(client).try_acquire():
            return f"client {client!r} exceeded {self.rate:g} submissions/s"
        return None

    def retry_after(self, client: str) -> float:
        """Suggested ``Retry-After`` seconds for a rate-limited client."""
        return self._bucket(client).retry_after()


__all__ = ["ClientQuota", "TokenBucket"]
