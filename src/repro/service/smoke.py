"""End-to-end service smoke drill (the CI ``service-smoke`` gate).

``python -m repro.service.smoke`` starts a real server subprocess
(``repro serve --port 0``), then drives the acceptance scenario over
actual sockets:

1. **mixed burst** -- three submissions: one cold partition request
   (misses, solves on the pool), the same request again (must be served
   as a cache hit), and one distinct cold request;
2. **bit-identity** -- the service's result document must equal, byte
   for byte, ``repro.api.run_request`` replayed on the same cache store;
3. **live telemetry** -- ``GET /v1/metrics`` mid-load must parse as
   Prometheus text with populated latency quantile gauges and lifecycle
   counters, and an ``X-Repro-Trace-Id`` submitted with a job must echo
   through the 202 reply and the job's status document;
4. **clean cancellation** -- with one worker busy, a queued job is
   cancelled via ``DELETE`` and must finish in state ``cancelled``
   without ever running;
5. **mid-solve cancellation** -- a *running* job with a generous
   deadline is cancelled via ``DELETE``; its cancel flag must wind the
   worker down at the next budget checkpoint, freeing the worker slot
   far sooner than the job's deadline (the pre-fix behaviour was a
   busy worker until the deadline expired);
6. **event stream** -- the done job's JSONL stream replays
   ``job.queued -> job.start -> job.done`` and terminates.

Exit code 0 on success; any assertion failure prints the reason and
exits 1.  Everything runs against a throwaway cache directory.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time

from repro import api
from repro.cache.store import SolutionCache, use_cache
from repro.obs.telemetry import parse_exposition
from repro.request import build_request
from repro.service.client import ServiceClient, ServiceError

#: Tiny quick-turnaround workload: small scaled s5378 carves.
COLD_A = dict(circuit="s5378", scale=0.08, seed=7, threshold=1, n_solutions=1)
COLD_B = dict(circuit="s5378", scale=0.08, seed=11, threshold=1, n_solutions=1)
#: A deliberately slower job to occupy the single worker during the
#: cancellation drill.
SLOW = dict(circuit="s5378", scale=0.3, seed=3, threshold=1, n_solutions=2)
#: The mid-solve cancellation victim: big enough that DELETE lands
#: while the worker is solving, with a deadline long enough that a
#: prompt slot release is unambiguously the cancel flag's doing.
RUNNING_VICTIM = dict(
    circuit="s5378", scale=0.45, seed=9, threshold=1, n_solutions=2,
    deadline=240.0,
)
#: Ceiling for the worker slot to free after a mid-solve DELETE --
#: generous for CI, but a small fraction of RUNNING_VICTIM's deadline.
CANCEL_RELEASE_SECONDS = 45.0


def _fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _start_server(cache_dir: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "1",
            "--cache",
            "use",
            "--cache-dir",
            cache_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _await_port(proc: subprocess.Popen, timeout: float = 30.0) -> int:
    """Parse the bound port from the server's startup line."""
    deadline = time.monotonic() + timeout
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                _fail(f"server exited early (rc={proc.returncode})")
            time.sleep(0.05)
            continue
        if "listening on http://" in line:
            return int(line.rsplit(":", 1)[1].split()[0])
    _fail("server never printed its listening address")
    raise AssertionError  # unreachable


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as cache_dir:
        proc = _start_server(cache_dir)
        try:
            port = _await_port(proc)
            client = ServiceClient("127.0.0.1", port, client_id="smoke")
            health = client.health()
            if health.get("status") != "ok":
                _fail(f"health check: {health}")
            print(f"server healthy on port {port}")

            # 1. Mixed burst: cold, hot (same request), cold.
            req_a = build_request("partition", **COLD_A)
            req_b = build_request("partition", **COLD_B)
            reply = client.submit(req_a)
            if reply["_http_status"] != 202:
                _fail(f"cold submit should queue (202), got {reply}")
            done_a = client.wait(reply["job_id"], timeout=300)
            if done_a["state"] != "done":
                _fail(f"cold job ended {done_a['state']}: {done_a.get('error')}")

            hot = client.submit(req_a)
            if hot["_http_status"] != 200 or not hot.get("cached"):
                _fail(f"repeat submit should be an instant cache hit, got {hot}")
            print("cache hit served instantly on repeat submission")

            reply_b = client.submit(req_b, trace_id="smoketrace01")
            if reply_b.get("trace_id") != "smoketrace01":
                _fail(f"submit did not echo X-Repro-Trace-Id: {reply_b}")
            done_b = client.wait(reply_b["job_id"], timeout=300)
            if done_b["state"] != "done":
                _fail(f"second cold job ended {done_b['state']}")
            if done_b.get("trace_id") != "smoketrace01":
                _fail(f"status lost the submitted trace id: {done_b}")
            print("X-Repro-Trace-Id echoed through submit reply and status")

            stats = client.stats()
            if stats["counters"]["instant_hits"] < 1:
                _fail(f"expected >=1 instant hit, stats={stats['counters']}")
            if stats["latency_seconds"]["p50"] is None:
                _fail(f"stats latency quantiles unpopulated: {stats}")

            # Live telemetry: the exposition must parse mid-load and
            # carry populated latency quantiles + lifecycle counters.
            try:
                samples = parse_exposition(client.metrics())
            except ValueError as exc:
                _fail(f"/v1/metrics does not parse: {exc}")
            if "service_queue_depth" not in samples:
                _fail(f"exposition missing service_queue_depth: {sorted(samples)}")
            quantiles = [
                name for name in samples
                if name.startswith('service_latency_seconds{quantile=')
            ]
            if not quantiles:
                _fail(f"no latency quantile gauges in exposition: {sorted(samples)}")
            if samples.get('service_jobs_total{state="done"}', 0) < 2:
                _fail(f"done counter not exposed: {sorted(samples)}")
            print(f"/v1/metrics parsed: {len(samples)} samples, "
                  f"{len(quantiles)} latency quantiles")

            # 2. Bit-identity vs the direct API on the same store.
            with use_cache(SolutionCache(cache_dir)):
                direct = api.run_request(req_a, cache="use")
            if direct.cache_info.get("status") != "hit":
                _fail("direct replay should hit the service's cache")
            service_doc = json.dumps(hot["result"], sort_keys=True)
            direct_doc = json.dumps(direct.to_dict(), sort_keys=True)
            if service_doc != direct_doc:
                _fail("service result != direct api result (bit-identity broken)")
            print("service result bit-identical to direct repro.api run")

            # 3. Clean cancellation: occupy the worker, cancel a queued job.
            slow = client.submit(build_request("partition", **SLOW))
            victim = client.submit(
                build_request("partition", circuit="s5378", scale=0.3, seed=5)
            )
            if victim["_http_status"] != 202:
                _fail(f"victim should queue behind the slow job, got {victim}")
            cancelled = client.cancel(victim["job_id"])
            if not cancelled.get("cancelled"):
                _fail(f"cancel refused: {cancelled}")
            final = client.status(victim["job_id"])
            if final["state"] != "cancelled" or final["started_ts"] is not None:
                _fail(f"victim should be cancelled unstarted: {final}")
            print("queued job cancelled cleanly")
            if slow["_http_status"] == 202:
                client.wait(slow["job_id"], timeout=300)

            # 4. Mid-solve cancellation: DELETE a *running* job and
            # require the worker slot back long before its deadline.
            runner = client.submit(build_request("partition", **RUNNING_VICTIM))
            if runner["_http_status"] != 202:
                _fail(f"running-victim should queue (202), got {runner}")
            start_deadline = time.monotonic() + 60.0
            while time.monotonic() < start_deadline:
                doc = client.status(runner["job_id"])
                if doc["state"] == "running":
                    break
                if doc["state"] != "queued":
                    _fail(f"running-victim ended early: {doc}")
                time.sleep(0.1)
            else:
                _fail("running-victim never started")
            time.sleep(1.0)  # let the worker get into the solve proper
            cancelled = client.cancel(runner["job_id"])
            if not cancelled.get("cancelled"):
                _fail(f"running cancel refused: {cancelled}")
            cancel_ts = time.monotonic()
            while True:
                released = time.monotonic() - cancel_ts
                if client.stats()["active"] == 0:
                    break
                if released > CANCEL_RELEASE_SECONDS:
                    _fail(
                        "worker slot still busy "
                        f"{released:.1f}s after cancelling a running job "
                        f"(deadline was {RUNNING_VICTIM['deadline']}s)"
                    )
                time.sleep(0.2)
            final = client.status(runner["job_id"])
            if final["state"] != "cancelled":
                _fail(f"running-victim should end cancelled: {final}")
            print(
                "running job cancelled mid-solve; worker slot freed in "
                f"{released:.1f}s (deadline {RUNNING_VICTIM['deadline']:.0f}s)"
            )

            # 5. Event stream of the finished job replays and terminates.
            events = [e.get("event") for e in client.stream(done_a["job_id"])]
            for expected in ("job.queued", "job.start", "job.done", "stream.end"):
                if expected not in events:
                    _fail(f"event stream missing {expected!r}: {events}")
            print(f"event stream ok ({len(events)} events)")
            try:
                client.status("no-such-job")
            except ServiceError as exc:
                if exc.status != 404:
                    _fail(f"unknown job should 404, got {exc.status}")
            else:
                _fail("unknown job id did not 404")

            print("service smoke: OK")
            return 0
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
