"""Partitioning-as-a-service: an async job server over the request API.

The service layer turns the library into a long-running daemon: clients
POST schema-versioned :class:`~repro.request.PartitionRequest` documents
(``repro-partition-request/1``) to an asyncio HTTP server, which serves
cache hits in O(1) from the solution cache, queues misses by priority
under per-client rate limits and inflight quotas, solves them on the
batch process pool, and streams job lifecycle events live as chunked
JSONL or SSE.

Layout:

* :mod:`repro.service.jobs`   -- job records, priority queue, retention;
* :mod:`repro.service.quota`  -- token-bucket rates + inflight quotas;
* :mod:`repro.service.server` -- the asyncio HTTP server itself;
* :mod:`repro.service.client` -- a stdlib blocking client;
* :mod:`repro.service.smoke`  -- end-to-end smoke drill (CI gate).

Start a server with ``repro serve`` (CLI) or programmatically::

    from repro.service import PartitionService
    service = PartitionService(port=0, workers=2)
    # await service.start(); ...; await service.stop()

Everything is stdlib-only; the wire format is plain HTTP/1.1 + JSON, so
``curl`` works as a client.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobQueue, JobTable
from repro.service.quota import ClientQuota, TokenBucket
from repro.service.server import PartitionService, run_service

__all__ = [
    "ClientQuota",
    "Job",
    "JobQueue",
    "JobTable",
    "PartitionService",
    "ServiceClient",
    "ServiceError",
    "TokenBucket",
    "run_service",
]
