"""Service job records: lifecycle, priority queue and retention table.

Pure data structures -- no asyncio, no sockets -- so the scheduler logic
is unit-testable without a running server.  The server
(:mod:`repro.service.server`) owns all mutation; these classes only make
the states and orderings explicit:

* :class:`Job` -- one submitted :class:`~repro.request.PartitionRequest`
  with its lifecycle state, buffered progress events and (eventually)
  its serialized :class:`~repro.api.RunResult` document;
* :class:`JobQueue` -- a priority heap (higher ``priority`` first,
  submission order breaks ties) of queued jobs;
* :class:`JobTable` -- id -> job with bounded retention of finished
  jobs, so a long-running service cannot grow without limit.

State machine::

    queued -> running -> done | failed
    queued -> cancelled | expired          (never dispatched)
    running -> cancelled                   (cancel flag; solve winds
                                            down at its next checkpoint)
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.batch.manifest import BatchJob
from repro.request import PartitionRequest
from repro.robust.budget import Budget

#: Every state a job may be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "expired")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled", "expired")


@dataclass
class Job:
    """One service job: a request plus its execution lifecycle."""

    job_id: str
    request: PartitionRequest
    client: str = "anonymous"
    priority: int = 0
    state: str = "queued"
    submitted_ts: float = field(default_factory=time.time)
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    #: Whether the submit-time cache lookup served this job instantly.
    cached: bool = False
    #: The serialized ``RunResult`` document (``RunResult.to_dict()``)
    #: once the job is done; an outcome summary when full solutions are
    #: unavailable (cache policy ``off``).
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Buffered lifecycle/progress events, replayed to late stream
    #: subscribers then followed live.
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Service-level deadline (from the request's ``deadline``): a job
    #: still queued when it expires is never dispatched.
    budget: Optional[Budget] = None
    #: The pool future while running (server-owned, best-effort cancel).
    future: Any = None
    #: Sentinel-file path for mid-solve cancellation: the server touches
    #: it on ``DELETE`` of a running job and the pool worker's budgets
    #: (via :class:`~repro.robust.budget.CancelFlag`) wind the solve
    #: down at the next checkpoint.
    cancel_path: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_batch_job(self) -> BatchJob:
        """The pool-executable form of this job.

        Built from the request's canonical params, so the worker's
        ``job.to_request()`` round-trips to an equal request and the
        solve is bit-identical to a direct ``repro.api`` call.  The
        request's trace id rides along outside the params (it is never
        part of the solve identity), so worker-side spans and the ledger
        record carry the id the service minted at submit.
        """
        return BatchJob(
            job_id=self.job_id,
            verb=self.request.verb,
            circuit=self.request.circuit,
            seed=self.request.seed,
            params=self.request.params(),
            priority=self.priority,
            trace_id=self.request.trace_id,
            cancel_path=self.cancel_path,
        )

    def snapshot(self) -> Dict[str, Any]:
        """The status document returned by ``GET /v1/jobs/<id>``."""
        doc: Dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state,
            "client": self.client,
            "priority": self.priority,
            "cached": self.cached,
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "events": len(self.events),
            "request": self.request.to_dict(),
        }
        if self.request.trace_id is not None:
            doc["trace_id"] = self.request.trace_id
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobQueue:
    """Priority heap of queued jobs: higher ``priority`` first, earlier
    submission first within a priority band.

    Cancellation is lazy: a cancelled job stays in the heap and is
    discarded when popped (the standard tombstone pattern -- O(log n)
    push/pop, no O(n) removal).
    """

    def __init__(self) -> None:
        self._heap: List[Any] = []
        self._seq = itertools.count()

    def push(self, job: Job) -> None:
        heapq.heappush(self._heap, (-job.priority, next(self._seq), job))

    def pop(self) -> Optional[Job]:
        """The next dispatchable job, skipping tombstones; ``None`` when
        drained."""
        while self._heap:
            job = heapq.heappop(self._heap)[2]
            if job.state == "queued":
                return job
        return None

    def __len__(self) -> int:
        return sum(1 for item in self._heap if item[2].state == "queued")


class JobTable:
    """Id -> :class:`Job` with bounded retention of *finished* jobs.

    Live jobs (queued/running) are never evicted; terminal jobs beyond
    ``keep_finished`` are dropped oldest-first, so status/stream URLs
    stay valid for a while after completion without unbounded growth.
    """

    def __init__(self, keep_finished: int = 512) -> None:
        self.keep_finished = keep_finished
        self._jobs: Dict[str, Job] = {}
        self._finished: List[str] = []

    def add(self, job: Job) -> None:
        self._jobs[job.job_id] = job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def finish(self, job: Job) -> None:
        """Record that ``job`` reached a terminal state; evicts the
        oldest finished jobs past the retention bound."""
        self._finished.append(job.job_id)
        while len(self._finished) > self.keep_finished:
            victim = self._finished.pop(0)
            self._jobs.pop(victim, None)

    def jobs(self) -> List[Job]:
        """All retained jobs, oldest submission first."""
        return sorted(self._jobs.values(), key=lambda j: j.submitted_ts)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for job in self._jobs.values():
            out[job.state] = out.get(job.state, 0) + 1
        return dict(sorted(out.items()))

    def inflight(self, client: str) -> int:
        """Queued + running jobs currently held by ``client``."""
        return sum(
            1
            for job in self._jobs.values()
            if job.client == client and not job.terminal
        )

    def __len__(self) -> int:
        return len(self._jobs)


__all__ = ["JOB_STATES", "TERMINAL_STATES", "Job", "JobQueue", "JobTable"]
