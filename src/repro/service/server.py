"""The asyncio HTTP job server: partitioning as a service.

A long-running, stdlib-only front door over the request API
(:mod:`repro.request` / :func:`repro.api.run_request`): clients submit
:class:`~repro.request.PartitionRequest` documents over HTTP, the server
serves cache hits instantly from :mod:`repro.cache` (the cluster's
:class:`~repro.cluster.store.ReplicatedCache` when ``cluster_dir`` is
given), queues misses by priority, fans them out on the batch process
pool (:class:`~repro.perf.parallel.BatchJobPool`) and streams per-job
lifecycle events as chunked JSONL or SSE.

Endpoints (all JSON; the request schema is ``repro-partition-request/1``):

* ``GET  /v1/health`` -- liveness + config;
* ``GET  /v1/stats``  -- counters, queue depth, per-state job counts,
  rolling queue-wait and end-to-end latency quantiles;
* ``GET  /v1/metrics`` -- Prometheus text exposition: service gauges
  (queue depth, worker utilization, latency quantiles), the lifecycle
  counters, and -- when the server runs traced -- every registry
  metric, labeled series included;
* ``POST /v1/jobs``   -- submit: either a bare request document or
  ``{"request": {...}, "priority": int, "client": str}``; an
  ``X-Repro-Trace-Id`` header (or a ``trace_id`` on the request
  document) names the job's trace context, one is minted otherwise;
  returns ``200`` with the full result on an instant cache hit, else
  ``202`` with the queued job's id and its ``trace_id``;
* ``GET  /v1/jobs``           -- list job snapshots;
* ``GET  /v1/jobs/<id>``      -- one job's status (+ result when done);
* ``DELETE /v1/jobs/<id>``    -- cancel (queued: guaranteed; running:
  the job's cancel flag is raised and the worker's budget checkpoints
  wind the solve down promptly -- solver processes are never killed);
* ``GET  /v1/jobs/<id>/events`` -- replay + follow the job's event
  stream until it reaches a terminal state (``?format=sse`` or an
  ``Accept: text/event-stream`` header selects SSE framing, default is
  chunked JSONL).

Design rules: all job/queue state is touched only on the event loop
thread; anything blocking (technology mapping, cache reads, pool
collection) runs in executor threads; results travel through the
solution cache (workers store, the parent re-reads), so a service
response is bit-identical to the same request run through ``repro.api``
directly.  Refusals are explicit: malformed requests get 400, unknown
jobs 404, rate/quota breaches 429 + ``Retry-After``.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile
import threading
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import api
from repro.obs.metrics import get_registry
from repro.obs.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    QuantileWindow,
    new_trace_id,
    prometheus_exposition,
    series,
)
from repro.request import PartitionRequest, RequestError
from repro.robust.budget import Budget
from repro.service.jobs import Job, JobQueue, JobTable
from repro.service.quota import ClientQuota

#: Largest request body the server will read, in bytes.
MAX_BODY_BYTES = 1 << 20

#: Mapped netlists memoized by the parent for key computation/hot hits.
_MAPPED_MEMO_CAP = 8

#: Hot result documents memoized per cache key (O(1) repeat hits).
_RESULT_MEMO_CAP = 1024

#: Histogram bounds (seconds) for queue-wait / end-to-end job latency.
LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class PartitionService:
    """One service instance: HTTP listener + queue + worker pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        cache: str = "use",
        cache_dir: Optional[str] = None,
        cluster_dir: Optional[str] = None,
        rate: float = 20.0,
        burst: float = 40.0,
        max_inflight: int = 16,
        keep_finished: int = 512,
    ) -> None:
        from repro.cache.store import SolutionCache, resolve_cache

        self.host = host
        self.port = port
        self.workers = max(1, int(workers))
        self.policy = cache
        self.cluster_dir = cluster_dir
        if cache == "off":
            self.store = None
        elif cluster_dir:
            from repro.cluster.admin import load_cluster

            self.store = load_cluster(cluster_dir).store
        else:
            self.store = SolutionCache(cache_dir) if cache_dir else resolve_cache()
        self.table = JobTable(keep_finished=keep_finished)
        self.queue = JobQueue()
        self.quota = ClientQuota(rate=rate, burst=burst, max_inflight=max_inflight)
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "instant_hits": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "expired": 0,
            "rejected": 0,
        }
        self.started_ts = time.time()
        #: Rolling windows behind the ``/v1/stats`` and ``/v1/metrics``
        #: latency quantiles (the ``stats`` dict only counts).
        self.queue_wait = QuantileWindow()
        self.latency = QuantileWindow()
        self._seq = 0
        self._active = 0
        self._running = False
        # Loop-bound objects, created in start() on the serving loop
        # (Any: None only before start()/after stop()).
        self._server: Any = None
        self._pool: Any = None
        self._cancel_dir: Optional[str] = None
        self._wake: Any = None
        self._cond: Any = None
        self._dispatcher: Any = None
        self._mapped_memo: Dict[tuple, Any] = {}
        self._mapped_lock = threading.Lock()
        self._result_memo: Dict[str, Dict[str, Any]] = {}

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener, build the pool, start the dispatcher."""
        from repro.perf.parallel import BatchJobPool

        self._wake = asyncio.Event()
        self._cond = asyncio.Condition()
        # Sentinel-file directory for cancelling *running* jobs: DELETE
        # touches <dir>/<job_id>.cancel and the pool worker's budgets
        # notice within one CancelFlag poll interval.
        self._cancel_dir = tempfile.mkdtemp(prefix="repro-cancel-")
        pool_dir = None
        if self.store is not None and not self.cluster_dir:
            pool_dir = self.store.root
        self._pool = BatchJobPool(
            pool_dir, self.policy, self.workers, cluster_dir=self.cluster_dir
        )
        self._running = True
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, cancel the dispatcher, shut the pool down."""
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._wake.set()
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        if self._pool is not None:
            self._pool.close()
        if self._cancel_dir is not None:
            shutil.rmtree(self._cancel_dir, ignore_errors=True)
            self._cancel_dir = None
        async with self._cond:
            self._cond.notify_all()

    async def serve_forever(self) -> None:
        """:meth:`start` then block until cancelled (Ctrl-C)."""
        await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # -- blocking helpers (executor threads only) -----------------------

    def _mapped_for(self, request: PartitionRequest) -> Any:
        """The request's mapped netlist via a bounded parent-side memo --
        the expensive prefix of key computation, built once per
        (circuit, scale, mapping-seed) triple."""
        nid = request.netlist_id
        with self._mapped_lock:
            if nid in self._mapped_memo:
                return self._mapped_memo[nid]
        mapped = api.map(request.circuit, scale=request.scale, seed=nid[2]).solution
        with self._mapped_lock:
            if len(self._mapped_memo) >= _MAPPED_MEMO_CAP:
                self._mapped_memo.pop(next(iter(self._mapped_memo)))
            self._mapped_memo[nid] = mapped
        return mapped

    def _hot_result(self, request: PartitionRequest) -> Optional[Dict[str, Any]]:
        """The serialized result of a trustworthy cache hit, else ``None``.

        Repeat hits on the same key are O(1): the verified result
        document is memoized, so the hot path costs one dict lookup
        after the first request (plus the one-time mapping build).
        """
        if self.store is None or self.policy != "use":
            return None
        mapped = self._mapped_for(request)
        key = request.cache_key(mapped)
        memo = self._result_memo.get(key)
        if memo is not None:
            return memo
        result = api.cached_result(request, store=self.store, mapped=mapped)
        if result is None:
            return None
        doc = result.to_dict()
        if len(self._result_memo) >= _RESULT_MEMO_CAP:
            self._result_memo.pop(next(iter(self._result_memo)))
        self._result_memo[key] = doc
        return doc

    def _collect(self, future: Any) -> Any:
        from repro.perf.parallel import BatchJobPool

        return BatchJobPool.collect(future)

    # -- job lifecycle (event loop thread only) -------------------------

    def _post(self, job: Job, event: str, **fields: Any) -> None:
        """Append a lifecycle event to the job's stream, mirror it to the
        observability registry (under the job's trace context), wake
        stream followers."""
        payload = {"ts": time.time(), "event": event, "job_id": job.job_id}
        if job.request.trace_id is not None:
            payload["trace_id"] = job.request.trace_id
        payload.update(fields)
        job.events.append(payload)
        reg = get_registry()
        if reg.enabled:
            name = event if event.startswith("service.") else f"service.{event}"
            fields_out = {
                k: v for k, v in payload.items() if k not in ("event", "trace_id")
            }
            with reg.trace_scope(job.request.trace_id):
                reg.emit_event(name, **fields_out)
        loop = asyncio.get_running_loop()
        loop.create_task(self._notify())

    async def _notify(self) -> None:
        async with self._cond:
            self._cond.notify_all()

    def _finish(self, job: Job, state: str, **fields: Any) -> None:
        job.state = state
        job.finished_ts = time.time()
        self.stats[state] = self.stats.get(state, 0) + 1
        latency = job.finished_ts - job.submitted_ts
        self.latency.observe(latency)
        reg = get_registry()
        if reg.enabled:
            reg.histogram("service.latency_seconds", LATENCY_BUCKETS).observe(latency)
            reg.counter(series("service.finished", state=state)).inc()
        self.table.finish(job)
        self._post(job, f"job.{state}", latency_seconds=latency, **fields)

    async def _dispatch_loop(self) -> None:
        while self._running:
            await self._wake.wait()
            self._wake.clear()
            while self._active < self.workers:
                job = self.queue.pop()
                if job is None:
                    break
                if job.budget is not None and job.budget.expired:
                    self._finish(job, "expired", reason="deadline expired in queue")
                    continue
                self._active += 1
                asyncio.create_task(self._run_job(job))

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        try:
            job.state = "running"
            job.started_ts = time.time()
            wait = job.started_ts - job.submitted_ts
            self.queue_wait.observe(wait)
            reg = get_registry()
            if reg.enabled:
                reg.histogram(
                    "service.queue_wait_seconds", LATENCY_BUCKETS
                ).observe(wait)
            self._post(
                job, "job.start",
                worker_pool=self.workers, queue_wait_seconds=wait,
            )
            if self._cancel_dir is not None:
                job.cancel_path = os.path.join(
                    self._cancel_dir, f"{job.job_id}.cancel"
                )
            job.future = self._pool.submit(job.to_batch_job())
            try:
                outcome = await loop.run_in_executor(None, self._collect, job.future)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - worker-death boundary
                if job.state == "cancelled":
                    return
                self._finish(
                    job, "failed", error=f"worker died: {type(exc).__name__}: {exc}"
                )
                return
            if job.state == "cancelled":
                # The future could not be cancelled in time; the solve
                # finished anyway (and, with caching, was memoized for
                # the next asker) but the verdict stays "cancelled".
                return
            if outcome.status in ("ok", "degraded"):
                doc = None
                if self.store is not None:
                    doc = await loop.run_in_executor(
                        None, self._hot_result, job.request
                    )
                if doc is None:
                    # Cache off (or the entry vanished): the distilled
                    # outcome is all that travels back.
                    doc = {"outcome": outcome.as_dict()}
                job.result = doc
                job.error = outcome.error
                self._finish(
                    job,
                    "done",
                    status=outcome.status,
                    cache_status=outcome.cache_status,
                    elapsed_seconds=outcome.elapsed_seconds,
                )
            else:
                self._finish(job, "failed", error=outcome.error)
        finally:
            if job.cancel_path is not None:
                try:
                    os.remove(job.cancel_path)
                except OSError:
                    pass
                job.cancel_path = None
            self._active -= 1
            self._wake.set()

    def _submit_job(
        self, request: PartitionRequest, client: str, priority: int
    ) -> Tuple[int, Dict[str, Any], Job]:
        self._seq += 1
        job = Job(
            job_id=f"j{self._seq:06d}-{request.verb}-{request.circuit}",
            request=request,
            client=client,
            priority=priority,
        )
        if request.deadline is not None:
            job.budget = Budget(request.deadline)
        self.table.add(job)
        self.stats["submitted"] += 1
        self._post(job, "job.queued", client=client, priority=priority)
        payload: Dict[str, Any] = {"job_id": job.job_id, "state": "queued"}
        if request.trace_id is not None:
            payload["trace_id"] = request.trace_id
        return 202, payload, job

    # -- HTTP plumbing --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.TimeoutError:
            with _suppress_io():
                await _respond(writer, 408, {"error": "request timed out"})
        except Exception as exc:  # noqa: BLE001 - connection isolation
            with _suppress_io():
                await _respond(writer, 500, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            with _suppress_io():
                writer.close()
                await writer.wait_closed()

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_line = await asyncio.wait_for(reader.readline(), timeout=30)
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            await _respond(writer, 400, {"error": "malformed request line"})
            return
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            await _respond(writer, 413, {"error": "request body too large"})
            return
        body = b""
        if length:
            body = await asyncio.wait_for(reader.readexactly(length), timeout=30)
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        await self._route(writer, method, path, query, headers, body)

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        if path == "/v1/health" and method == "GET":
            await _respond(writer, 200, self._health())
            return
        if path == "/v1/stats" and method == "GET":
            await _respond(writer, 200, self._stats())
            return
        if path == "/v1/metrics" and method == "GET":
            await _respond_text(writer, 200, self._metrics_text())
            return
        if path == "/v1/jobs":
            if method == "POST":
                await self._handle_submit(writer, headers, body)
                return
            if method == "GET":
                await _respond(
                    writer,
                    200,
                    {"jobs": [job.snapshot() for job in self.table.jobs()]},
                )
                return
            await _respond(writer, 405, {"error": f"{method} not allowed here"})
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                job_id, stream = rest[: -len("/events")], True
            else:
                job_id, stream = rest, False
            job = self.table.get(job_id)
            if job is None:
                await _respond(writer, 404, {"error": f"unknown job {job_id!r}"})
                return
            if stream and method == "GET":
                sse = query.get("format") == "sse" or (
                    "text/event-stream" in headers.get("accept", "")
                )
                await self._handle_stream(writer, job, sse)
                return
            if not stream and method == "GET":
                await _respond(writer, 200, self._job_doc(job))
                return
            if not stream and method == "DELETE":
                await self._handle_cancel(writer, job)
                return
            await _respond(writer, 405, {"error": f"{method} not allowed here"})
            return
        await _respond(writer, 404, {"error": f"no route for {method} {path}"})

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "service": "repro-partition-service/1",
            "uptime_seconds": time.time() - self.started_ts,
            "workers": self.workers,
            "cache_policy": self.policy,
            "cluster": bool(self.cluster_dir),
        }

    def _stats(self) -> Dict[str, Any]:
        return {
            **self._health(),
            "counters": dict(self.stats),
            "queue_depth": len(self.queue),
            "active": self._active,
            "states": self.table.counts(),
            "jobs_retained": len(self.table),
            "queue_wait_seconds": self.queue_wait.summary(),
            "latency_seconds": self.latency.summary(),
        }

    def _metrics_text(self) -> str:
        """The ``/v1/metrics`` exposition body.

        Always carries the service-level counters and gauges; when the
        server runs under an enabled registry the full metric snapshot
        (trace-labeled counters included) rides along.
        """
        reg = get_registry()
        snapshot: Dict[str, Any] = (
            reg.snapshot() if reg.enabled
            else {"counters": {}, "gauges": {}, "histograms": {}}
        )
        counters = dict(snapshot.get("counters", {}))
        for state, value in self.stats.items():
            counters[series("service.jobs", state=state)] = value
        snapshot = {**snapshot, "counters": counters}
        extra: Dict[str, float] = {
            "service.queue_depth": float(len(self.queue)),
            "service.active_jobs": float(self._active),
            "service.worker_utilization": self._active / self.workers,
            "service.uptime_seconds": time.time() - self.started_ts,
        }
        extra.update(self.queue_wait.gauges("service.queue_wait_seconds"))
        extra.update(self.latency.gauges("service.latency_seconds"))
        return prometheus_exposition(snapshot, extra_gauges=extra)

    def _job_doc(self, job: Job) -> Dict[str, Any]:
        doc = job.snapshot()
        if job.result is not None:
            doc["result"] = job.result
        return doc

    async def _handle_submit(
        self,
        writer: asyncio.StreamWriter,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await _respond(writer, 400, {"error": f"body is not valid JSON: {exc}"})
            return
        priority = 0
        client = headers.get("x-client", "anonymous")
        if isinstance(doc, dict) and "request" in doc:
            envelope, doc = doc, doc["request"]
            priority = envelope.get("priority", 0)
            client = str(envelope.get("client", client))
            if isinstance(priority, bool) or not isinstance(priority, int):
                await _respond(writer, 400, {"error": "'priority' must be an int"})
                return
        reason = self.quota.admit(client, self.table.inflight(client))
        if reason is not None:
            self.stats["rejected"] += 1
            retry = max(0.05, self.quota.retry_after(client))
            await _respond(
                writer,
                429,
                {"error": reason},
                extra_headers={"Retry-After": f"{retry:.2f}"},
            )
            return
        try:
            request = PartitionRequest.from_dict(doc)
        except RequestError as exc:
            await _respond(writer, 400, {"error": str(exc)})
            return
        # Trace context: the header wins, then a trace_id already on the
        # request document; every accepted job gets one either way.
        trace_id = headers.get("x-repro-trace-id") or request.trace_id
        request = request.with_trace(trace_id or new_trace_id())
        status, payload, job = self._submit_job(request, client, priority)
        loop = asyncio.get_running_loop()
        try:
            hot = await loop.run_in_executor(None, self._hot_result, request)
        except Exception as exc:  # noqa: BLE001 - bad circuit names etc.
            self._finish(job, "failed", error=f"{type(exc).__name__}: {exc}")
            await _respond(writer, 400, {"error": f"{type(exc).__name__}: {exc}"})
            return
        if hot is not None:
            job.cached = True
            job.result = hot
            self.stats["instant_hits"] += 1
            self._finish(job, "done", status="ok", cache_status="hit")
            await _respond(writer, 200, self._job_doc(job))
            return
        self.queue.push(job)
        self._wake.set()
        await _respond(writer, status, payload)

    async def _handle_cancel(
        self, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        if job.terminal:
            await _respond(
                writer,
                200,
                {"job_id": job.job_id, "state": job.state, "cancelled": False},
            )
            return
        was_queued = job.state == "queued"
        if not was_queued:
            if job.future is not None:
                # Only succeeds while the pool has not started executing;
                # a solving worker process is never killed.
                job.future.cancel()
            if job.cancel_path is not None:
                # The worker may already be mid-solve: raise its cancel
                # flag so every Budget checkpoint in the solve reports
                # expired and the worker slot frees promptly instead of
                # running to the job's deadline.
                def _touch(path: str = job.cancel_path) -> None:
                    with open(path, "a", encoding="utf-8"):
                        pass

                await asyncio.get_running_loop().run_in_executor(None, _touch)
        self._finish(job, "cancelled", was_queued=was_queued)
        await _respond(
            writer,
            200,
            {"job_id": job.job_id, "state": "cancelled", "cancelled": True},
        )

    async def _handle_stream(
        self, writer: asyncio.StreamWriter, job: Job, sse: bool
    ) -> None:
        content_type = "text/event-stream" if sse else "application/x-ndjson"
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: " + content_type.encode() + b"\r\n"
            b"Cache-Control: no-store\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        sent = 0
        while True:
            while sent < len(job.events):
                _write_chunk(writer, _frame_event(job.events[sent], sse))
                sent += 1
            await writer.drain()
            if job.terminal or not self._running:
                break
            async with self._cond:
                try:
                    await asyncio.wait_for(self._cond.wait(), timeout=0.5)
                except asyncio.TimeoutError:
                    pass
        _write_chunk(
            writer,
            _frame_event(
                {"ts": time.time(), "event": "stream.end", "state": job.state}, sse
            ),
        )
        writer.write(b"0\r\n\r\n")
        await writer.drain()


def _frame_event(payload: Dict[str, Any], sse: bool) -> bytes:
    line = json.dumps(payload, sort_keys=True, default=str)
    if sse:
        return f"event: {payload.get('event', 'message')}\ndata: {line}\n\n".encode()
    return (line + "\n").encode()


def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
    writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")


async def _respond(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Dict[str, Any],
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


async def _respond_text(
    writer: asyncio.StreamWriter,
    status: int,
    text: str,
    content_type: str = PROMETHEUS_CONTENT_TYPE,
) -> None:
    """A plain-text responder (the JSON one would quote the exposition)."""
    body = text.encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


class _suppress_io:
    """Swallow connection teardown races (client went away mid-write)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return exc_type is not None and issubclass(
            exc_type, (ConnectionError, OSError, asyncio.TimeoutError)
        )


def run_service(**kwargs: Any) -> None:
    """Blocking entry point: build a :class:`PartitionService` and serve
    until interrupted (the CLI's ``repro serve`` calls this)."""
    service = PartitionService(**kwargs)

    async def main() -> None:
        await service.start()
        print(
            f"repro-service listening on http://{service.host}:{service.port} "
            f"({service.workers} workers, cache={service.policy})",
            flush=True,
        )
        try:
            await service._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


__all__ = ["MAX_BODY_BYTES", "PartitionService", "run_service"]
