"""A blocking stdlib client for the partition service.

Thin ``http.client`` wrapper over the server's JSON endpoints -- used by
the smoke drill, the load benchmark and the tests, and convenient from
scripts::

    from repro.request import build_request
    from repro.service.client import ServiceClient

    client = ServiceClient("127.0.0.1", 8377)
    reply = client.submit(build_request("partition", "s5378", scale=0.1))
    doc = client.wait(reply["job_id"], timeout=120)

Every method opens a fresh connection (the server closes after each
response), so one client object is safe to share across threads.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, Optional

from repro.request import PartitionRequest


class ServiceError(RuntimeError):
    """A non-2xx service reply; carries the HTTP status and body."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Blocking JSON client for one :class:`PartitionService` endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8377,
        client_id: str = "anonymous",
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        ok: tuple = (200, 202),
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {"X-Client": self.client_id}
            headers.update(extra_headers or {})
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            doc = json.loads(raw.decode("utf-8")) if raw else {}
            if response.status not in ok:
                raise ServiceError(response.status, doc)
            doc["_http_status"] = response.status
            return doc
        finally:
            conn.close()

    # -- endpoints ------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def metrics(self) -> str:
        """The raw ``GET /v1/metrics`` Prometheus exposition text."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", "/v1/metrics", headers={"X-Client": self.client_id})
            response = conn.getresponse()
            raw = response.read()
            if response.status != 200:
                doc = json.loads(raw.decode("utf-8") or "{}")
                raise ServiceError(response.status, doc)
            return raw.decode("utf-8")
        finally:
            conn.close()

    def submit(
        self,
        request: PartitionRequest,
        priority: int = 0,
        client: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a request; ``200`` replies carry the full result
        (instant cache hit), ``202`` replies carry the queued job id.
        ``trace_id`` travels as ``X-Repro-Trace-Id`` and names the trace
        context every server-side record of this job is stamped with
        (the reply echoes it, server-minted when not supplied)."""
        body = {
            "request": request.to_dict(),
            "priority": priority,
            "client": client or self.client_id,
        }
        extra = {"X-Repro-Trace-Id": trace_id} if trace_id else None
        return self._request("POST", "/v1/jobs", body=body, extra_headers=extra)

    def jobs(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/jobs")

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def stream(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield the job's lifecycle events (JSONL framing) until the
        server ends the stream at a terminal state."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(
                "GET", f"/v1/jobs/{job_id}/events", headers={"X-Client": self.client_id}
            )
            response = conn.getresponse()
            if response.status != 200:
                doc = json.loads(response.read().decode("utf-8") or "{}")
                raise ServiceError(response.status, doc)
            # http.client de-chunks transparently; read line by line.
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the final
        status document (with ``result`` when done)."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc.get("state") in ("done", "failed", "cancelled", "expired"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {doc.get('state')!r}")
            time.sleep(poll)


__all__ = ["ServiceClient", "ServiceError"]
