"""A simulated solve node: one worker identity with its own replica store.

:class:`SolveNode` extends the storage-only :class:`~repro.cluster.store.
ReplicaNode` with the execution side of the farm -- it runs batch jobs
(:func:`~repro.batch.worker.execute_job`), reports heartbeats on the
scheduler's logical clock, and can *crash*: the ``node.crash`` fault
site fires at the top of :meth:`SolveNode.run_job`, so an injected
:class:`NodeCrash` kills the node before the job completes, exactly like
a worker process dying mid-solve.  Crashes persist (the ``.down`` marker
survives the process), and :meth:`SolveNode.restart` is the drill's
"turn the node back on" step, after which hinted handoff and
anti-entropy (:mod:`repro.cluster.store`) bring its replica back in
sync.

Nodes here are *simulated* processes: they share the parent interpreter
but own disjoint store directories and independent liveness, which keeps
kill/restart drills deterministic and replayable while exercising the
same re-dispatch, quorum and catch-up logic a multi-host farm needs.
"""

from __future__ import annotations

import os
from typing import Any, Dict

from repro.batch.manifest import BatchJob
from repro.batch.worker import JobOutcome, execute_job
from repro.cache.store import DEFAULT_MAX_BYTES
from repro.cluster.store import ClusterError, ReplicaNode
from repro.obs.metrics import get_registry
from repro.robust.faults import maybe_fire


class NodeCrash(ClusterError):
    """A simulated hard crash of a solve node (``node.crash`` site)."""


class SolveNode(ReplicaNode):
    """A replica store plus the execution state of one farm worker."""

    def __init__(
        self, name: str, root: str, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        super().__init__(name, root, max_bytes=max_bytes)
        #: Logical-clock tick of the last heartbeat the scheduler saw.
        self.last_heartbeat = -1
        self.jobs_done = 0

    # -- lifecycle ------------------------------------------------------
    def kill(self) -> None:
        """Take the node down (persists via the ``.down`` marker)."""
        self.mark_down()
        reg = get_registry()
        reg.counter(f"cluster.node.{self.name}.crashes").inc()
        reg.emit_event("cluster.node.down", node=self.name)

    def restart(self) -> None:
        """Bring a downed node back; its store rejoins as-is and relies
        on hint delivery / anti-entropy to catch up."""
        self.mark_up()
        get_registry().emit_event("cluster.node.up", node=self.name)

    def heartbeat(self, clock: int) -> None:
        """Record liveness at logical tick ``clock`` (up nodes only)."""
        if self.is_up():
            self.last_heartbeat = clock

    # -- execution ------------------------------------------------------
    def run_job(self, job: BatchJob, cache: str = "use") -> JobOutcome:
        """Execute one batch job on this node.

        The ``node.crash`` fault site fires *before* the solve, so an
        injected :class:`NodeCrash` models the node dying with the job
        in flight: no outcome, no cache write -- the scheduler must
        detect the death and re-dispatch.  Everything else is the
        ordinary :func:`~repro.batch.worker.execute_job` isolation
        boundary (failures become per-job verdicts).
        """
        if not self.is_up():
            raise NodeCrash(f"node {self.name} is down")
        maybe_fire("node.crash", node=self.name, job=job.job_id)
        outcome = execute_job(job, cache=cache)
        self.jobs_done += 1
        return outcome

    def status(self) -> Dict[str, Any]:
        """One status row for ``repro cluster status``."""
        stats = self.store.stats()
        return {
            "name": self.name,
            "root": os.path.abspath(self.root),
            "up": self.is_up(),
            "entries": stats["entries"],
            "bytes": stats["bytes"],
            "jobs_done": self.jobs_done,
            "last_heartbeat": self.last_heartbeat,
            "pending_hints": self.pending_hints(),
        }


__all__ = ["NodeCrash", "SolveNode"]
