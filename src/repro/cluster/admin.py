"""Cluster layout and administration: create, load, status.

A cluster lives in one directory::

    <root>/
      cluster.json            # membership + replication config
      node-0/ node-1/ ...     # one ReplicaNode store per member
        .down                 # liveness marker (present = node is down)
        .hints/<target>/      # pending hinted-handoff entries
        <2-hex-shard>/        # the node's ordinary solution store

``cluster.json`` (schema ``repro-cluster/1``) makes the cluster
re-openable by any process -- the CLI's ``repro cluster status`` and a
mid-drill ``repro batch run --nodes N`` see the same membership, ring
and quorum settings, and the ``.down`` markers carry kill state between
them.

:class:`Cluster` binds the members to a
:class:`~repro.cluster.ring.HashRing` and a
:class:`~repro.cluster.store.ReplicatedCache` and exposes the drill
operations (kill / restart / deliver_hints / anti_entropy / digests).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.cache.store import DEFAULT_MAX_BYTES
from repro.cluster.merkle import diff_buckets
from repro.cluster.node import SolveNode
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.cluster.store import ClusterError, ReplicatedCache

#: Schema identifier written into every ``cluster.json``.
CLUSTER_SCHEMA_NAME = "repro-cluster/1"

#: Config file name inside a cluster root.
CLUSTER_CONFIG = "cluster.json"

#: Default member count for a new cluster.
DEFAULT_NODES = 3


class Cluster:
    """A directory-backed solve farm: nodes + ring + replicated store."""

    def __init__(
        self,
        root: str,
        nodes: List[SolveNode],
        replication: int,
        write_quorum: int = 1,
        read_quorum: int = 1,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        self.root = root
        self.nodes = nodes
        self.by_name = {node.name: node for node in nodes}
        self.ring = HashRing([node.name for node in nodes], vnodes=vnodes)
        self.store = ReplicatedCache(
            nodes,
            replication=replication,
            write_quorum=write_quorum,
            read_quorum=read_quorum,
            ring=self.ring,
            root=root,
        )

    # -- membership -----------------------------------------------------
    @property
    def names(self) -> List[str]:
        return [node.name for node in self.nodes]

    def node(self, name: str) -> SolveNode:
        try:
            return self.by_name[name]
        except KeyError:
            raise ClusterError(
                f"no node {name!r} in cluster {self.root} (members: {self.names})"
            ) from None

    def live_nodes(self) -> List[SolveNode]:
        return [node for node in self.nodes if node.is_up()]

    # -- drill operations -----------------------------------------------
    def kill(self, name: str) -> None:
        self.node(name).kill()

    def restart(self, name: str) -> None:
        self.node(name).restart()

    def deliver_hints(self, name: str) -> int:
        return self.store.deliver_hints(name)

    def anti_entropy(self) -> int:
        return self.store.anti_entropy()

    def digests(self) -> Dict[str, Dict[str, Any]]:
        return self.store.digests()

    # -- reporting ------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The ``repro cluster status`` payload: per-node rows, digest
        roots, pending hints and whether the replicas are in sync."""
        digests = self.digests()
        rows = []
        for node in self.nodes:
            row = node.status()
            row["digest_root"] = digests[node.name]["root"]
            rows.append(row)
        roots = {d["root"] for d in digests.values()}
        first = self.nodes[0].name
        out_of_sync = {
            node.name: diff_buckets(digests[first], digests[node.name])
            for node in self.nodes[1:]
            if digests[node.name]["root"] != digests[first]["root"]
        }
        return {
            "schema": CLUSTER_SCHEMA_NAME,
            "root": os.path.abspath(self.root),
            "nodes": rows,
            "replication": self.store.replication,
            "write_quorum": self.store.write_quorum,
            "read_quorum": self.store.read_quorum,
            "live": len(self.live_nodes()),
            "in_sync": len(roots) <= 1,
            "out_of_sync_buckets": out_of_sync,
        }


def _config_path(root: str) -> str:
    return os.path.join(root, CLUSTER_CONFIG)


def create_cluster(
    root: str,
    nodes: int = DEFAULT_NODES,
    replication: Optional[int] = None,
    write_quorum: int = 1,
    read_quorum: int = 1,
    vnodes: int = DEFAULT_VNODES,
    max_bytes: int = DEFAULT_MAX_BYTES,
) -> Cluster:
    """Lay out and persist a new cluster under ``root``.

    ``replication`` defaults to the member count (full replication),
    which is what the determinism drills need: only then must every
    node's digest converge to equality after catch-up.
    """
    if nodes < 1:
        raise ClusterError("a cluster needs at least one node")
    if replication is None:
        replication = nodes
    config = {
        "schema": CLUSTER_SCHEMA_NAME,
        "nodes": [f"node-{i}" for i in range(nodes)],
        "replication": replication,
        "write_quorum": write_quorum,
        "read_quorum": read_quorum,
        "vnodes": vnodes,
        "max_bytes": max_bytes,
    }
    os.makedirs(root, exist_ok=True)
    with open(_config_path(root), "w", encoding="utf-8") as fh:
        json.dump(config, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return load_cluster(root)


def load_cluster(root: str) -> Cluster:
    """Re-open the cluster persisted under ``root``."""
    path = _config_path(root)
    try:
        with open(path, encoding="utf-8") as fh:
            config = json.load(fh)
    except FileNotFoundError:
        raise ClusterError(
            f"no cluster at {root!r} (missing {CLUSTER_CONFIG}); "
            f"run `repro cluster start` first"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ClusterError(f"unreadable cluster config {path!r}: {exc}") from exc
    if config.get("schema") != CLUSTER_SCHEMA_NAME:
        raise ClusterError(
            f"unsupported cluster schema {config.get('schema')!r} in {path!r}"
        )
    names = config["nodes"]
    max_bytes = int(config.get("max_bytes", DEFAULT_MAX_BYTES))
    members = [
        SolveNode(name, os.path.join(root, name), max_bytes=max_bytes)
        for name in names
    ]
    return Cluster(
        root,
        members,
        replication=int(config.get("replication", len(names))),
        write_quorum=int(config.get("write_quorum", 1)),
        read_quorum=int(config.get("read_quorum", 1)),
        vnodes=int(config.get("vnodes", DEFAULT_VNODES)),
    )


def ensure_cluster(root: str, nodes: int = DEFAULT_NODES, **kwargs: Any) -> Cluster:
    """Load the cluster at ``root``, creating it on first use."""
    if os.path.exists(_config_path(root)):
        return load_cluster(root)
    return create_cluster(root, nodes=nodes, **kwargs)


__all__ = [
    "CLUSTER_CONFIG",
    "CLUSTER_SCHEMA_NAME",
    "Cluster",
    "DEFAULT_NODES",
    "create_cluster",
    "ensure_cluster",
    "load_cluster",
]
