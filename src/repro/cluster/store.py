"""The sharded, replicated solution store: N node stores behind one cache.

:class:`ReplicatedCache` presents the exact :class:`~repro.cache.store.
SolutionCache` interface (so ``repro.api``'s ``cache=`` machinery and
``use_cache`` work unchanged) while spreading entries over per-node
stores (:class:`ReplicaNode`) placed by a consistent-hash ring:

* **writes** go to the key's ``replication``-long preference list; a
  downed or failing replica is covered by **hinted handoff** -- the next
  live node takes a readable copy plus a hint record, and
  :meth:`ReplicatedCache.deliver_hints` forwards it when the owner
  returns (the SNIPPETS node-off/on drill).  A write that cannot reach
  ``write_quorum`` acks (real + hinted, i.e. a sloppy quorum) raises
  :class:`QuorumError`;
* **reads** walk the preference list collecting ``read_quorum`` valid
  replicas; fewer is a cache *miss* (recomputing is always safe).  A
  live preference node found missing an entry another replica holds is
  **read-repaired** on the spot;
* **anti-entropy** (:meth:`ReplicatedCache.anti_entropy`) compares the
  nodes' Merkle-style digests (:mod:`repro.cluster.merkle`) and copies
  missing/divergent entries back onto their preference nodes, so a
  rejoining node converges even when its hints were lost.

Per-node unavailability is injectable at the ``rpc.timeout`` fault site
(and per-store torn writes at ``store.partial_write``), so every path
above is exercised deterministically in the drills.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cache.store import DEFAULT_MAX_BYTES, SolutionCache, validate_entry
from repro.cluster.merkle import digest_tree, entry_digest, key_digests
from repro.cluster.ring import HashRing
from repro.obs.metrics import get_registry
from repro.robust.errors import ReproError
from repro.robust.faults import maybe_fire

#: Marker file that persists a node's down state across processes.
DOWN_MARKER = ".down"

#: Per-node directory holding pending handoff hints (``.hints/<target>/``).
HINTS_DIR = ".hints"


class ClusterError(ReproError, RuntimeError):
    """Base class for cluster-level store/scheduling failures."""


class RpcTimeout(ClusterError):
    """A simulated per-node store call timeout (``rpc.timeout`` site)."""


class QuorumError(ClusterError):
    """A write could not reach its quorum of (real + hinted) replicas."""


class ReplicaNode:
    """One storage node: a directory-backed store plus liveness state.

    Liveness is a ``.down`` marker file inside the node directory, so
    ``repro cluster status`` sees kills made by another process -- the
    simulated equivalent of the sidebar node toggle in the SNIPPETS
    drills.
    """

    def __init__(
        self, name: str, root: str, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        self.name = name
        self.root = root
        self.store = SolutionCache(root, max_bytes=max_bytes)
        os.makedirs(root, exist_ok=True)

    # -- liveness -------------------------------------------------------
    @property
    def _down_marker(self) -> str:
        return os.path.join(self.root, DOWN_MARKER)

    def is_up(self) -> bool:
        return not os.path.exists(self._down_marker)

    def mark_down(self) -> None:
        with open(self._down_marker, "w", encoding="utf-8") as fh:
            fh.write("down\n")

    def mark_up(self) -> None:
        try:
            os.remove(self._down_marker)
        except OSError:
            pass

    # -- hinted handoff -------------------------------------------------
    def _hint_dir(self, target: str) -> str:
        return os.path.join(self.root, HINTS_DIR, target)

    def store_hint(self, target: str, entry: Dict[str, Any]) -> str:
        """Keep ``entry`` for later delivery to ``target``; returns the
        hint path.  The hint file carries the full entry, so delivery
        does not depend on this node's own LRU retention."""
        path = os.path.join(self._hint_dir(target), f"{entry['key']}.json")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
        os.replace(tmp, path)
        return path

    def hints_for(self, target: str) -> List[Tuple[str, Dict[str, Any]]]:
        """Pending ``(path, entry)`` hints owed to ``target``."""
        hint_dir = self._hint_dir(target)
        out: List[Tuple[str, Dict[str, Any]]] = []
        if not os.path.isdir(hint_dir):
            return out
        for name in sorted(os.listdir(hint_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(hint_dir, name)
            try:
                with open(path, encoding="utf-8") as fh:
                    out.append((path, json.load(fh)))
            except (OSError, json.JSONDecodeError):
                continue  # torn hint; anti-entropy will cover the gap
        return out

    def pending_hints(self) -> Dict[str, int]:
        """``{target: pending hint count}`` held by this node."""
        base = os.path.join(self.root, HINTS_DIR)
        if not os.path.isdir(base):
            return {}
        return {
            target: len(self.hints_for(target))
            for target in sorted(os.listdir(base))
            if os.path.isdir(os.path.join(base, target))
        }


class ReplicatedCache(SolutionCache):
    """A :class:`SolutionCache` spread over replicated node stores."""

    def __init__(
        self,
        nodes: Sequence[ReplicaNode],
        replication: int = 2,
        write_quorum: int = 1,
        read_quorum: int = 1,
        ring: Optional[HashRing] = None,
        root: str = "",
        read_repair: bool = True,
    ) -> None:
        if not nodes:
            raise ClusterError("a replicated cache needs at least one node")
        replication = min(replication, len(nodes))
        if not (1 <= write_quorum <= replication):
            raise ClusterError(
                f"write_quorum={write_quorum} outside 1..replication={replication}"
            )
        if not (1 <= read_quorum <= replication):
            raise ClusterError(
                f"read_quorum={read_quorum} outside 1..replication={replication}"
            )
        super().__init__(root=root or os.path.dirname(nodes[0].root))
        self.nodes = list(nodes)
        self.by_name = {node.name: node for node in self.nodes}
        self.ring = ring or HashRing([node.name for node in self.nodes])
        self.replication = replication
        self.write_quorum = write_quorum
        self.read_quorum = read_quorum
        self.read_repair = read_repair

    # -- per-node plumbing ---------------------------------------------
    def _is_up(self, name: str) -> bool:
        return self.by_name[name].is_up()

    def _preference(self, key: str) -> List[str]:
        return self.ring.nodes_for(key, self.replication)

    def _node_call(self, node: ReplicaNode, op: str, fn):
        """One per-node store operation, behind the ``rpc.timeout`` site."""
        maybe_fire("rpc.timeout", node=node.name, op=op)
        return fn()

    # -- reads ----------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Quorum read: ``read_quorum`` valid replicas or a miss.

        Downed and timing-out replicas are skipped; a live preference
        node missing the entry is read-repaired from the copy found.
        """
        found: List[Dict[str, Any]] = []
        repair_targets: List[ReplicaNode] = []
        for name in self._preference(key):
            node = self.by_name[name]
            if not node.is_up():
                continue
            try:
                entry = self._node_call(node, "get", lambda n=node: n.store.get(key))
            except (ReproError, OSError, ValueError):
                continue
            if entry is None:
                repair_targets.append(node)
            else:
                found.append(entry)
                if len(found) >= self.read_quorum:
                    break
        if len(found) < self.read_quorum:
            return None
        entry = found[0]
        if self.read_repair:
            for node in repair_targets:
                try:
                    self._node_call(node, "put", lambda n=node: n.store.put(entry))
                except (ReproError, OSError, ValueError):
                    continue
                reg = get_registry()
                reg.counter("cluster.read_repairs").inc()
                reg.emit_event("cluster.read_repair", node=node.name, key=key)
        return entry

    def touch(self, key: str) -> None:
        for name in self._preference(key):
            node = self.by_name[name]
            if node.is_up():
                node.store.touch(key)

    # -- writes ---------------------------------------------------------
    def put(self, entry: Dict[str, Any]) -> str:
        """Replicated write with sloppy quorum + hinted handoff.

        Every reachable preference node takes a real copy.  For each
        unreachable one, the next live node *outside* the preference
        list takes a readable substitute copy plus a hint; when no such
        node exists (replication == cluster size), the first live
        replica just holds the hint next to its own copy.  Raises
        :class:`QuorumError` below ``write_quorum`` total acks.
        """
        problems = validate_entry(entry)
        if problems:
            raise ValueError(f"refusing to store malformed cache entry: {problems}")
        key = entry["key"]
        reg = get_registry()
        preference = self._preference(key)
        acks: List[str] = []
        first_path: Optional[str] = None
        unreachable: List[str] = []
        for name in preference:
            node = self.by_name[name]
            if not node.is_up():
                unreachable.append(name)
                continue
            try:
                path = self._node_call(node, "put", lambda n=node: n.store.put(entry))
            except (ReproError, OSError, ValueError):
                unreachable.append(name)
                continue
            acks.append(name)
            first_path = first_path or path
            reg.counter(f"cluster.node.{name}.writes").inc()
        used = list(preference)
        hinted = 0
        for target in unreachable:
            substitute = self.ring.successor(key, exclude=used, up=self._is_up)
            holder: Optional[ReplicaNode] = None
            if substitute is not None:
                holder = self.by_name[substitute]
                used.append(substitute)
                try:
                    path = self._node_call(
                        holder, "put", lambda n=holder: n.store.put(entry)
                    )
                except (ReproError, OSError, ValueError):
                    holder = None
                else:
                    hinted += 1
                    first_path = first_path or path
            if holder is None and acks:
                # Full replication (or substitutes all down): co-locate the
                # hint with an existing real copy for later delivery.
                holder = self.by_name[acks[0]]
            if holder is not None:
                holder.store_hint(target, entry)
                reg.counter("cluster.hints.stored").inc()
                reg.emit_event(
                    "cluster.hint.stored",
                    node=holder.name,
                    target=target,
                    key=key,
                )
        if len(acks) + hinted < self.write_quorum:
            raise QuorumError(
                f"write of {key} reached {len(acks)} replica(s) + {hinted} "
                f"hint(s), below write_quorum={self.write_quorum} "
                f"(preference {preference})"
            )
        assert first_path is not None
        return first_path

    def delete(self, key: str) -> bool:
        """Remove an entry (and any pending hints for it) everywhere."""
        deleted = False
        for node in self.nodes:
            deleted = node.store.delete(key) or deleted
            for target, _count in node.pending_hints().items():
                hint = os.path.join(node._hint_dir(target), f"{key}.json")
                try:
                    os.remove(hint)
                    deleted = True
                except OSError:
                    pass
        return deleted

    # -- maintenance ----------------------------------------------------
    def entries(self) -> List[Tuple[str, str, int, float]]:
        """Every *replica* row across all nodes (keys repeat)."""
        out: List[Tuple[str, str, int, float]] = []
        for node in self.nodes:
            out.extend(node.store.entries())
        return out

    def stats(self) -> Dict[str, Any]:
        rows = self.entries()
        per_node = {node.name: node.store.stats() for node in self.nodes}
        return {
            "root": self.root,
            "nodes": len(self.nodes),
            "replication": self.replication,
            "write_quorum": self.write_quorum,
            "read_quorum": self.read_quorum,
            "entries": len({key for key, _, _, _ in rows}),
            "replicas": len(rows),
            "bytes": sum(size for _, _, size, _ in rows),
            "per_node": per_node,
        }

    def evict(self, max_bytes: Optional[int] = None) -> List[str]:
        """Run each node's own LRU pass; returns all evicted keys."""
        evicted: List[str] = []
        for node in self.nodes:
            evicted.extend(node.store.evict(max_bytes))
        return evicted

    def path_for(self, key: str) -> str:
        """The entry path on the key's first preference node."""
        primary = self._preference(key)[0]
        return self.by_name[primary].store.path_for(key)

    # -- convergence ----------------------------------------------------
    def deliver_hints(self, target: str) -> int:
        """Forward every pending hint to a returned ``target`` node.

        No-op (0) while the target is still down.  Returns the number of
        entries delivered; delivered hints are removed.
        """
        node = self.by_name[target]
        if not node.is_up():
            return 0
        reg = get_registry()
        delivered = 0
        for holder in self.nodes:
            if holder.name == target:
                continue
            for path, entry in holder.hints_for(target):
                try:
                    self._node_call(node, "put", lambda n=node: n.store.put(entry))
                except (ReproError, OSError, ValueError):
                    continue  # still unreachable; keep the hint
                try:
                    os.remove(path)
                except OSError:
                    pass
                delivered += 1
                reg.counter("cluster.hints.delivered").inc()
                reg.emit_event(
                    "cluster.hint.delivered",
                    node=holder.name,
                    target=target,
                    key=entry.get("key"),
                )
        return delivered

    def digests(self) -> Dict[str, Dict[str, Any]]:
        """Each node's Merkle digest tree, by node name."""
        return {node.name: digest_tree(node.store) for node in self.nodes}

    def anti_entropy(self) -> int:
        """Digest-sync every key back onto its live preference nodes.

        Missing or stable-content-divergent replicas are rewritten from
        the freshest copy (``created_ts`` breaks ties); returns the
        number of repairs.  With full replication this drives all node
        digests to equality -- the drill's convergence gate.
        """
        roots = {d["root"] for d in self.digests().values()}
        if len(roots) <= 1:
            return 0
        per_node: Dict[str, Dict[str, str]] = {
            node.name: key_digests(node.store) for node in self.nodes
        }
        truth: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        for node in self.nodes:
            for key in per_node[node.name]:
                entry = node.store.get(key)
                if entry is None:
                    continue
                best = truth.get(key)
                if best is None or float(entry.get("created_ts", 0)) > float(
                    best[1].get("created_ts", 0)
                ):
                    truth[key] = (entry_digest(entry), entry)
        reg = get_registry()
        repaired = 0
        for key, (digest, entry) in sorted(truth.items()):
            for name in self._preference(key):
                node = self.by_name[name]
                if not node.is_up():
                    continue
                if per_node[name].get(key) == digest:
                    continue
                try:
                    self._node_call(node, "put", lambda n=node: n.store.put(entry))
                except (ReproError, OSError, ValueError):
                    continue
                repaired += 1
                reg.counter("cluster.sync.repaired").inc()
                reg.emit_event("cluster.sync.repaired", node=name, key=key)
        return repaired


def wipe_node_dir(root: str) -> None:
    """Remove one node directory tree (drill resets)."""
    shutil.rmtree(root, ignore_errors=True)


__all__ = [
    "DOWN_MARKER",
    "HINTS_DIR",
    "ClusterError",
    "QuorumError",
    "ReplicaNode",
    "ReplicatedCache",
    "RpcTimeout",
    "wipe_node_dir",
]
