"""Merkle-style digests for anti-entropy between replica stores.

Two replicas agree when they hold the same entries; comparing them
entry-by-entry is O(store), so each node summarizes its store as a
two-level digest tree instead:

* **leaf**: per entry, the SHA-256 of its *stable* content -- the cache
  entry minus ``created_ts``.  Replicas of one logical write share a
  timestamp, but entries re-materialized by a refresh or repair may not,
  and the solvers are deterministic per key, so identity of the stable
  content is the right definition of "same entry";
* **bucket**: per 2-hex shard (the store's own directory fan-out), the
  SHA-256 over the sorted ``key=leaf`` lines of that shard;
* **root**: the SHA-256 over the sorted ``shard=bucket`` lines.

Equal roots end the conversation in O(1); differing roots narrow to the
differing buckets, and only those buckets' keys are exchanged -- the
classic anti-entropy shape (Dynamo, Cassandra, the related repo's
``merkle.py``).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List

from repro.obs.ledger import canonical_json

#: Entry fields excluded from the stable digest (volatile per copy).
VOLATILE_ENTRY_FIELDS = ("created_ts",)


def entry_digest(entry: Dict[str, Any]) -> str:
    """SHA-256 of an entry's stable (timestamp-free) content."""
    stable = {k: v for k, v in entry.items() if k not in VOLATILE_ENTRY_FIELDS}
    return hashlib.sha256(canonical_json(stable).encode("utf-8")).hexdigest()


def _combine(lines: List[str]) -> str:
    return hashlib.sha256("\n".join(sorted(lines)).encode("utf-8")).hexdigest()


def key_digests(store: Any) -> Dict[str, str]:
    """``{key: leaf digest}`` for every readable entry of a store.

    Reads go through :meth:`~repro.cache.store.SolutionCache.get`, so a
    corrupt entry self-heals (and emits ``cache.corrupt``) instead of
    poisoning the digest.
    """
    out: Dict[str, str] = {}
    for key, _path, _size, _mtime in store.entries():
        entry = store.get(key)
        if entry is not None:
            out[key] = entry_digest(entry)
    return out


def digest_tree(store: Any) -> Dict[str, Any]:
    """The full digest of one store: root, per-bucket hashes, entry count."""
    leaves = key_digests(store)
    buckets: Dict[str, List[str]] = {}
    for key, leaf in leaves.items():
        buckets.setdefault(key[:2], []).append(f"{key}={leaf}")
    bucket_hashes = {shard: _combine(lines) for shard, lines in buckets.items()}
    return {
        "root": _combine([f"{s}={h}" for s, h in bucket_hashes.items()]),
        "buckets": bucket_hashes,
        "entries": len(leaves),
    }


def diff_buckets(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    """Shards whose bucket hashes differ between two digest trees
    (including shards present on only one side); empty when in sync."""
    if a["root"] == b["root"]:
        return []
    buckets_a, buckets_b = a["buckets"], b["buckets"]
    return sorted(
        shard
        for shard in set(buckets_a) | set(buckets_b)
        if buckets_a.get(shard) != buckets_b.get(shard)
    )


__all__ = [
    "VOLATILE_ENTRY_FIELDS",
    "diff_buckets",
    "digest_tree",
    "entry_digest",
    "key_digests",
]
