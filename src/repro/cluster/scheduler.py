"""Multi-node batch dispatch with failure detection and re-dispatch.

:func:`run_cluster_batch` is the cluster twin of
:func:`repro.batch.scheduler.run_batch`: the same manifest expansion,
cache-deduplication (primaries first, duplicates as a guaranteed-hit
second wave), deadline budget and :class:`~repro.batch.scheduler.
BatchReport` -- but jobs are placed on the simulated solve nodes of a
:class:`~repro.cluster.admin.Cluster` by the consistent-hash ring, and
the scheduler survives nodes dying mid-wave:

* **placement** -- each job goes to the first live owner of its cache
  identity (:func:`~repro.batch.scheduler.job_identity`), so the same
  job lands on the same node on every replay of the same membership;
* **rounds** -- time is a logical clock.  Each round every live node
  heartbeats, then executes one queued job.  A node that crashes
  (:class:`~repro.cluster.node.NodeCrash` out of the ``node.crash``
  fault site) stops heartbeating and takes its in-flight job with it;
* **failure detection** -- a node silent for ``heartbeat_timeout``
  ticks is declared dead: its in-flight and queued jobs are
  **re-dispatched** to each job's ring successor (``job.redispatch``
  events).  With no live successor, jobs are reported ``skipped``,
  never dropped;
* **work stealing** -- an idle live node steals the tail job of the
  longest backlog (``job.steal``), so a dead node's re-dispatched
  pile-up drains across the farm instead of serializing;
* **determinism** -- rounds iterate nodes in fixed order, stealing and
  re-dispatch choose targets by ring/name order, and solver calls are
  deterministic per key, so a drilled run's ``stable_view`` is
  bit-identical to a fault-free run's (the cache replays original solve
  times for the warm comparison run).

The report's ``workers`` field is the cluster's node count.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.batch.manifest import BatchJob, expand_manifest
from repro.batch.scheduler import BatchReport, job_identity, order_jobs
from repro.batch.worker import JobOutcome, skipped_outcome
from repro.cache.store import use_cache
from repro.cluster.admin import Cluster, DEFAULT_NODES, ensure_cluster
from repro.cluster.node import NodeCrash, SolveNode
from repro.cluster.store import ClusterError
from repro.obs.metrics import get_registry
from repro.robust.budget import Budget

#: Logical-clock ticks of heartbeat silence before a node is declared dead.
DEFAULT_HEARTBEAT_TIMEOUT = 2

#: Default cluster directory for ``repro batch run --nodes N``.
DEFAULT_CLUSTER_DIR = os.path.join("results", "cluster")

ProgressFn = Callable[[Dict[str, Any]], None]


def _emit(
    on_event: Optional[ProgressFn],
    payload: Dict[str, Any],
    trace: Optional[str] = None,
) -> None:
    """Progress fan-out: callback gets the raw payload (the CLI already
    understands ``job.*`` names); the registry event is ``cluster.``-
    prefixed to keep farm traffic distinguishable from plain batches.
    Per-job events pass the job's trace id so placement, re-dispatch and
    steal decisions correlate with the request that queued the job."""
    if on_event is not None:
        on_event(payload)
    reg = get_registry()
    if reg.enabled:
        fields = {
            ("batch_name" if k == "name" else k): v
            for k, v in payload.items()
            if k != "event"
        }
        event = payload["event"]
        if not event.startswith("cluster."):
            event = f"cluster.{event}"
        with reg.trace_scope(trace):
            reg.emit_event(event, **fields)


class ClusterScheduler:
    """The round-based dispatch engine over one cluster's nodes.

    Queue state persists across waves (so does the logical clock), and
    :meth:`assign` / :meth:`drain` are separable for tests that need a
    hand-crafted imbalance (e.g. to force work stealing).
    """

    def __init__(
        self,
        cluster: Cluster,
        on_event: Optional[ProgressFn] = None,
        heartbeat_timeout: int = DEFAULT_HEARTBEAT_TIMEOUT,
        steal: bool = True,
        budget: Optional[Budget] = None,
    ) -> None:
        if heartbeat_timeout < 1:
            raise ClusterError("heartbeat_timeout must be >= 1 tick")
        self.cluster = cluster
        self.on_event = on_event
        self.heartbeat_timeout = heartbeat_timeout
        self.steal = steal
        self.budget = budget
        self.clock = 0
        self.queues: Dict[str, Deque[BatchJob]] = {
            name: deque() for name in cluster.names
        }
        #: In-flight jobs lost to a crash, awaiting failure detection.
        self.lost: Dict[str, List[BatchJob]] = {}
        #: Nodes already declared dead (their jobs were re-dispatched).
        self.dead: set = set()
        self.redispatched = 0
        self.stolen = 0

    # -- helpers --------------------------------------------------------
    def _up(self, name: str) -> bool:
        return self.cluster.by_name[name].is_up()

    def _live(self) -> List[SolveNode]:
        return self.cluster.live_nodes()

    def _pending(self) -> int:
        return sum(len(q) for q in self.queues.values()) + sum(
            len(jobs) for jobs in self.lost.values()
        )

    def _skip_job(
        self, job: BatchJob, reason: str, outcomes: List[JobOutcome]
    ) -> None:
        outcomes.append(skipped_outcome(job, reason))
        _emit(self.on_event, {
            "event": "job.skipped", "job_id": job.job_id, "reason": reason,
        }, trace=job.trace_id)

    # -- scheduling phases ----------------------------------------------
    def assign(self, wave: List[BatchJob], outcomes: List[JobOutcome]) -> None:
        """Queue each job on the first live ring owner of its identity."""
        for job in wave:
            owner = self.cluster.ring.primary_for(job_identity(job), up=self._up)
            if owner is None:
                self._skip_job(job, "no live nodes", outcomes)
                continue
            self.queues[owner].append(job)
            _emit(self.on_event, {
                "event": "job.dispatch", "job_id": job.job_id, "node": owner,
            }, trace=job.trace_id)

    def _detect_failures(self, outcomes: List[JobOutcome]) -> None:
        """Declare silent nodes dead and re-dispatch their jobs."""
        for node in self.cluster.nodes:
            name = node.name
            if node.is_up():
                self.dead.discard(name)  # externally restarted: rejoins
                continue
            if name in self.dead:
                continue
            if self.clock - node.last_heartbeat < self.heartbeat_timeout:
                continue  # not silent long enough yet
            self.dead.add(name)
            _emit(self.on_event, {
                "event": "node.dead",
                "node": name,
                "clock": self.clock,
                "last_heartbeat": node.last_heartbeat,
            })
            orphans = self.lost.pop(name, []) + list(self.queues[name])
            self.queues[name].clear()
            for job in orphans:
                target = self.cluster.ring.successor(
                    job_identity(job), exclude=self.dead, up=self._up
                )
                if target is None:
                    self._skip_job(job, "no live nodes", outcomes)
                    continue
                self.queues[target].append(job)
                self.redispatched += 1
                get_registry().counter("cluster.redispatches").inc()
                _emit(self.on_event, {
                    "event": "job.redispatch",
                    "job_id": job.job_id,
                    "from": name,
                    "to": target,
                }, trace=job.trace_id)

    def _steal_work(self) -> None:
        """Idle live nodes each take the tail of the longest backlog."""
        for thief in self._live():
            if self.queues[thief.name]:
                continue
            donors = sorted(
                (
                    node for node in self._live()
                    if node.name != thief.name and len(self.queues[node.name]) >= 2
                ),
                key=lambda n: (-len(self.queues[n.name]), n.name),
            )
            if not donors:
                continue
            donor = donors[0]
            job = self.queues[donor.name].pop()
            self.queues[thief.name].append(job)
            self.stolen += 1
            get_registry().counter("cluster.steals").inc()
            _emit(self.on_event, {
                "event": "job.steal",
                "job_id": job.job_id,
                "from": donor.name,
                "to": thief.name,
            }, trace=job.trace_id)

    def _execute_round(self, policy: str, outcomes: List[JobOutcome]) -> None:
        """Every live node runs at most one queued job this round."""
        for node in self.cluster.nodes:
            if not node.is_up() or not self.queues[node.name]:
                continue
            job = self.queues[node.name].popleft()
            _emit(self.on_event, {
                "event": "job.start", "job_id": job.job_id, "node": node.name,
            }, trace=job.trace_id)
            try:
                if policy == "off":
                    outcome = node.run_job(job, cache=policy)
                else:
                    with use_cache(self.cluster.store):
                        outcome = node.run_job(job, cache=policy)
            except NodeCrash as exc:
                if node.is_up():
                    node.kill()
                self.lost.setdefault(node.name, []).append(job)
                _emit(self.on_event, {
                    "event": "node.crash",
                    "node": node.name,
                    "job_id": job.job_id,
                    "error": f"{type(exc).__name__}: {exc}",
                }, trace=job.trace_id)
                continue
            get_registry().counter(f"cluster.node.{node.name}.jobs").inc()
            outcomes.append(outcome)
            _emit(self.on_event, {
                "event": "job.done",
                "job_id": job.job_id,
                "node": node.name,
                "status": outcome.status,
                "cache_status": outcome.cache_status,
                "wall_seconds": outcome.wall_seconds,
            }, trace=job.trace_id)

    def drain(self, policy: str) -> List[JobOutcome]:
        """Round loop until every queued/lost job has an outcome."""
        outcomes: List[JobOutcome] = []
        limit = self.clock + 2 * self._pending() + (
            (self.heartbeat_timeout + 2) * (len(self.cluster.nodes) + 1)
        ) + 16
        while self._pending():
            if self.budget is not None and self.budget.expired:
                for queue in self.queues.values():
                    while queue:
                        self._skip_job(
                            queue.popleft(), "batch deadline expired", outcomes
                        )
                for jobs in self.lost.values():
                    for job in jobs:
                        self._skip_job(job, "batch deadline expired", outcomes)
                self.lost.clear()
                break
            self.clock += 1
            if self.clock > limit:  # defensive: the loop must make progress
                raise ClusterError(
                    f"cluster scheduler stalled at clock {self.clock} with "
                    f"{self._pending()} job(s) pending"
                )
            for node in self.cluster.nodes:
                node.heartbeat(self.clock)
            self._detect_failures(outcomes)
            if not self._live():
                # Every member is down: fail fast instead of waiting out
                # heartbeat timeouts that can never be answered.
                for name in list(self.queues):
                    while self.queues[name]:
                        self._skip_job(
                            self.queues[name].popleft(), "no live nodes", outcomes
                        )
                for jobs in self.lost.values():
                    for job in jobs:
                        self._skip_job(job, "no live nodes", outcomes)
                self.lost.clear()
                break
            if self.steal:
                self._steal_work()
            self._execute_round(policy, outcomes)
        return outcomes

    def run(self, wave: List[BatchJob], policy: str) -> List[JobOutcome]:
        """Assign then drain one wave of jobs."""
        outcomes: List[JobOutcome] = []
        self.assign(wave, outcomes)
        outcomes.extend(self.drain(policy))
        return outcomes


def run_cluster_batch(
    manifest: Dict[str, Any],
    cluster: Optional[Cluster] = None,
    nodes: int = DEFAULT_NODES,
    cluster_dir: Optional[str] = None,
    cache: str = "use",
    deadline: Optional[float] = None,
    on_event: Optional[ProgressFn] = None,
    heartbeat_timeout: int = DEFAULT_HEARTBEAT_TIMEOUT,
    steal: bool = True,
) -> BatchReport:
    """Run a batch manifest across a solve farm; returns the report.

    Pass an existing :class:`~repro.cluster.admin.Cluster`, or let
    ``cluster_dir``/``nodes`` load-or-create one (the layout persists,
    so repeated runs share the replicated cache).  All other semantics
    match :func:`repro.batch.scheduler.run_batch` -- same waves, same
    deadline skipping, same report schema -- with ``workers`` reporting
    the cluster size.
    """
    start = time.perf_counter()
    if cluster is None:
        cluster = ensure_cluster(cluster_dir or DEFAULT_CLUSTER_DIR, nodes=nodes)
    expanded = expand_manifest(manifest)
    primaries, duplicates = order_jobs(expanded)
    budget = Budget(deadline) if deadline is not None else None
    scheduler = ClusterScheduler(
        cluster,
        on_event=on_event,
        heartbeat_timeout=heartbeat_timeout,
        steal=steal,
        budget=budget,
    )
    outcomes = scheduler.run(primaries, cache)
    outcomes += scheduler.run(duplicates, "use" if cache != "off" else "off")
    by_index = {job.job_id: job.index for job in expanded}
    outcomes.sort(key=lambda o: by_index.get(o.job_id, 1 << 30))
    report = BatchReport(
        name=str(manifest.get("name", "batch")),
        cache_policy=cache,
        jobs=len(expanded),
        workers=len(cluster.nodes),
        outcomes=outcomes,
        wall_seconds=time.perf_counter() - start,
        deduplicated=len(duplicates),
    )
    reg = get_registry()
    reg.counter("cluster.jobs").inc(len(expanded))
    _emit(on_event, {
        "event": "batch.done",
        "name": report.name,
        "jobs": report.jobs,
        "hit_rate": report.hit_rate,
        "redispatched": scheduler.redispatched,
        "stolen": scheduler.stolen,
        "wall_seconds": report.wall_seconds,
    })
    return report


__all__ = [
    "ClusterScheduler",
    "DEFAULT_CLUSTER_DIR",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "run_cluster_batch",
]
