"""``repro.cluster`` -- the fault-tolerant distributed solve farm.

Simulated-process solve nodes on one machine, a consistent-hash
partitioned and replicated extension of the solution cache, and
multi-node batch dispatch that survives nodes dying mid-wave:

* :mod:`repro.cluster.ring` -- deterministic consistent-hash placement
  (preference lists, successors);
* :mod:`repro.cluster.store` -- :class:`ReplicatedCache`: quorum reads/
  writes, hinted handoff, read repair; :mod:`repro.cluster.merkle`
  backs its anti-entropy digest sync;
* :mod:`repro.cluster.node` -- :class:`SolveNode`: a replica store plus
  job execution, heartbeats and crash/restart;
* :mod:`repro.cluster.scheduler` -- :func:`run_cluster_batch`:
  heartbeat failure detection, re-dispatch of dead nodes' jobs, work
  stealing;
* :mod:`repro.cluster.drill` -- :func:`run_drill`: the kill/recover/
  replay determinism drill CI gates on;
* :mod:`repro.cluster.admin` -- cluster layout on disk, load/create,
  status.

Everything is deterministic and fault-injectable (``node.crash``,
``rpc.timeout``, ``store.partial_write`` sites), per the robustness
contract in ``docs/ROBUSTNESS.md``.
"""

from repro.cluster.admin import (
    CLUSTER_SCHEMA_NAME,
    Cluster,
    create_cluster,
    ensure_cluster,
    load_cluster,
)
from repro.cluster.drill import DrillReport, run_drill
from repro.cluster.merkle import digest_tree, diff_buckets, entry_digest
from repro.cluster.node import NodeCrash, SolveNode
from repro.cluster.ring import HashRing
from repro.cluster.scheduler import ClusterScheduler, run_cluster_batch
from repro.cluster.store import (
    ClusterError,
    QuorumError,
    ReplicaNode,
    ReplicatedCache,
    RpcTimeout,
)

__all__ = [
    "CLUSTER_SCHEMA_NAME",
    "Cluster",
    "ClusterError",
    "ClusterScheduler",
    "DrillReport",
    "HashRing",
    "NodeCrash",
    "QuorumError",
    "ReplicaNode",
    "ReplicatedCache",
    "RpcTimeout",
    "SolveNode",
    "create_cluster",
    "diff_buckets",
    "digest_tree",
    "ensure_cluster",
    "entry_digest",
    "load_cluster",
    "run_cluster_batch",
    "run_drill",
]
