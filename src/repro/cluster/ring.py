"""Consistent-hash ring: deterministic key -> replica-set placement.

The ring maps every cache key (and every batch-job identity) to an
ordered *preference list* of nodes, exactly as in Dynamo-style stores:

* each node is hashed onto the ring at ``vnodes`` positions (virtual
  nodes smooth the load across a handful of physical nodes);
* a key's position is its SHA-1, and its preference list is the next
  ``n`` *distinct* nodes walking clockwise from there;
* adding or removing one node moves only the keys adjacent to its
  virtual positions -- the property that makes node joins/leaves cheap.

Everything is derived from :func:`hashlib.sha1` over stable strings, so
placement is identical across processes, machines and Python hash
randomization -- a hard requirement for the determinism contract of the
cluster drills (the same job lands on the same node on every replay).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Callable, List, Optional, Sequence, Tuple

#: Virtual nodes per physical node (enough to balance 2-16 node rings).
DEFAULT_VNODES = 64


def _position(token: str) -> int:
    """A stable 64-bit ring position for an arbitrary string."""
    return int.from_bytes(hashlib.sha1(token.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """An immutable-membership consistent-hash ring over node names."""

    def __init__(self, nodes: Sequence[str], vnodes: int = DEFAULT_VNODES) -> None:
        names = list(nodes)
        if not names:
            raise ValueError("a hash ring needs at least one node")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in ring: {names}")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._names = names
        self._ring: List[Tuple[int, str]] = sorted(
            (_position(f"{name}#{i}"), name)
            for name in names
            for i in range(vnodes)
        )
        self._positions = [pos for pos, _ in self._ring]

    @property
    def nodes(self) -> List[str]:
        """The member node names, in construction order."""
        return list(self._names)

    def nodes_for(self, key: str, n: int) -> List[str]:
        """The first ``n`` distinct nodes clockwise of ``key`` (the
        preference list; ``n`` is clamped to the member count)."""
        n = min(n, len(self._names))
        start = bisect_right(self._positions, _position(key))
        out: List[str] = []
        size = len(self._ring)
        for step in range(size):
            name = self._ring[(start + step) % size][1]
            if name not in out:
                out.append(name)
                if len(out) == n:
                    break
        return out

    def primary_for(
        self, key: str, up: Optional[Callable[[str], bool]] = None
    ) -> Optional[str]:
        """The first (live, when ``up`` is given) owner of ``key``.

        Returns ``None`` when ``up`` rejects every member -- the caller
        decides what an all-dead cluster means.
        """
        for name in self.nodes_for(key, len(self._names)):
            if up is None or up(name):
                return name
        return None

    def successor(
        self,
        key: str,
        exclude: Sequence[str] = (),
        up: Optional[Callable[[str], bool]] = None,
    ) -> Optional[str]:
        """The next eligible node for ``key``: clockwise order, skipping
        ``exclude`` and (when ``up`` is given) downed members.

        This is both the re-dispatch target for a dead node's jobs and
        the hinted-handoff substitute for an unreachable replica.
        """
        skip = set(exclude)
        for name in self.nodes_for(key, len(self._names)):
            if name in skip:
                continue
            if up is None or up(name):
                return name
        return None


__all__ = ["DEFAULT_VNODES", "HashRing"]
