"""The node-kill failure drill: crash, recover, prove determinism.

:func:`run_drill` is the executable version of the robustness contract
in ``docs/ROBUSTNESS.md`` (and the node-off/on checklist the related
repos drill by hand):

1. **cold faulted run** -- a fresh fully-replicated cluster runs the
   manifest with a one-shot ``node.crash`` fault armed, so one node dies
   mid-wave.  The run must still complete every job: failure detection
   re-dispatches the dead node's work to ring successors, and writes
   that could not reach the dead replica leave hinted handoffs;
2. **rejoin + catch-up** -- the killed node restarts, pending hints are
   delivered, and Merkle anti-entropy repairs whatever the hints
   missed.  All node digests must then be *identical* (the cluster is
   created with ``replication == nodes``, so equality is exact, not
   approximate);
3. **warm fault-free run** -- the same manifest re-runs on the healed
   cluster with no faults.  Every job must hit the cache (hits replay
   the original solve times), and the two runs' ``stable_view``s must
   be **bit-identical** -- :func:`repro.batch.scheduler.check_reports`
   is the gate, exactly as in ``repro batch check``.

The returned :class:`DrillReport` lists every violated expectation in
``problems``; an empty list is a pass.  CI's ``fault-drill-smoke`` job
runs this via ``repro cluster drill``.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.batch.scheduler import BatchReport, check_reports
from repro.cluster.admin import (
    CLUSTER_CONFIG,
    Cluster,
    DEFAULT_NODES,
    create_cluster,
)
from repro.cluster.node import NodeCrash
from repro.cluster.scheduler import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    run_cluster_batch,
)
from repro.cluster.store import ClusterError
from repro.robust.faults import Fault, inject

#: Default manifest position (0-based) after which the crash fires:
#: ``after=1`` kills whichever node executes the second job -- mid-wave.
DEFAULT_CRASH_AFTER = 1


@dataclass
class DrillReport:
    """Everything the drill observed, plus its pass/fail verdict."""

    name: str
    cluster_root: str
    nodes: int
    killed: Optional[str] = None
    fault_fired: bool = False
    redispatched: int = 0
    stolen: int = 0
    delivered_hints: int = 0
    repaired: int = 0
    digest_roots: Dict[str, str] = field(default_factory=dict)
    digests_equal: bool = False
    hit_rate: float = 0.0
    wall_seconds: float = 0.0
    problems: List[str] = field(default_factory=list)
    faulted_report: Optional[Dict[str, Any]] = None
    replay_report: Optional[Dict[str, Any]] = None

    @property
    def passed(self) -> bool:
        return not self.problems

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-cluster-drill/1",
            "name": self.name,
            "cluster_root": self.cluster_root,
            "nodes": self.nodes,
            "killed": self.killed,
            "fault_fired": self.fault_fired,
            "redispatched": self.redispatched,
            "stolen": self.stolen,
            "delivered_hints": self.delivered_hints,
            "repaired": self.repaired,
            "digest_roots": self.digest_roots,
            "digests_equal": self.digests_equal,
            "hit_rate": self.hit_rate,
            "wall_seconds": self.wall_seconds,
            "passed": self.passed,
            "problems": self.problems,
        }

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"drill {self.name!r}: {verdict} -- killed {self.killed}, "
            f"{self.redispatched} re-dispatched, "
            f"{self.delivered_hints} hint(s) delivered, "
            f"{self.repaired} repaired, replay hit rate {self.hit_rate:.0%}, "
            f"{len(self.problems)} problem(s)"
        )


def _fresh_cluster(root: str, nodes: int) -> Cluster:
    """A brand-new fully-replicated cluster at ``root`` (a cold store is
    what makes the faulted run exercise real solves + re-dispatch)."""
    if os.path.isdir(root):
        if not os.path.exists(os.path.join(root, CLUSTER_CONFIG)):
            raise ClusterError(
                f"refusing to reset {root!r}: it exists but is not a cluster"
            )
        shutil.rmtree(root)
    return create_cluster(root, nodes=nodes, replication=nodes)


def run_drill(
    manifest: Dict[str, Any],
    cluster_dir: str,
    nodes: int = DEFAULT_NODES,
    kill: Optional[str] = None,
    after: int = DEFAULT_CRASH_AFTER,
    heartbeat_timeout: int = DEFAULT_HEARTBEAT_TIMEOUT,
    min_hit_rate: float = 0.9,
    on_event: Optional[Any] = None,
) -> DrillReport:
    """Execute the full kill/recover/replay drill; see the module doc.

    ``kill`` targets a specific node (the fault then only fires on it);
    by default the crash hits whichever node runs the job at manifest
    position ``after`` -- deterministic, because placement and round
    order are.  The cluster at ``cluster_dir`` is reset to a cold,
    fully-replicated state first.
    """
    start = time.perf_counter()
    report = DrillReport(
        name=str(manifest.get("name", "batch")),
        cluster_root=os.path.abspath(cluster_dir),
        nodes=nodes,
    )
    cluster = _fresh_cluster(cluster_dir, nodes)

    killed: List[str] = []
    stats = {"redispatched": 0, "stolen": 0}

    def watch(payload: Dict[str, Any]) -> None:
        event = payload.get("event")
        if event == "node.crash":
            killed.append(str(payload["node"]))
        elif event == "job.redispatch":
            stats["redispatched"] += 1
        elif event == "job.steal":
            stats["stolen"] += 1
        if on_event is not None:
            on_event(payload)

    fault = Fault(
        "node.crash",
        error=NodeCrash("injected drill crash"),
        match={"node": kill} if kill else None,
        after=after,
        times=1,
    )
    with inject(fault) as plan:
        faulted = run_cluster_batch(
            manifest,
            cluster=cluster,
            cache="use",
            on_event=watch,
            heartbeat_timeout=heartbeat_timeout,
        )
        report.fault_fired = plan.total_fires() > 0

    report.faulted_report = faulted.as_dict()
    report.killed = killed[0] if killed else None
    report.redispatched = stats["redispatched"]
    report.stolen = stats["stolen"]

    if not report.fault_fired:
        report.problems.append(
            f"node.crash fault never fired (after={after}, kill={kill!r}); "
            f"the manifest may have too few jobs"
        )
    if report.fault_fired and report.redispatched < 1:
        report.problems.append(
            "node crashed but no job was re-dispatched to a successor"
        )
    _check_completion(report, faulted, "faulted run")

    # Rejoin + catch-up: hints first, anti-entropy for whatever is left.
    if report.killed is not None:
        cluster.restart(report.killed)
        report.delivered_hints = cluster.deliver_hints(report.killed)
    report.repaired = cluster.anti_entropy()
    digests = cluster.digests()
    report.digest_roots = {name: d["root"] for name, d in digests.items()}
    report.digests_equal = len(set(report.digest_roots.values())) <= 1
    if not report.digests_equal:
        report.problems.append(
            f"replica digests diverge after hint delivery + anti-entropy: "
            f"{report.digest_roots}"
        )

    # Warm fault-free replay on the healed cluster: all hits, stable
    # views bit-identical (hits replay the original solve times).
    replay = run_cluster_batch(
        manifest,
        cluster=cluster,
        cache="use",
        on_event=on_event,
        heartbeat_timeout=heartbeat_timeout,
    )
    report.replay_report = replay.as_dict()
    report.hit_rate = replay.hit_rate
    _check_completion(report, replay, "replay run")
    report.problems.extend(
        check_reports(report.faulted_report, report.replay_report, min_hit_rate)
    )
    report.wall_seconds = time.perf_counter() - start
    return report


def _check_completion(
    report: DrillReport, batch: BatchReport, label: str
) -> None:
    bad = [
        f"{o.job_id} ({o.status}: {o.error})"
        for o in batch.outcomes
        if o.status not in ("ok", "degraded")
    ]
    if bad:
        report.problems.append(f"{label}: incomplete jobs: {', '.join(bad)}")


__all__ = ["DEFAULT_CRASH_AFTER", "DrillReport", "run_drill"]
