"""Live telemetry: trace ids, Prometheus exposition, rolling quantiles.

Three small, dependency-free pieces the service and CLI compose:

* **Trace ids** -- :func:`new_trace_id` mints the opaque id
  ``api.run_request`` stamps on every observability line a request's
  work emits (see ``MetricsRegistry.trace_scope``), and that travels
  over the wire as ``PartitionRequest.trace_id`` /
  ``X-Repro-Trace-Id``.
* **Labeled series** -- the registry's instruments are keyed by plain
  strings, so labeled metrics use the series-name convention
  ``base{key="value",...}`` (built by :func:`series`, parsed by
  :func:`split_series`).  Snapshot merging treats the full series
  string as an opaque counter name, so labels survive worker fan-out
  for free.
* **Exposition** -- :func:`prometheus_exposition` renders a
  ``MetricsRegistry.snapshot()`` dict (plus ad-hoc gauges) in the
  Prometheus text format (``text/plain; version=0.0.4``): counters get
  a ``_total`` suffix, histograms become cumulative ``_bucket``
  series with ``le`` labels plus ``_sum``/``_count``, and dots in
  registry names become underscores.
* **Quantiles** -- :class:`QuantileWindow` is a fixed-size rolling
  window over recent observations (service latencies, queue waits)
  whose p50/p90/p99 are computed at scrape time, so ``/v1/metrics``
  exposes live latency quantiles without a streaming sketch.
"""

from __future__ import annotations

import math
import re
import uuid
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Tuple

#: Content type of the exposition format this module renders.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Quantiles :class:`QuantileWindow.summary` reports.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

_SERIES = re.compile(r"^(?P<base>[^{}]+)\{(?P<labels>.*)\}$")

_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


def new_trace_id() -> str:
    """A fresh opaque trace id (16 hex chars, collision-safe per run)."""
    return uuid.uuid4().hex[:16]


def series(base: str, **labels: Any) -> str:
    """The canonical series name for ``base`` with ``labels`` attached.

    Labels are sorted by key so equal label sets always produce equal
    series strings (and therefore one registry instrument)::

        >>> series("runs.completed", verb="partition", trace="ab12")
        'runs.completed{trace="ab12",verb="partition"}'
    """
    if not labels:
        return base
    parts = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(labels.items())
    )
    return f"{base}{{{parts}}}"


def split_series(name: str) -> Tuple[str, Dict[str, str]]:
    """Split a series name into ``(base, labels)``.

    Plain names come back with empty labels; a malformed label block is
    treated as part of the base name rather than rejected (registry
    names are producer-controlled, not wire input).
    """
    match = _SERIES.match(name)
    if match is None:
        return name, {}
    labels = {
        m.group("key"): _unescape_label(m.group("value"))
        for m in _LABEL.finditer(match.group("labels"))
    }
    return match.group("base"), labels


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def sanitize_metric_name(name: str) -> str:
    """A Prometheus-legal metric name (dots and dashes to underscores)."""
    cleaned = _NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    return repr(v)


def _render_labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{sanitize_metric_name(str(key))}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return f"{{{parts}}}"


class _Writer:
    """Groups samples per metric family and emits one TYPE line each."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._typed: Dict[str, str] = {}

    def sample(
        self,
        family: str,
        kind: str,
        value: Any,
        labels: Optional[Mapping[str, Any]] = None,
        suffix: str = "",
    ) -> None:
        seen = self._typed.get(family)
        if seen is None:
            self._typed[family] = kind
            self.lines.append(f"# TYPE {family} {kind}")
        self.lines.append(
            f"{family}{suffix}{_render_labels(labels or {})} {_format_value(value)}"
        )

    def text(self) -> str:
        return "\n".join(self.lines) + "\n" if self.lines else ""


def prometheus_exposition(
    snapshot: Mapping[str, Any],
    extra_gauges: Optional[Mapping[str, Any]] = None,
) -> str:
    """Render a registry snapshot in the Prometheus text format.

    ``snapshot`` is :meth:`MetricsRegistry.snapshot` output; counter and
    gauge names may carry labels via the :func:`series` convention.
    ``extra_gauges`` adds ad-hoc gauge samples (service queue depth,
    latency quantiles, ...) that live outside the registry.
    """
    writer = _Writer()
    for name in sorted(snapshot.get("counters", {})):
        base, labels = split_series(name)
        family = sanitize_metric_name(base)
        if not family.endswith("_total"):
            family += "_total"
        writer.sample(family, "counter", snapshot["counters"][name], labels)
    gauges: Dict[str, Any] = dict(snapshot.get("gauges", {}))
    gauges.update(extra_gauges or {})
    for name in sorted(gauges):
        base, labels = split_series(name)
        writer.sample(sanitize_metric_name(base), "gauge", gauges[name], labels)
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        base, labels = split_series(name)
        family = sanitize_metric_name(base)
        cumulative = 0
        for bound, count in zip(
            list(data["bounds"]) + [float("inf")], data["counts"]
        ):
            cumulative += count
            le = {"le": "+Inf" if math.isinf(bound) else _format_value(bound)}
            writer.sample(
                family, "histogram", cumulative, {**labels, **le}, suffix="_bucket"
            )
        writer.sample(family, "histogram", data["sum"], labels, suffix="_sum")
        writer.sample(family, "histogram", data["count"], labels, suffix="_count")
    return writer.text()


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse Prometheus text back into ``{series_line: value}``.

    The inverse the smoke drills need: every non-comment sample line
    becomes one entry keyed by its full ``name{labels}`` string.  Raises
    ``ValueError`` on a line that is neither a comment nor a sample.
    """
    samples: Dict[str, float] = {}
    for n, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, raw = line.rpartition(" ")
        if not name:
            raise ValueError(f"exposition line {n}: no sample value: {line!r}")
        try:
            samples[name] = float(raw)
        except ValueError as exc:
            raise ValueError(
                f"exposition line {n}: bad sample value {raw!r}"
            ) from exc
    return samples


class QuantileWindow:
    """A rolling window of recent observations with on-demand quantiles.

    Keeps the last ``size`` values in a ring buffer; :meth:`quantile`
    sorts the live window at call time (scrapes are rare, observations
    are hot, so the cost sits on the scrape).  Nearest-rank definition:
    ``quantile(0.5)`` of ``[1, 2, 3, 4]`` is ``2``.
    """

    __slots__ = ("_window", "observed")

    def __init__(self, size: int = 1024) -> None:
        if size <= 0:
            raise ValueError("window size must be positive")
        self._window: Deque[float] = deque(maxlen=size)
        #: Total observations ever seen (the window only keeps ``size``).
        self.observed = 0

    def observe(self, value: float) -> None:
        self._window.append(float(value))
        self.observed += 1

    def __len__(self) -> int:
        return len(self._window)

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile of the window, ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, Any]:
        """Count plus p50/p90/p99 (``None`` each while empty)."""
        out: Dict[str, Any] = {"count": self.observed}
        for q in SUMMARY_QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out

    def gauges(self, base: str) -> Dict[str, float]:
        """Exposition-ready gauge samples, one per populated quantile."""
        out: Dict[str, float] = {}
        for q in SUMMARY_QUANTILES:
            value = self.quantile(q)
            if value is not None:
                out[series(base, quantile=_format_value(q))] = value
        return out


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "QuantileWindow",
    "new_trace_id",
    "parse_exposition",
    "prometheus_exposition",
    "sanitize_metric_name",
    "series",
    "split_series",
]
