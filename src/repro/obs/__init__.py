"""Observability: metrics, hierarchical tracing and JSONL event streams.

``repro.obs`` is the process-local instrumentation layer threaded
through the partitioning stack (FM passes, replication moves, k-way
carve levels, resilient-runner decisions, process-pool workers):

* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` with counters,
  gauges and explicit-bucket histograms, plus snapshot/merge for
  cross-process aggregation;
* :mod:`repro.obs.trace` -- hierarchical ``span()`` timing (wall clock
  via ``perf_counter``, optional ``process_time`` profiling);
* :mod:`repro.obs.events` -- the ``repro-obs-events/1`` JSON-lines
  schema, emitters and validators;
* :mod:`repro.obs.summary` -- the human-readable rendering behind
  ``repro-fpga analyze --metrics``;
* :mod:`repro.obs.telemetry` -- trace-id minting, labeled metric
  series, Prometheus text exposition and rolling-window latency
  quantiles (the live side served at ``GET /v1/metrics``);
* :mod:`repro.obs.export` -- Chrome trace-event / Perfetto timeline
  export, merging multi-worker JSONL streams on one trace id;
* :mod:`repro.obs.ledger` -- the persistent, append-only run ledger
  (``results/ledger/runs.jsonl``): one schema-versioned quality record
  per solver/experiment run, keyed by netlist hash + config fingerprint
  + seed + git rev;
* :mod:`repro.obs.compare` -- run diffing with per-metric tolerances,
  machine-readable drift verdicts and the self-contained HTML report
  behind ``repro-fpga runs report``.

The default registry is **disabled**: every instrumentation site costs a
single attribute check (``if reg.enabled:``), measured at well under the
3% overhead gate in ``benchmarks/bench_fm_hot.py``.  Enable collection
for a scope with::

    from repro.obs import MetricsRegistry, use_registry

    reg = MetricsRegistry(enabled=True)
    with use_registry(reg):
        partition_heterogeneous(mapped, config)
    print(reg.snapshot()["counters"])

or from the CLI with ``--trace`` / ``--metrics-out PATH``.  Tracing
never changes solver results: the golden-equivalence tests run the
engines bit-identical with tracing on.
"""

from __future__ import annotations

from repro.obs.compare import (
    RunDiff,
    Tolerance,
    diff_records,
    gate_exit_code,
    render_html,
    render_text,
)
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_NAME,
    EVENT_SCHEMA_VERSION,
    JsonlEmitter,
    ListEmitter,
    TeeEmitter,
    meta_event,
    read_jsonl,
    validate_event,
    validate_events,
    validate_jsonl_file,
)
from repro.obs.export import chrome_trace, export_chrome_trace, stream_events
from repro.obs.ledger import (
    LEDGER_SCHEMA_NAME,
    LEDGER_SCHEMA_VERSION,
    Ledger,
    build_record,
    distill_convergence,
    get_ledger,
    netlist_fingerprint,
    resolve_ledger,
    set_ledger,
    use_ledger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.summary import summarize_events
from repro.obs.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    QuantileWindow,
    new_trace_id,
    parse_exposition,
    prometheus_exposition,
    series,
    split_series,
)
from repro.obs.trace import NULL_SPAN, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    "Span",
    "NULL_SPAN",
    "EVENT_KINDS",
    "EVENT_SCHEMA_NAME",
    "EVENT_SCHEMA_VERSION",
    "JsonlEmitter",
    "ListEmitter",
    "TeeEmitter",
    "meta_event",
    "read_jsonl",
    "validate_event",
    "validate_events",
    "validate_jsonl_file",
    "summarize_events",
    "PROMETHEUS_CONTENT_TYPE",
    "QuantileWindow",
    "new_trace_id",
    "parse_exposition",
    "prometheus_exposition",
    "series",
    "split_series",
    "chrome_trace",
    "export_chrome_trace",
    "stream_events",
    "LEDGER_SCHEMA_NAME",
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "build_record",
    "distill_convergence",
    "get_ledger",
    "netlist_fingerprint",
    "resolve_ledger",
    "set_ledger",
    "use_ledger",
    "RunDiff",
    "Tolerance",
    "diff_records",
    "gate_exit_code",
    "render_html",
    "render_text",
]
