"""Human-readable rendering of an observability event stream.

``repro-fpga analyze --metrics trace.jsonl`` feeds a validated JSONL
event stream through :func:`summarize_events` to get the terminal
summary: per-span-name timing aggregates, a depth-indented trace of the
slowest top-level spans, counters/gauges, histogram tables and the
orchestration events the resilient runner recorded.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: How many top-level spans the trace section shows.
_TRACE_TOP = 12


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def _span_aggregates(spans: List[Dict[str, Any]]) -> List[str]:
    agg: Dict[str, List[float]] = {}
    for span in spans:
        agg.setdefault(span["name"], []).append(span["dur_s"])
    lines = ["spans (by name):",
             f"  {'name':<24} {'count':>6} {'total':>10} {'mean':>10} {'max':>10}"]
    for name in sorted(agg, key=lambda n: -sum(agg[n])):
        durs = agg[name]
        lines.append(
            f"  {name:<24} {len(durs):>6} {_fmt_seconds(sum(durs)):>10} "
            f"{_fmt_seconds(sum(durs) / len(durs)):>10} {_fmt_seconds(max(durs)):>10}"
        )
    return lines


def _span_tree(spans: List[Dict[str, Any]]) -> List[str]:
    children: Dict[Any, List[Dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)
    roots = sorted(children.get(None, []), key=lambda s: -s["dur_s"])[:_TRACE_TOP]
    lines = ["slowest traces:"]

    def render(span: Dict[str, Any], indent: int) -> None:
        attrs = span.get("attrs") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        cpu = f" cpu {_fmt_seconds(span['cpu_s']).strip()}" if "cpu_s" in span else ""
        lines.append(
            f"  {'  ' * indent}{span['name']} {_fmt_seconds(span['dur_s']).strip()}"
            f"{cpu}{('  ' + attr_text) if attr_text else ''}"
        )
        for child in sorted(children.get(span["id"], []), key=lambda s: s["ts"]):
            render(child, indent + 1)

    for root in roots:
        render(root, 0)
    return lines


def summarize_events(events: List[Dict[str, Any]]) -> str:
    """Render a validated event stream as a terminal-friendly report."""
    spans = [e for e in events if e.get("kind") == "span"]
    counters = [e for e in events if e.get("kind") == "counter"]
    gauges = [e for e in events if e.get("kind") == "gauge"]
    histograms = [e for e in events if e.get("kind") == "histogram"]
    adhoc = [e for e in events if e.get("kind") == "event"]

    sections: List[List[str]] = []
    if spans:
        sections.append(_span_aggregates(spans))
        sections.append(_span_tree(spans))
    if counters:
        width = max(len(e["name"]) for e in counters)
        sections.append(
            ["counters:"]
            + [f"  {e['name']:<{width}}  {e['value']}"
               for e in sorted(counters, key=lambda e: e["name"])]
        )
    if gauges:
        width = max(len(e["name"]) for e in gauges)
        sections.append(
            ["gauges:"]
            + [f"  {e['name']:<{width}}  {e['value']}"
               for e in sorted(gauges, key=lambda e: e["name"])]
        )
    for hist in sorted(histograms, key=lambda e: e["name"]):
        lines = [
            f"histogram {hist['name']}: count={hist['count']} "
            f"sum={hist['sum']:.4f} min={hist['min']} max={hist['max']}"
        ]
        for bound, count in hist["buckets"]:
            if not count:
                continue
            label = "+inf" if bound is None else f"<= {bound}"
            lines.append(f"  {label:>12}  {count}")
        sections.append(lines)
    if adhoc:
        lines = [f"events ({len(adhoc)}):"]
        for event in adhoc:
            fields = event.get("fields") or {}
            field_text = " ".join(
                f"{k}={v}" for k, v in sorted(fields.items()) if v not in ("", None)
            )
            lines.append(f"  {event['name']}  {field_text}")
        sections.append(lines)
    if not sections:
        return "no observability data in stream"
    return "\n\n".join("\n".join(section) for section in sections)
